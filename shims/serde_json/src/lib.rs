//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! shim's [`Value`] tree. Supports rendering (`to_string`,
//! `to_string_pretty`), lowering (`to_value`), and parsing back into a
//! [`Value`] (`from_str`) — enough for the workspace's JSON reports and
//! round-trip tests.

use serde::Serialize;
pub use serde::Value;
use std::fmt::Write as _;

/// JSON rendering/parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Renders compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form and
                // always keeps a decimal point or exponent, so the
                // value re-parses as F64 (not U64).
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => render_seq(
            items.iter(),
            items.len(),
            indent,
            depth,
            out,
            ('[', ']'),
            |item, d, o| render(item, indent, d, o),
        ),
        Value::Object(fields) => render_seq(
            fields.iter(),
            fields.len(),
            indent,
            depth,
            out,
            ('{', '}'),
            |(k, val), d, o| {
                render_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                render(val, indent, d, o);
            },
        ),
    }
}

fn render_seq<T>(
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    brackets: (char, char),
    mut each: impl FnMut(T, usize, &mut String),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        each(item, depth + 1, out);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(brackets.1);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::F64(3.5),
            Value::F64(1e300),
            Value::String("a \"b\"\nc\\".into()),
        ] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str(&text).unwrap(), v, "via {text}");
        }
    }

    #[test]
    fn round_trip_nested_pretty() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::U64(1), Value::F64(2.0)]),
            ),
            ("b".into(), Value::Object(vec![("c".into(), Value::Null)])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }
}
