//! Offline stand-in for `criterion`.
//!
//! Provides the API surface `benches/paper_benches.rs` uses —
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple best-of-N `Instant` timer instead of criterion's
//! statistical machinery. Good enough to spot regressions by eye;
//! not a substitute for real criterion when the registry is reachable.

use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            per_sample: 0,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let best = bencher
            .samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        println!(
            "{id:<44} best {best:>12.1} ns/iter ({} samples)",
            bencher.samples.len()
        );
        self
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    samples: Vec<f64>,
    per_sample: u32,
}

impl Bencher {
    fn iters_per_sample(&mut self) -> u32 {
        if self.per_sample == 0 {
            self.per_sample = 16;
        }
        self.per_sample
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = self.iters_per_sample();
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed().as_nanos() as f64 / n as f64);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = self.iters_per_sample();
        let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.samples
            .push(start.elapsed().as_nanos() as f64 / n as f64);
    }
}

/// Declares a bench group runner, mirroring criterion's long form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
