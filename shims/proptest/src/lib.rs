//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach a crate registry, so the
//! workspace vendors the subset of proptest it actually uses:
//! range/tuple/`any` strategies, `prop_map`, `prop_oneof!`,
//! `collection::vec`, the `proptest!` test macro, and the
//! `prop_assert*` family. Generation is deterministic: each test derives
//! its RNG seed from its module path and name, so failures reproduce
//! across runs.
//!
//! Unlike real proptest there is NO shrinking — a failing case reports
//! the case number and message only. That trades debuggability for zero
//! dependencies; the determinism keeps failures reproducible.

pub mod test_runner {
    /// Run configuration — only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A test case failure raised by `prop_assert*`.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            Self(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// FNV-1a over a test's identifying string: a stable per-test seed.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        hash
    }

    /// Deterministic generator (splitmix64) used by all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn f64_01(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A deterministic value generator. Object-safe so heterogeneous
    /// arms can be unified by `prop_oneof!`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy (what `prop_oneof!` arms become).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed arms (unweighted `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64_01() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident $idx:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// `any::<T>()` strategy over a type's full value space.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several magnitudes.
            (rng.f64_01() - 0.5) * 2e9
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use std::marker::PhantomData;

    /// `any::<T>()`: the full-value-space strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`], inclusive-exclusive.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` (the attribute is written inside the block, as in
/// modern proptest style) running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategy arms that share a value type.
/// (Real proptest's per-arm weights are not supported — no caller here
/// uses them.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current proptest case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
