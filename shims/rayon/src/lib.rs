//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach a crate registry, so this shim
//! maps the `par_iter`/`into_par_iter` entry points onto ordinary
//! sequential iterators. Downstream combinators (`map`, `collect`, …)
//! are then plain `std::iter::Iterator` methods. Results are identical
//! to rayon's — the experiment sweeps are independent deterministic
//! simulations — only wall-clock parallelism is lost.

pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for anything iterable by reference.
    pub trait IntoParallelRefIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        C: 'data,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}
