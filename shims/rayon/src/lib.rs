//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach a crate registry, so this shim
//! reimplements the subset of rayon's API the workspace uses — but with
//! **real threads**: `map`/`flat_map`/`collect` chains fan work out over a
//! shared work queue drained by `std::thread::scope` workers, one item at a
//! time, with results re-assembled in input order. Semantics match rayon's
//! for the workloads here (independent deterministic simulations): output
//! order is the input order regardless of which worker finishes first.
//!
//! Differences from real rayon, deliberately accepted:
//!
//! * Items are materialised into a `Vec` before dispatch (no lazy
//!   splitting) — sweep inputs are small; the work is in the closure.
//! * No global thread pool: each `collect`/`to_vec` spins up scoped
//!   workers. Thread count is `available_parallelism`, capped by the job
//!   count, overridable with `RAYON_NUM_THREADS` or a
//!   [`ThreadPoolBuilder`] `install` scope.
//! * Every parallel adapter also implements `IntoIterator` for sequential
//!   composition where a caller needs it (rayon's adapters are not
//!   `IntoIterator`; the nested `flat_map` call sites here are).

use std::collections::VecDeque;
use std::sync::Mutex;

pub mod iter {
    use super::run_parallel;

    /// The subset of rayon's `ParallelIterator` the workspace uses.
    pub trait ParallelIterator: Sized {
        type Item: Send;

        /// Evaluate the chain in parallel, preserving input order.
        fn to_vec(self) -> Vec<Self::Item>;

        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        fn flat_map<PI, F>(self, f: F) -> FlatMap<Self, F>
        where
            PI: IntoIterator,
            PI::Item: Send,
            F: Fn(Self::Item) -> PI + Sync + Send,
        {
            FlatMap { base: self, f }
        }

        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.to_vec().into_iter().collect()
        }
    }

    /// Materialised parallel iterator over owned items.
    pub struct ParIter<T: Send> {
        pub(crate) items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;
        fn to_vec(self) -> Vec<T> {
            self.items
        }
    }

    impl<T: Send> IntoIterator for ParIter<T> {
        type Item = T;
        type IntoIter = std::vec::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.items.into_iter()
        }
    }

    /// Parallel `map` adapter.
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, R, F> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn to_vec(self) -> Vec<R> {
            run_parallel(self.base.to_vec(), &self.f)
        }
    }

    impl<P, R, F> IntoIterator for Map<P, F>
    where
        P: ParallelIterator + IntoIterator<Item = <P as ParallelIterator>::Item>,
        R: Send,
        F: Fn(<P as ParallelIterator>::Item) -> R + Sync + Send,
    {
        type Item = R;
        type IntoIter = std::iter::Map<<P as IntoIterator>::IntoIter, F>;
        fn into_iter(self) -> Self::IntoIter {
            self.base.into_iter().map(self.f)
        }
    }

    /// Parallel `flat_map` adapter. Each item's sub-iterator is produced
    /// and drained on the worker that ran it; sub-results concatenate in
    /// input order.
    pub struct FlatMap<P, F> {
        base: P,
        f: F,
    }

    impl<P, PI, F> ParallelIterator for FlatMap<P, F>
    where
        P: ParallelIterator,
        PI: IntoIterator,
        PI::Item: Send,
        F: Fn(P::Item) -> PI + Sync + Send,
    {
        type Item = PI::Item;
        fn to_vec(self) -> Vec<PI::Item> {
            let f = &self.f;
            let nested = run_parallel(self.base.to_vec(), &|item| {
                f(item).into_iter().collect::<Vec<_>>()
            });
            nested.into_iter().flatten().collect()
        }
    }

    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// `par_iter()` for anything iterable by reference.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Send;
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: Send,
        C: 'data,
    {
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

std::thread_local! {
    /// Scoped override installed by [`ThreadPool::install`].
    static POOL_THREADS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Worker count the next parallel chain will use: an `install` override,
/// else `RAYON_NUM_THREADS`, else `available_parallelism`.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every item on scoped worker threads (never more workers
/// than items), returning results in input order. Single-worker runs stay
/// on the calling thread.
fn run_parallel<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                let Some((idx, item)) = job else { break };
                let out = f(item);
                done.lock().unwrap().push((idx, out));
            });
        }
    });
    let mut out = done.into_inner().unwrap();
    out.sort_unstable_by_key(|&(idx, _)| idx);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Builder for a fixed-size [`ThreadPool`] (rayon-compatible subset).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 means "automatic", like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, BuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Errors from [`ThreadPoolBuilder::build`] (infallible here; the type
/// exists for API compatibility).
#[derive(Debug)]
pub struct BuildError;

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for BuildError {}

/// A scoped thread-count policy: parallel chains evaluated inside
/// [`ThreadPool::install`] use this pool's worker count.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count installed for any parallel
    /// iterator chains it evaluates.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let squares: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_by_ref_works() {
        let data = [3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn nested_flat_map_matches_sequential() {
        let outer = [1u64, 2, 3];
        let got: Vec<u64> = outer
            .par_iter()
            .flat_map(|&a| [10u64, 20].into_par_iter().map(move |b| a * 100 + b))
            .collect();
        let want: Vec<u64> = outer
            .iter()
            .flat_map(|&a| [10u64, 20].iter().map(move |&b| a * 100 + b))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            let v: Vec<u64> = (0u64..32).into_par_iter().map(|x| x + 1).collect();
            assert_eq!(v.len(), 32);
        });
    }

    #[test]
    fn results_are_input_ordered_even_with_skewed_work() {
        // Early items do far more work than late ones; order must hold.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let v: Vec<u64> = pool.install(|| {
            (0u64..64)
                .into_par_iter()
                .map(|x| {
                    let spins = if x < 4 { 200_000 } else { 10 };
                    let mut acc = x;
                    for _ in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    std::hint::black_box(acc);
                    x
                })
                .collect()
        });
        assert_eq!(v, (0u64..64).collect::<Vec<_>>());
    }
}
