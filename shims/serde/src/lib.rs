//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach a crate registry, so the
//! workspace vendors the minimal serialization surface it uses: a
//! [`Serialize`] trait that lowers a value into a JSON-like [`Value`]
//! tree, plus a `derive` feature re-exporting the companion shim macro.
//! `serde_json` (also vendored) renders and parses that tree.
//!
//! This is intentionally NOT wire-compatible with real serde's
//! visitor-based data model — it trades generality for zero
//! dependencies. The method is named `to_json_value` (not `serialize`)
//! to make the divergence obvious at call sites.

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON value tree: the shim's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers keep full u64 precision.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating point; non-finite values render as `null`.
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (declaration order for derived structs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element access.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Lowers `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}
