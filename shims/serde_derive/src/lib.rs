//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal `serde` shim (a [`Serialize`] trait producing a
//! JSON-like `Value` tree) and this companion derive macro. The macro
//! parses the item's token stream by hand — no `syn`/`quote` — which is
//! enough for the shapes this workspace actually derives:
//!
//! * structs with named fields,
//! * unit-only enums (serialized as their variant name),
//! * newtype structs (serialized as the inner value).
//!
//! Generics are intentionally unsupported; deriving on a generic type
//! fails with a clear compile error rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (tree-building) trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f})));\n",
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Shape::NewtypeStruct => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                    name = item.name,
                ));
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n",
        name = item.name,
    );
    out.parse()
        .expect("serde_derive shim generated invalid Rust")
}

enum Shape {
    NamedStruct(Vec<String>),
    NewtypeStruct,
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`, doc comments) and visibility.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc. — `(crate)` arrives as a group
                // and is skipped by the catch-all arm below.
            }
            Some(_) => {}
            None => panic!("serde_derive shim: no struct/enum keyword found"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (derive on `{name}`)");
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break Some(g),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Tuple struct: only the newtype shape is supported.
                let inner_commas = top_level_commas(g.stream());
                if inner_commas != 0 {
                    panic!(
                        "serde_derive shim: only newtype tuple structs are supported (`{name}`)"
                    );
                }
                return Item {
                    name,
                    shape: Shape::NewtypeStruct,
                };
            }
            Some(_) => {}
            None => break None,
        }
    };
    let body =
        body.unwrap_or_else(|| panic!("serde_derive shim: `{name}` has no body to serialize"));
    if kind == "struct" {
        Item {
            name: name.clone(),
            shape: Shape::NamedStruct(named_fields(body.stream())),
        }
    } else {
        Item {
            name: name.clone(),
            shape: Shape::UnitEnum(unit_variants(&name, body.stream())),
        }
    }
}

fn top_level_commas(stream: TokenStream) -> usize {
    stream
        .into_iter()
        .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
        .count()
}

/// Collects field names of a named-field struct body: each field is
/// `[attrs] [vis] name ':' type`, fields separated by top-level commas.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if matches!(iter.peek(), Some(TokenTree::Group(_))) {
                        let _ = iter.next(); // pub(crate) / pub(super)
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => {
                    panic!("serde_derive shim: unexpected token {other:?} in struct body")
                }
                None => break None,
            }
        };
        let Some(name) = name else { break };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected ':' after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma. Track `<...>`
        // nesting so commas inside generic arguments don't split fields.
        let mut angle = 0i32;
        for t in iter.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Collects variant names of a unit-only enum body.
fn unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => {
                    panic!(
                        "serde_derive shim: `{enum_name}` must be a unit-only enum, got {other:?}"
                    )
                }
                None => break None,
            }
        };
        let Some(name) = name else { break };
        if matches!(iter.peek(), Some(TokenTree::Group(_))) {
            panic!(
                "serde_derive shim: variant `{enum_name}::{name}` carries data; only unit variants are supported"
            );
        }
        variants.push(name);
    }
    variants
}
