//! Replacing the request-switching policy (§3.4): "the service provider
//! can replace the default request switching policy with a
//! service-specific policy" — and §5's closing note: "even if the
//! service-specific policy is ill-behaving, it will not affect other
//! services hosted in the HUP."
//!
//! This example runs the same workload under four policies, then
//! installs an ill-behaved policy on one service and shows a co-hosted
//! service is untouched.
//!
//! Run with: `cargo run --example custom_policy`

use soda::core::policy::{BackendView, IllBehaved, LeastConnections, RandomPolicy, SwitchPolicy};
use soda::core::service::ServiceSpec;
use soda::core::world::{create_service_driven, SodaWorld};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PacedGenerator;

/// A service-specific policy an ASP might write: prefer the big node
/// until its queue builds, then spill to the small one.
struct SpillOver {
    threshold: u32,
}

impl SwitchPolicy for SpillOver {
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize> {
        let primary = backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.healthy)
            .max_by_key(|(_, b)| b.capacity)?;
        if primary.1.outstanding < self.threshold {
            return Some(primary.0);
        }
        backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.healthy)
            .min_by_key(|(_, b)| b.outstanding)
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "asp-spillover"
    }
}

fn run_policy(policy: Option<Box<dyn SwitchPolicy>>) -> (String, Vec<u64>, Vec<f64>) {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 99);
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let svc = create_service_driven(&mut engine, spec, "webco").unwrap();
    engine.run_until(SimTime::from_secs(120));
    if let Some(p) = policy {
        engine
            .state_mut()
            .master
            .switch_mut(svc)
            .unwrap()
            .replace_policy(p);
    }
    let name = engine
        .state()
        .master
        .switch(svc)
        .unwrap()
        .policy_name()
        .to_string();
    let t0 = engine.now();
    PacedGenerator {
        service: svc,
        dataset_bytes: 100_000,
        rate_rps: 20.0,
        start: t0,
        end: t0 + SimDuration::from_secs(60),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(120));
    let sw = engine.state().master.switch(svc).unwrap();
    (name, sw.served_counts(), sw.mean_responses())
}

fn main() {
    println!(
        "{:<22} {:>14} {:>24}",
        "policy", "served (2M,1M)", "mean response (s)"
    );
    for policy in [
        None,
        Some(Box::new(LeastConnections::new()) as Box<dyn SwitchPolicy>),
        Some(Box::new(RandomPolicy::new(5))),
        Some(Box::new(SpillOver { threshold: 4 })),
    ] {
        let (name, served, means) = run_policy(policy);
        println!(
            "{:<22} {:>14} {:>24}",
            name,
            format!("{served:?}"),
            format!(
                "{:?}",
                means.iter().map(|m| format!("{m:.4}")).collect::<Vec<_>>()
            )
        );
    }

    // The ill-behaved policy: all requests to one node, ignoring health.
    // Its own service suffers; the co-hosted one is isolated.
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 7);
    let mk = |name: &str, port| ServiceSpec {
        name: name.into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 2,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port,
    };
    let victim = create_service_driven(&mut engine, mk("victim", 8080), "a").unwrap();
    let bystander = create_service_driven(&mut engine, mk("bystander", 8081), "b").unwrap();
    engine.run_until(SimTime::from_secs(120));
    engine
        .state_mut()
        .master
        .switch_mut(victim)
        .unwrap()
        .replace_policy(Box::new(IllBehaved::new()));
    let t0 = engine.now();
    for svc in [victim, bystander] {
        PacedGenerator {
            service: svc,
            dataset_bytes: 100_000,
            rate_rps: 15.0,
            start: t0,
            end: t0 + SimDuration::from_secs(60),
        }
        .start(&mut engine);
    }
    engine.run_until(t0 + SimDuration::from_secs(200));
    let w = engine.state();
    let v = w.master.switch(victim).unwrap();
    let b = w.master.switch(bystander).unwrap();
    println!("\nill-behaved policy on 'victim':");
    println!(
        "  victim    served {:?} mean {:?}",
        v.served_counts(),
        v.mean_responses()
    );
    println!(
        "  bystander served {:?} mean {:?}",
        b.served_counts(),
        b.mean_responses()
    );
    println!("  (the bystander's balance and latency are unaffected)");
}
