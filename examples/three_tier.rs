//! Partitionable services (§3.5 limitation 3, resolved as an extension):
//! a three-tier shop — web frontend, application tier, database — where
//! *different images* are mapped to different virtual service nodes,
//! each tier with its own `<n, M>`, switch and configuration file.
//!
//! Run with: `cargo run --example three_tier`

use soda::core::master::SodaMaster;
use soda::core::partition::{
    create_partitioned_now, route_component, teardown_partitioned, PartitionId, PartitionedSpec,
};
use soda::core::service::ServiceSpec;
use soda::hostos::resources::ResourceVector;
use soda::hup::daemon::SodaDaemon;
use soda::hup::host::{HostId, HupHost};
use soda::net::pool::IpPool;
use soda::sim::{SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;

fn main() {
    let mut master = SodaMaster::new();
    let mut daemons = vec![
        SodaDaemon::new(HupHost::seattle(
            HostId(1),
            IpPool::new("10.0.0.0".parse().unwrap(), 8),
        )),
        SodaDaemon::new(HupHost::tacoma(
            HostId(2),
            IpPool::new("10.0.1.0".parse().unwrap(), 8),
        )),
    ];
    let c = RootFsCatalog::new();
    let m = ResourceVector::TABLE1_EXAMPLE;
    let spec = PartitionedSpec {
        name: "shop".into(),
        components: vec![
            ServiceSpec {
                name: "web".into(),
                image: c.base_1_0(),
                required_services: vec!["network", "syslogd"],
                app_class: StartupClass::Light,
                instances: 2,
                machine: m,
                port: 80,
            },
            ServiceSpec {
                name: "app".into(),
                image: c.custom(
                    "shop_app_fs",
                    25_000_000,
                    10_000_000,
                    &["network", "syslogd"],
                    false,
                ),
                required_services: vec!["network", "syslogd"],
                app_class: StartupClass::Heavy,
                instances: 1,
                machine: m,
                port: 9000,
            },
            ServiceSpec {
                name: "db".into(),
                image: c.custom(
                    "shop_db_fs",
                    40_000_000,
                    200_000_000,
                    &["network", "syslogd", "mysqld"],
                    false,
                ),
                required_services: vec!["network", "syslogd", "mysqld"],
                app_class: StartupClass::Heavy,
                instances: 1,
                machine: m,
                port: 3306,
            },
        ],
    };

    let part = create_partitioned_now(
        &mut master,
        &spec,
        "shopco",
        &mut daemons,
        SimTime::ZERO,
        PartitionId(1),
    )
    .expect("partition admitted");

    println!("partitioned service '{}' ({}):", part.name, part.id);
    for (name, svc) in &part.components {
        let rec = master.service(*svc).unwrap();
        println!(
            "  tier {name:>4}: image {:<12} <{}, M>  config:",
            rec.spec.image.name, rec.spec.instances
        );
        for line in master.switch(*svc).unwrap().config().to_string().lines() {
            println!("      {line}");
        }
    }

    // A user request walks web → app → db, each hop through its tier's
    // own switch.
    for _ in 0..6 {
        for tier in ["web", "app", "db"] {
            let (svc, idx) =
                route_component(&mut master, &part, tier, SimTime::ZERO).expect("healthy tier");
            master.switch_mut(svc).unwrap().complete(
                idx,
                SimDuration::from_millis(3),
                SimTime::ZERO,
            );
        }
    }
    println!("\nafter 6 user requests (each touching all three tiers):");
    for (name, svc) in &part.components {
        println!(
            "  tier {name:>4}: served per node {:?}",
            master.switch(*svc).unwrap().served_counts()
        );
    }

    teardown_partitioned(&mut master, &part, &mut daemons).expect("teardown");
    println!("\npartition torn down; all slices released");
}
