//! Quickstart: bring up the paper's testbed, create a web content
//! service with requirement `<3, M>`, and serve some requests.
//!
//! Run with: `cargo run --example quickstart`

use soda::core::service::ServiceSpec;
use soda::core::world::{create_service_driven, submit_request, SodaWorld};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;

fn main() {
    // The paper's two HUP hosts (seattle + tacoma) on a 100 Mbps LAN,
    // with the observability layer switched on: every entity records
    // typed events, virtual-time spans and labeled metrics into the
    // shared `Obs` handle.
    let mut world = SodaWorld::testbed();
    let obs = world.enable_obs(4096);
    let mut engine = Engine::new(world);

    // Table 1's machine configuration M.
    let m = ResourceVector::TABLE1_EXAMPLE;
    println!("machine configuration M: {m}");

    // SODA_service_creation: name, image location, <n, M>.
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: m,
        port: 8080,
    };
    let service = create_service_driven(&mut engine, spec, "webco").expect("admission succeeds");
    println!("service admitted as {service}");

    // The SODA Daemons download the image and bootstrap the nodes.
    engine.run_until(SimTime::from_secs(120));
    let created = engine.state().creations[0].clone();
    println!(
        "service created in {} (download + bootstrap of the slowest node)",
        created.reply.creation_time
    );
    for n in &created.reply.nodes {
        println!(
            "  virtual service node at {}:{} capacity {}M",
            n.ip, n.port, n.capacity
        );
    }

    // The switch's service configuration file (Table 3 format).
    let cfg = engine
        .state()
        .master
        .switch(service)
        .unwrap()
        .config()
        .to_string();
    println!("service configuration file:\n{cfg}");

    // Serve 30 requests of 50 kB through the switch.
    let t0 = engine.now();
    for i in 0..30u64 {
        engine.schedule_at(
            t0 + SimDuration::from_millis(100 * i),
            move |w: &mut SodaWorld, ctx| {
                submit_request(w, ctx, service, 50_000);
            },
        );
    }
    engine.run_until(t0 + SimDuration::from_secs(60));

    let world = engine.state();
    let sw = world.master.switch(service).unwrap();
    println!(
        "requests served per node (weighted round-robin 2:1): {:?}",
        sw.served_counts()
    );
    println!(
        "mean response time per node: {:?} s",
        sw.mean_responses()
            .iter()
            .map(|r| format!("{r:.4}"))
            .collect::<Vec<_>>()
    );
    println!(
        "ASP invoice so far: {:.4} units",
        world.agent.invoice("webco", engine.now())
    );

    // Dump the observability timeline: every typed event the run
    // recorded (admission, placement, Table 2 boot phases, per-request
    // switching), in virtual-time order.
    let timeline = obs.drain_events().expect("obs is enabled");
    println!("\n-- timeline ({} events) --", timeline.events.len());
    for e in timeline.events.iter().take(12) {
        println!("{e}");
    }
    if timeline.events.len() > 12 {
        println!("... {} more", timeline.events.len() - 12);
    }

    // And the metrics registry as JSON: counters/gauges/histograms
    // labeled by service/vsn/host — the same snapshot the exp_*
    // binaries write to results/<exp>.json.
    let snapshot = obs.snapshot().expect("obs is enabled");
    println!("\n-- metrics snapshot (JSON) --");
    println!(
        "{}",
        serde_json::to_string_pretty(&snapshot).expect("snapshot serializes")
    );
    println!("\n-- timeline (JSON, first 3 events) --");
    let head = soda::sim::DrainedEvents {
        events: timeline.events.iter().take(3).copied().collect(),
        dropped: timeline.dropped,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&head).expect("timeline serializes")
    );
}
