//! Wide-area HUP federation (§3.5's future-work direction): several
//! local HUPs, each with its own SODA Agent and Master, joined by WAN
//! links. Creation requests prefer the local site and fail over to the
//! nearest peer with capacity, paying the WAN image-shipping cost.
//!
//! Run with: `cargo run --example federation`

use soda::core::federation::{Federation, Site, SiteId};
use soda::core::master::SodaMaster;
use soda::core::service::ServiceSpec;
use soda::hostos::resources::ResourceVector;
use soda::hup::daemon::SodaDaemon;
use soda::hup::host::{HostId, HupHost};
use soda::net::link::LinkSpec;
use soda::net::pool::IpPool;
use soda::sim::{SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;

fn site(id: u32, name: &str, hosts: u32) -> Site {
    let daemons: Vec<SodaDaemon> = (0..hosts)
        .map(|i| {
            SodaDaemon::new(HupHost::seattle(
                HostId(id * 100 + i),
                IpPool::new(format!("10.{id}.{i}.0").parse().unwrap(), 16),
            ))
        })
        .collect();
    Site {
        id: SiteId(id),
        name: name.into(),
        master: SodaMaster::new(),
        daemons,
    }
}

fn main() {
    // Three university HUPs.
    let mut federation = Federation::new(vec![
        site(1, "purdue", 1),
        site(2, "wisconsin", 2),
        site(3, "berkeley", 3),
    ]);
    federation.connect(
        SiteId(1),
        SiteId(2),
        LinkSpec::wan(10.0, SimDuration::from_millis(20)),
    );
    federation.connect(
        SiteId(1),
        SiteId(3),
        LinkSpec::wan(10.0, SimDuration::from_millis(60)),
    );
    federation.connect(
        SiteId(2),
        SiteId(3),
        LinkSpec::wan(45.0, SimDuration::from_millis(45)),
    );

    let spec = |n: u32| ServiceSpec {
        name: "e-lab".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: n,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };

    println!(
        "candidate order from purdue: {:?}",
        federation.candidate_sites(SiteId(1))
    );

    // Small request: fits at the preferred site.
    let r1 = federation
        .create_service(spec(2), "asp-a", SiteId(1), SimTime::ZERO)
        .unwrap();
    println!(
        "<2, M> from purdue → hosted at site {:?} (wan transfer {})",
        r1.site, r1.wan_transfer
    );

    // Larger request: purdue is now nearly full, fails over to the
    // nearest connected peer, paying the image-shipping time.
    let r2 = federation
        .create_service(spec(4), "asp-b", SiteId(1), SimTime::ZERO)
        .unwrap();
    println!(
        "<4, M> from purdue → hosted at site {:?} named {:?} (wan transfer {})",
        r2.site,
        federation.site(r2.site).unwrap().name,
        r2.wan_transfer
    );

    // Huge request: nothing fits anywhere.
    match federation.create_service(spec(60), "asp-c", SiteId(1), SimTime::ZERO) {
        Err(e) => println!("<60, M> rejected federation-wide: {e}"),
        Ok(_) => unreachable!("no site has 60 instances"),
    }

    // Teardown at the owning site.
    federation.teardown(r2.site, r2.reply.service).unwrap();
    println!("service {} torn down at its owning site", r2.reply.service);
}
