//! The §5 attack-isolation scenario: a web content service and a
//! deliberately vulnerable *honeypot* service share HUP host *seattle*.
//! The honeypot's ghttpd is constantly exploited and crashed; the web
//! content service is not affected (Figure 3's side-by-side guests).
//!
//! Run with: `cargo run --example honeypot`

use soda::core::service::ServiceSpec;
use soda::core::world::{create_service_driven, SodaWorld};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::attack::AttackCampaign;
use soda::workload::httpgen::PoissonGenerator;

fn main() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 2003);
    let m = ResourceVector::TABLE1_EXAMPLE;

    // Web content service: <3, M> → 2M on seattle + 1M on tacoma.
    let web = create_service_driven(
        &mut engine,
        ServiceSpec {
            name: "Web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: 3,
            machine: m,
            port: 8080,
        },
        "webco",
    )
    .expect("web admitted");

    // Honeypot: one node, lands on seattle next to the web node.
    let honeypot = create_service_driven(
        &mut engine,
        ServiceSpec {
            name: "Honeypot".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: m,
            port: 80,
        },
        "seclab",
    )
    .expect("honeypot admitted");

    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 2);

    // Figure 3: both guests greet with the SODA banner, and each guest's
    // `ps -ef` shows only its own processes.
    {
        let world = engine.state();
        let hp_node = world.master.service(honeypot).unwrap().nodes[0];
        let web_node = world.master.service(web).unwrap().nodes[0];
        let daemon = world
            .daemons
            .iter()
            .find(|d| d.host.id == hp_node.host)
            .unwrap();
        for (label, vsn) in [("web", web_node.vsn), ("honeypot", hp_node.vsn)] {
            if let Some(guest) = daemon.vsn(vsn).and_then(|v| v.guest()) {
                println!("--- {label} console ---");
                println!("{}", guest.login_banner());
                println!("# ps -ef");
                for cmd in guest.ps(&daemon.host.processes) {
                    println!("  {cmd}");
                }
            }
        }
    }

    // Clients hammer the web service while the honeypot is attacked and
    // crashed once a minute (and re-primed in between).
    let t0 = engine.now();
    let hp_vsn = engine.state().master.service(honeypot).unwrap().nodes[0].vsn;
    PoissonGenerator {
        service: web,
        dataset_bytes: 50_000,
        rate_rps: 20.0,
        start: t0,
        end: t0 + SimDuration::from_secs(300),
    }
    .start(&mut engine);
    AttackCampaign {
        service: honeypot,
        vsn: hp_vsn,
        period: SimDuration::from_secs(60),
        start: t0 + SimDuration::from_secs(5),
        end: t0 + SimDuration::from_secs(300),
        revive: true,
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(400));

    let world = engine.state();
    let hp_rec = world.master.service(honeypot).unwrap();
    let daemon = world
        .daemons
        .iter()
        .find(|d| d.host.id == hp_rec.nodes[0].host)
        .unwrap();
    println!(
        "\nhoneypot crash count: {}",
        daemon.vsn(hp_vsn).unwrap().crash_count
    );
    let sw = world.master.switch(web).unwrap();
    println!(
        "web requests served: {:?} (dropped: {})",
        sw.served_counts(),
        world.dropped
    );
    println!(
        "web mean response times: {:?} s — unaffected by the attacks",
        sw.mean_responses()
            .iter()
            .map(|r| format!("{r:.4}"))
            .collect::<Vec<_>>()
    );
}
