//! The paper's motivating example (§1): "a bioinformatics institute
//! wishes to provide a genome matching service to the research
//! community, without using its limited IT resources. It can make a
//! service creation call to a HUP, and the entire image of the genome
//! matching service will be downloaded to and bootstrapped in the HUP."
//!
//! This example walks the full ASP lifecycle: registration, creation of
//! a custom (large, database-backed) image, serving load, resizing up
//! when demand grows, resizing down, teardown — and the bill.
//!
//! Run with: `cargo run --example genome_service`

use soda::core::api::Credential;
use soda::core::service::ServiceSpec;
use soda::core::world::{create_service_driven, SodaWorld};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PoissonGenerator;

fn main() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 7);

    // Contract setup: the institute registers with the SODA Agent.
    engine
        .state_mut()
        .agent
        .register_asp("biolab", "genome-key");
    let cred = Credential {
        asp: "biolab".into(),
        key: "genome-key".into(),
    };
    engine
        .state_mut()
        .agent
        .authenticate(&cred)
        .expect("registered ASP");
    println!("ASP 'biolab' authenticated by the SODA Agent");

    // The genome matching service: a custom image bundling the matcher
    // and a sequence database, needing sshd (for staff administration,
    // "as if the service were hosted locally") and mysqld.
    let catalog = RootFsCatalog::new();
    let image = catalog.custom(
        "genome_match_fs_1.2",
        30_000_000,  // system part
        150_000_000, // sequence database
        &[
            "init", "syslogd", "network", "sshd", "mysqld", "httpd", "random", "crond",
        ],
        false,
    );
    let spec = ServiceSpec {
        name: "genome-match".into(),
        image,
        required_services: vec!["network", "syslogd", "sshd", "mysqld"],
        app_class: StartupClass::Heavy,
        instances: 1,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 9000,
    };
    let service = create_service_driven(&mut engine, spec, "biolab").expect("admitted");
    engine.run_until(SimTime::from_secs(180));
    let created = &engine.state().creations[0];
    println!(
        "genome service created in {} (180 MB image download + tailored bootstrap)",
        created.reply.creation_time
    );

    // Research community load at <1, M>.
    let t0 = engine.now();
    PoissonGenerator {
        service,
        dataset_bytes: 120_000,
        rate_rps: 4.0,
        start: t0,
        end: t0 + SimDuration::from_secs(600),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(300));
    let mean_1m = engine
        .state()
        .master
        .switch(service)
        .unwrap()
        .mean_responses()[0];
    println!("mean response at <1, M>: {mean_1m:.4}s");

    // Demand grows: SODA_service_resizing to <3, M>.
    {
        let now = engine.now();
        let world = engine.state_mut();
        let mut daemons = std::mem::take(&mut world.daemons);
        let outcome = world
            .master
            .resize(service, 3, &mut daemons, now)
            .expect("resize ok");
        world.daemons = daemons;
        world.agent.billing_resize(service, 3, now);
        println!(
            "resized to <3, M>: {} node(s) widened in place, {} new node(s) placed",
            outcome.resized.len(),
            outcome.tickets.len()
        );
        // Any freshly placed nodes boot instantly in this example (the
        // image is already cached at the HUP after the first download).
        let pending: Vec<_> = outcome.tickets.iter().map(|(_, t)| t.vsn).collect();
        let mut daemons = std::mem::take(&mut world.daemons);
        for vsn in pending {
            world
                .master
                .resize_node_ready(service, vsn, &mut daemons, now)
                .expect("node up");
        }
        world.daemons = daemons;
    }
    println!(
        "config file now:\n{}",
        engine.state().master.switch(service).unwrap().config()
    );

    engine.run_until(engine.now() + SimDuration::from_secs(300));
    let world = engine.state();
    let sw = world.master.switch(service).unwrap();
    println!("served per node after resize: {:?}", sw.served_counts());

    // Wind down: teardown and the final invoice.
    let now = engine.now();
    let world = engine.state_mut();
    let mut daemons = std::mem::take(&mut world.daemons);
    world
        .master
        .teardown(service, &mut daemons)
        .expect("teardown");
    world.daemons = daemons;
    world.agent.billing_stop(service, now);
    println!(
        "service torn down; biolab owes {:.4} units for {:.0} instance-seconds",
        world.agent.invoice("biolab", now),
        world.agent.usage(service, now)
    );
}
