//! The switch's per-request hot path must be allocation-free once warm:
//! `route()` hands the policy an incrementally maintained view cache
//! (no per-request `Vec<BackendView>`), and `complete()`'s accounting
//! (EWMA + Welford summary) is plain arithmetic. This lives in its own
//! integration-test binary and the allocation counter is thread-local,
//! so the libtest harness's own threads (spawning, result channels,
//! slow-test timers) can never bleed allocations into a window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use soda::core::service::ServiceId;
use soda::core::switch::ServiceSwitch;
use soda::sim::{Obs, SimDuration, SimTime};
use soda::vmm::vsn::VsnId;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations made by the *calling* thread so far.
fn allocations_here() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be mid-teardown on exiting threads.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn wide_switch(backends: u32) -> ServiceSwitch {
    let mut sw = ServiceSwitch::new(ServiceId(1), VsnId(1));
    for i in 0..backends {
        let ip = format!("10.0.{}.{}", i / 250, i % 250 + 1);
        sw.add_backend(
            VsnId(u64::from(i) + 1),
            ip.parse().expect("valid"),
            8080,
            1 + i % 4,
        );
    }
    sw
}

#[test]
fn warm_switch_hot_paths_never_allocate() {
    // --- route + complete under load -------------------------------
    let mut sw = wide_switch(64);
    // Warm up: the default WRR policy sizes its weight vector on first
    // pick; everything after that must be steady-state.
    for _ in 0..8 {
        let i = sw.route(SimTime::ZERO).expect("healthy");
        let vsn = sw.backends()[i].vsn;
        sw.complete(vsn, SimDuration::from_millis(3), SimTime::ZERO);
    }
    let before = allocations_here();
    for _ in 0..10_000u32 {
        let i = sw.route(SimTime::ZERO).expect("healthy");
        let vsn = sw.backends()[i].vsn;
        sw.complete(vsn, SimDuration::from_millis(3), SimTime::ZERO);
    }
    let after = allocations_here();
    assert_eq!(
        after - before,
        0,
        "route+complete must not allocate once warm (got {} allocations over 10k requests)",
        after - before
    );
    sw.assert_cache_coherent();

    // --- drop + abort paths ----------------------------------------
    let mut sw = wide_switch(8);
    let i = sw.route(SimTime::ZERO).expect("healthy");
    let vsn = sw.backends()[i].vsn;
    sw.abort(vsn, SimTime::ZERO);
    // Take every backend down so route() exercises the drop branch.
    for v in 1..=8u64 {
        sw.set_health(VsnId(v), false);
    }
    assert_eq!(sw.route(SimTime::ZERO), None);
    let before = allocations_here();
    for _ in 0..10_000u32 {
        assert_eq!(sw.route(SimTime::ZERO), None);
        sw.abort(VsnId(3), SimTime::ZERO); // saturates at zero, still alloc-free
    }
    let after = allocations_here();
    assert_eq!(after - before, 0, "drop/abort paths must not allocate");
    sw.assert_cache_coherent();
}

/// With observability ON the hot path stays allocation-free once warm:
/// the event ring reuses its slots past capacity, and the per-backend
/// metric labels are interned to [`soda::sim::MetricHandle`]s on first
/// record, so steady-state counter/gauge/histogram writes are plain
/// indexed arithmetic — no `MetricId` rebuilding, no map lookups, no
/// string work.
#[test]
fn warm_switch_hot_paths_never_allocate_with_obs_on() {
    let obs = Obs::enabled(256);
    let mut sw = wide_switch(64);
    sw.set_obs(obs.clone());
    // Warm up: first route/complete per backend interns its handles, and
    // 512 round trips (2 events each) push the ring past its 256-slot
    // capacity into steady-state eviction.
    for _ in 0..512 {
        let i = sw.route(SimTime::ZERO).expect("healthy");
        let vsn = sw.backends()[i].vsn;
        sw.complete(vsn, SimDuration::from_millis(3), SimTime::ZERO);
    }
    let before = allocations_here();
    for _ in 0..10_000u32 {
        let i = sw.route(SimTime::ZERO).expect("healthy");
        let vsn = sw.backends()[i].vsn;
        sw.complete(vsn, SimDuration::from_millis(3), SimTime::ZERO);
    }
    let after = allocations_here();
    assert_eq!(
        after - before,
        0,
        "route+complete with obs on must not allocate once warm (got {} allocations over 10k requests)",
        after - before
    );
    sw.assert_cache_coherent();
    // The metrics really were recorded through the handles.
    let snap = obs.snapshot().expect("enabled");
    assert!(snap.samples.iter().any(|s| s.name.contains("served")));
}
