//! Differential oracle tests for the scale-out hot paths.
//!
//! Each indexed fast path is driven side-by-side with a deliberately
//! naive model of the behaviour it replaced, over randomized op
//! sequences, and must agree bit-for-bit:
//!
//! * `InflightTable` (host-major primary + VSN secondary index) vs a
//!   plain scan-everything map — same membership, same drain order;
//! * heap-indexed best/worst-fit placement vs the original O(n·H)
//!   linear scan — same hosts, same counts, same order;
//! * alloc-free switch routing (incremental view cache) vs a policy fed
//!   a freshly rebuilt view vector every request — same picks, and the
//!   incremental aggregates match a from-scratch recompute after every
//!   mutation (`assert_cache_coherent`).

use std::collections::BTreeMap;

use proptest::prelude::*;
use soda::core::arena::{IdMap, RequestTable, WorldStorageKind};
use soda::core::inflight::InflightTable;
use soda::core::placement::{oracle, BestFit, PlacementPolicy, WorstFit};
use soda::core::policy::{BackendView, SwitchPolicy, WeightedRoundRobin};
use soda::core::service::ServiceId;
use soda::core::switch::ServiceSwitch;
use soda::hostos::resources::ResourceVector;
use soda::hup::host::HostId;
use soda::net::link::FlowId;
use soda::sim::{SimDuration, SimTime};
use soda::vmm::vsn::VsnId;

// ---------------------------------------------------------------------
// InflightTable vs naive scan-everything map
// ---------------------------------------------------------------------

/// The pre-index shape: one map, bulk removals by full scan.
#[derive(Default)]
struct NaiveInflight {
    flows: BTreeMap<(HostId, FlowId), (Option<VsnId>, u32)>,
}

impl NaiveInflight {
    fn insert(&mut self, host: HostId, flow: FlowId, vsn: Option<VsnId>, payload: u32) {
        self.flows.insert((host, flow), (vsn, payload));
    }
    fn remove(&mut self, host: HostId, flow: FlowId) -> Option<u32> {
        self.flows.remove(&(host, flow)).map(|(_, p)| p)
    }
    fn drain_host(&mut self, host: HostId) -> Vec<((HostId, FlowId), u32)> {
        let keys: Vec<_> = self
            .flows
            .keys()
            .filter(|(h, _)| *h == host)
            .copied()
            .collect();
        keys.into_iter()
            .map(|k| (k, self.flows.remove(&k).expect("enumerated").1))
            .collect()
    }
    fn drain_vsn(&mut self, vsn: VsnId) -> Vec<((HostId, FlowId), u32)> {
        let keys: Vec<_> = self
            .flows
            .iter()
            .filter(|(_, (v, _))| *v == Some(vsn))
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .map(|k| (k, self.flows.remove(&k).expect("enumerated").1))
            .collect()
    }
}

proptest! {
    /// Random insert/remove/drain sequences: the indexed table and the
    /// naive map agree on every return value (payloads AND order) and
    /// on the final contents, and the VSN index never drifts.
    #[test]
    fn inflight_table_matches_naive_scans(
        ops in proptest::collection::vec(
            (0u8..4, 0u32..4, 0u64..12, 0u64..4), 0..120)
    ) {
        let mut fast: InflightTable<u32> = InflightTable::new();
        let mut naive = NaiveInflight::default();
        for (i, &(op, host, flow, vsn)) in ops.iter().enumerate() {
            let host = HostId(host);
            let flow = FlowId(flow);
            match op {
                0 => {
                    // Tag roughly half the flows with a VSN, like real
                    // response flows among downloads/floods.
                    let tag = (vsn > 0).then_some(VsnId(vsn));
                    let payload = i as u32;
                    fast.insert(host, flow, tag, payload);
                    naive.insert(host, flow, tag, payload);
                }
                1 => {
                    prop_assert_eq!(fast.remove(host, flow), naive.remove(host, flow));
                }
                2 => {
                    prop_assert_eq!(fast.drain_host(host), naive.drain_host(host));
                }
                _ => {
                    prop_assert_eq!(
                        fast.drain_vsn(VsnId(vsn)),
                        naive.drain_vsn(VsnId(vsn))
                    );
                }
            }
            fast.assert_coherent();
            prop_assert_eq!(fast.len(), naive.flows.len());
        }
        let fast_all: Vec<((HostId, FlowId), u32)> =
            fast.iter().map(|(k, p)| (k, *p)).collect();
        let naive_all: Vec<((HostId, FlowId), u32)> =
            naive.flows.iter().map(|(k, (_, p))| (*k, *p)).collect();
        prop_assert_eq!(fast_all, naive_all);
    }
}

// ---------------------------------------------------------------------
// Dense arena world storage vs the ordered-map oracle
// ---------------------------------------------------------------------

proptest! {
    /// Random world-shaped lifecycle interleavings — host add / crash /
    /// repair (insert, remove, re-insert of the *same* id, so freed
    /// slots get reused), VSN place / retag / scrub (insert, in-place
    /// mutate, remove), plus bulk `retain` sweeps like the recovery
    /// scrub — driven side-by-side through the `Arena` slab and the
    /// `Map` oracle. Every return value, every length, and the final
    /// ascending-order iteration must agree bit-for-bit.
    #[test]
    fn idmap_lifecycle_matches_map_oracle(
        stride in 1u64..4,
        lane in 0u64..4,
        ops in proptest::collection::vec((0u8..5, 0u64..14, 0u32..100), 0..160)
    ) {
        let lane = lane % stride;
        let mut arena: IdMap<VsnId, u32> = IdMap::new(WorldStorageKind::Arena);
        arena.set_stride(stride);
        let mut map: IdMap<VsnId, u32> = IdMap::new(WorldStorageKind::Map);
        map.set_stride(stride);
        // Ids live in one allocation lane: congruent modulo `stride`,
        // exactly the shape PR 8's id-lane striping hands each cell.
        let id = |slot: u64| VsnId(lane + 1 + slot * stride);
        for &(op, slot, val) in &ops {
            let k = id(slot);
            match op {
                // place / repair (re-inserting a previously crashed id
                // reuses its freed slot and bumps the generation)
                0 | 1 => {
                    prop_assert_eq!(arena.insert(k, val), map.insert(k, val));
                }
                // crash / scrub
                2 => {
                    prop_assert_eq!(arena.remove(&k), map.remove(&k));
                }
                // retag in place
                3 => {
                    let a = arena.get_mut(&k).map(|v| { *v += 1; *v });
                    let b = map.get_mut(&k).map(|v| { *v += 1; *v });
                    prop_assert_eq!(a, b);
                }
                // recovery sweep: drop every odd payload, and the
                // visit order itself must be ascending in both
                _ => {
                    let mut seen_a = Vec::new();
                    arena.retain(|k, v| { seen_a.push(k); *v % 2 == 0 });
                    let mut seen_m = Vec::new();
                    map.retain(|k, v| { seen_m.push(k); *v % 2 == 0 });
                    prop_assert_eq!(seen_a, seen_m);
                }
            }
            prop_assert_eq!(arena.len(), map.len());
            prop_assert_eq!(arena.get(&k), map.get(&k));
        }
        let a: Vec<(VsnId, u32)> = arena.iter().map(|(k, v)| (k, *v)).collect();
        let m: Vec<(VsnId, u32)> = map.iter().map(|(k, v)| (k, *v)).collect();
        prop_assert_eq!(a, m);
    }

    /// Slot reuse can never resurrect a stale reference: a handle taken
    /// before its id was removed must read `None` after any
    /// remove+reinsert, while a fresh handle reads the new occupant.
    #[test]
    fn idmap_handles_go_stale_across_slot_reuse(
        slots in proptest::collection::vec(0u64..6, 1..40)
    ) {
        let mut arena: IdMap<HostId, u64> = IdMap::new(WorldStorageKind::Arena);
        for (round, &slot) in slots.iter().enumerate() {
            let k = HostId(slot as u32 + 1);
            let round = round as u64;
            arena.insert(k, round);
            let live = arena.handle(&k).expect("present after insert");
            prop_assert_eq!(arena.get_by_handle(live), Some(&round));
            arena.remove(&k);
            prop_assert_eq!(arena.get_by_handle(live), None, "freed slot");
            arena.insert(k, round + 1000);
            prop_assert_eq!(
                arena.get_by_handle(live), None,
                "reused slot must not alias the new occupant"
            );
            let fresh = arena.handle(&k).expect("present after reinsert");
            prop_assert_eq!(arena.get_by_handle(fresh), Some(&(round + 1000)));
            // Leave roughly half the ids in place so later rounds mix
            // fresh slots with reused ones.
            if slot % 2 == 0 {
                arena.remove(&k);
            }
        }
    }

    /// Request open / complete / abort against the ring: ids are
    /// allocated monotonically (the world's `RequestId` counter), and
    /// completions/aborts land in random order, so the ring's
    /// leading-empty compaction is exercised hard. The `Map` oracle
    /// must agree on every removal and lookup.
    #[test]
    fn request_table_window_matches_map_oracle(
        ops in proptest::collection::vec((0u8..3, 0usize..8), 1..200)
    ) {
        let mut arena: RequestTable<VsnId, u64> = RequestTable::new(WorldStorageKind::Arena);
        let mut map: RequestTable<VsnId, u64> = RequestTable::new(WorldStorageKind::Map);
        let mut next = 1u64;
        let mut open: Vec<u64> = Vec::new();
        for &(op, pick) in &ops {
            match op {
                // open: the next monotonic id
                0 => {
                    let k = VsnId(next);
                    prop_assert_eq!(arena.insert(k, next * 7), map.insert(k, next * 7));
                    open.push(next);
                    next += 1;
                }
                // complete/abort: some open request, or a known-closed
                // id when none are open (both must return None)
                _ => {
                    let d = if open.is_empty() {
                        next.saturating_sub(1).max(1)
                    } else {
                        open.swap_remove(pick % open.len())
                    };
                    let k = VsnId(d);
                    prop_assert_eq!(arena.remove(&k), map.remove(&k));
                    prop_assert_eq!(arena.remove(&k), None, "double-complete");
                }
            }
            prop_assert_eq!(arena.len(), map.len());
            prop_assert_eq!(arena.is_empty(), map.is_empty());
        }
        for d in 1..next {
            let k = VsnId(d);
            prop_assert_eq!(arena.get(&k), map.get(&k));
        }
    }
}

// ---------------------------------------------------------------------
// Indexed placement vs the original linear scan
// ---------------------------------------------------------------------

proptest! {
    /// Worst-fit and best-fit over the ordered headroom index make the
    /// same decisions as the naive per-instance scan, across random
    /// fleets (including hosts with zero headroom and infeasible
    /// demands).
    #[test]
    fn heap_placement_matches_linear_scan(
        n in 0u32..20,
        hosts in proptest::collection::vec((0u32..8, 0u32..8, 0u32..8, 0u32..8), 0..10)
    ) {
        let m = ResourceVector::new(512, 256, 1024, 10);
        let host_list: Vec<(HostId, ResourceVector)> = hosts
            .iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| {
                (HostId(i as u32),
                 ResourceVector::new(512 * a, 256 * b, 1024 * c, 10 * d))
            })
            .collect();
        prop_assert_eq!(
            WorstFit.place(n, &m, &host_list),
            oracle::one_at_a_time_naive(n, &m, &host_list, true)
        );
        prop_assert_eq!(
            BestFit.place(n, &m, &host_list),
            oracle::one_at_a_time_naive(n, &m, &host_list, false)
        );
    }
}

// ---------------------------------------------------------------------
// Alloc-free switch routing vs naively rebuilt views
// ---------------------------------------------------------------------

/// Mirror of the switch's backend state, maintained the naive way: a
/// fresh `Vec<BackendView>` is materialised for every routing decision.
struct NaiveSwitch {
    backends: Vec<(VsnId, BackendView, u64)>, // (vsn, view, served)
    policy: WeightedRoundRobin,
    ewma_alpha: f64,
}

impl NaiveSwitch {
    fn route(&mut self) -> Option<usize> {
        let views: Vec<BackendView> = self.backends.iter().map(|&(_, v, _)| v).collect();
        let i = self.policy.pick(&views)?;
        if i < self.backends.len() {
            self.backends[i].1.outstanding += 1;
            Some(i)
        } else {
            None
        }
    }
    fn complete(&mut self, vsn: VsnId, rt_secs: f64) {
        if let Some((_, v, served)) = self.backends.iter_mut().find(|(b, _, _)| *b == vsn) {
            v.outstanding = v.outstanding.saturating_sub(1);
            *served += 1;
            v.ewma_response = if *served == 1 {
                rt_secs
            } else {
                (1.0 - self.ewma_alpha) * v.ewma_response + self.ewma_alpha * rt_secs
            };
        }
    }
    fn abort(&mut self, vsn: VsnId) {
        if let Some((_, v, _)) = self.backends.iter_mut().find(|(b, _, _)| *b == vsn) {
            v.outstanding = v.outstanding.saturating_sub(1);
        }
    }
}

proptest! {
    /// Random op sequences (route, complete, abort, add/remove backend,
    /// capacity and health flips): the cached-view switch and the
    /// rebuild-every-time mirror pick the same backends in the same
    /// order, and the switch's incremental aggregates survive a
    /// from-scratch recompute after every single op.
    #[test]
    fn switch_view_cache_matches_rebuilt_views(
        ops in proptest::collection::vec((0u8..7, 0u64..6, 0u32..5), 1..150)
    ) {
        let mut sw = ServiceSwitch::new(ServiceId(1), VsnId(1));
        let mut naive = NaiveSwitch {
            backends: Vec::new(),
            policy: WeightedRoundRobin::new(),
            ewma_alpha: 0.2,
        };
        let mut next_vsn = 1u64;
        for &(op, target, cap) in &ops {
            match op {
                // Three of the seven op codes route, so routing
                // dominates the sequence the way it dominates the sim.
                0..=2 => {
                    let got = sw.route(SimTime::ZERO);
                    let want = naive.route();
                    prop_assert_eq!(got, want, "divergent pick");
                    if let Some(i) = got {
                        // Complete or abort immediately with a varying
                        // response time so EWMA feedback stays in play.
                        let vsn = sw.backends()[i].vsn;
                        if target % 2 == 0 {
                            let ms = 1 + target;
                            sw.complete(vsn, SimDuration::from_millis(ms), SimTime::ZERO);
                            naive.complete(vsn, ms as f64 / 1e3);
                        } else {
                            sw.abort(vsn, SimTime::ZERO);
                            naive.abort(vsn);
                        }
                    }
                }
                3 => {
                    // Add a backend (bounded so removal arms can bite).
                    if sw.backends().len() < 6 {
                        let vsn = VsnId(next_vsn);
                        next_vsn += 1;
                        let ip: soda::net::addr::Ipv4Addr =
                            format!("10.0.0.{next_vsn}").parse().expect("valid");
                        sw.add_backend(vsn, ip, 8080, cap);
                        naive.backends.push((
                            vsn,
                            BackendView {
                                capacity: cap,
                                healthy: true,
                                outstanding: 0,
                                ewma_response: 0.0,
                            },
                            0,
                        ));
                    }
                }
                4 => {
                    let vsn = VsnId(target);
                    prop_assert_eq!(
                        sw.remove_backend(vsn),
                        {
                            let pos = naive.backends.iter().position(|(b, _, _)| *b == vsn);
                            if let Some(p) = pos { naive.backends.remove(p); }
                            pos.is_some()
                        }
                    );
                }
                5 => {
                    let vsn = VsnId(target);
                    sw.set_capacity(vsn, cap);
                    if let Some((_, v, _)) =
                        naive.backends.iter_mut().find(|(b, _, _)| *b == vsn)
                    {
                        v.capacity = cap;
                    }
                }
                _ => {
                    let vsn = VsnId(target);
                    let healthy = cap % 2 == 0;
                    sw.set_health(vsn, healthy);
                    if let Some((_, v, _)) =
                        naive.backends.iter_mut().find(|(b, _, _)| *b == vsn)
                    {
                        v.healthy = healthy;
                    }
                }
            }
            sw.assert_cache_coherent();
            // The healthy-capacity aggregate the Master's recovery loop
            // reads must equal the naive sum at every step.
            let naive_healthy: u32 = naive
                .backends
                .iter()
                .filter(|(_, v, _)| v.healthy)
                .map(|(_, v, _)| v.capacity)
                .sum();
            prop_assert_eq!(sw.healthy_capacity(), naive_healthy);
        }
    }
}
