//! The disabled observability path must be a branch-only no-op: no
//! heap allocation, ever. This lives in its own integration-test
//! binary so the counting allocator sees only this test's activity
//! (the default harness runs tests in parallel threads, which would
//! make a shared allocation counter racy).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use soda::sim::{Event, Labels, Obs, SimTime};

/// Serializes the counting windows: the harness still spawns one thread
/// per test, but only one test at a time may touch the allocator
/// between its `before`/`after` reads.
static COUNTER_WINDOW: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disabled_obs_path_never_allocates() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let obs = Obs::disabled();
    let now = SimTime::from_secs(1);
    let labels = Labels::two("service", 1, "vsn", 2);
    // Warm everything up once (lazy statics, formatting machinery in
    // the surrounding harness) before counting.
    obs.record(now, Event::HostFailure { host: 1 });
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        obs.record(now, Event::RequestDispatched { service: 1, vsn: i });
        obs.record(
            now,
            Event::AdmissionDecision {
                service: i,
                accepted: true,
                instances: 3,
            },
        );
        obs.record(
            now,
            Event::BootPhaseEntered {
                vsn: i,
                host: 1,
                phase: "customize",
            },
        );
        obs.counter_add("switch", "served", labels, 1);
        obs.gauge_set("switch", "outstanding", labels, 4.0);
        obs.histogram_record("switch", "response_time", labels, 1_000_000);
        obs.span_enter("master", "priming", i, now);
        obs.span_exit("master", "priming", i, now);
        obs.span_record("daemon", "mount", labels, SimTime::ZERO, now);
        assert!(!obs.is_enabled());
        assert!(obs.snapshot().is_none());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled obs must not allocate (got {} allocations over 10k calls)",
        after - before
    );
}

#[test]
fn enabled_event_recording_reuses_ring_slots_once_warm() {
    // Sanity check on the enabled path: Event variants are Copy and the
    // ring buffer reuses its slots, so a warm, at-capacity log records
    // without fresh allocations either.
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let obs = Obs::enabled(64);
    let now = SimTime::from_secs(2);
    // Fill past capacity so the ring is warm and evicting.
    for i in 0..128u64 {
        obs.record(now, Event::RequestCompleted { service: 1, vsn: i });
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        obs.record(now, Event::RequestCompleted { service: 1, vsn: i });
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm event log must reuse its ring slots"
    );
}
