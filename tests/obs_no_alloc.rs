//! The disabled observability path must be a branch-only no-op: no
//! heap allocation, ever. This lives in its own integration-test
//! binary so the counting allocator sees only this test's activity
//! (the default harness runs tests in parallel threads, which would
//! make a shared allocation counter racy).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use soda::sim::{Event, Labels, Obs, SimTime};

/// Serializes the counting windows: the harness still spawns one thread
/// per test, but only one test at a time may touch the allocator
/// between its `before`/`after` reads.
static COUNTER_WINDOW: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disabled_obs_path_never_allocates() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let obs = Obs::disabled();
    let now = SimTime::from_secs(1);
    let labels = Labels::two("service", 1, "vsn", 2);
    // Warm everything up once (lazy statics, formatting machinery in
    // the surrounding harness) before counting.
    obs.record(now, Event::HostFailure { host: 1 });
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        obs.record(now, Event::RequestDispatched { service: 1, vsn: i });
        obs.record(
            now,
            Event::AdmissionDecision {
                service: i,
                accepted: true,
                instances: 3,
            },
        );
        obs.record(
            now,
            Event::BootPhaseEntered {
                vsn: i,
                host: 1,
                phase: "customize",
            },
        );
        obs.counter_add("switch", "served", labels, 1);
        obs.gauge_set("switch", "outstanding", labels, 4.0);
        obs.histogram_record("switch", "response_time", labels, 1_000_000);
        obs.span_enter("master", "priming", i, now);
        obs.span_exit("master", "priming", i, now);
        obs.span_record("daemon", "mount", labels, SimTime::ZERO, now);
        assert!(!obs.is_enabled());
        assert!(obs.snapshot().is_none());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled obs must not allocate (got {} allocations over 10k calls)",
        after - before
    );
}

/// The disabled causal tracer is a branch-only no-op too: begin/child/
/// close calls through a disabled domain (or an enabled domain whose
/// tracer was never switched on) must not touch the heap.
#[test]
fn disabled_tracing_path_never_allocates() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let dark = Obs::disabled();
    let lit = Obs::enabled(64); // obs on, tracing NOT enabled
    let now = SimTime::from_secs(3);
    // Warm-up.
    dark.trace_begin("request", "request", 0, now);
    lit.trace_begin("request", "request", 0, now);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for key in 0..1_000u64 {
        let t = dark.trace_begin("request", "request", key, now);
        assert!(t.is_none());
        let c = dark.trace_child(t, "route", now, now);
        dark.trace_close(c, now);
        // An enabled obs domain with tracing off takes the same no-op
        // path: Tracer::disabled() declines every key without counting
        // or storing anything.
        let t = lit.trace_begin("request", "request", key, now);
        assert!(t.is_none());
        let o = lit.trace_open_child(t, "queue", now);
        lit.trace_close(o, now);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate (got {} allocations)",
        after - before
    );
}

/// The disabled engine self-profiler never allocates on the dispatch
/// path: `Profiler::observe` with profiling off is one branch, and even
/// the enabled profiler reuses its per-kind slots once every event
/// kind has been seen.
#[test]
fn profiler_paths_never_allocate_once_warm() {
    use soda::sim::Profiler;
    use std::time::Duration;

    let _guard = COUNTER_WINDOW.lock().unwrap();
    let mut off = Profiler::disabled();
    let mut on = Profiler::enabled();
    let kinds = ["nic_pump", "cpu_done", "client_arrival", "response_depart"];
    // Warm the enabled profiler: one slot per kind.
    for k in kinds {
        on.observe(k, Duration::from_nanos(1));
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000usize {
        let k = kinds[i % kinds.len()];
        let d = Duration::from_nanos(i as u64);
        off.observe(k, d);
        on.observe(k, d);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "profiler dispatch hook must not allocate (got {} allocations)",
        after - before
    );
}

#[test]
fn enabled_event_recording_reuses_ring_slots_once_warm() {
    // Sanity check on the enabled path: Event variants are Copy and the
    // ring buffer reuses its slots, so a warm, at-capacity log records
    // without fresh allocations either.
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let obs = Obs::enabled(64);
    let now = SimTime::from_secs(2);
    // Fill past capacity so the ring is warm and evicting.
    for i in 0..128u64 {
        obs.record(now, Event::RequestCompleted { service: 1, vsn: i });
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        obs.record(now, Event::RequestCompleted { service: 1, vsn: i });
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm event log must reuse its ring slots"
    );
}
