//! Property tests on the epoch-barrier merge: for randomized cross-cell
//! event schedules — same-tick ties across cells, events landing
//! exactly on an epoch bound, sends at the lookahead edge — every
//! `Parallel(n)` execution must pop the identical `(time, seq)` order
//! the `Serial` oracle does, cell by cell. The merge's determinism is
//! the entire correctness argument of the parallel engine, so this file
//! attacks exactly that.

use proptest::prelude::*;
use soda::sim::{run_cells, CellPort, CellWorld, Engine, EngineKind, SimDuration, SimTime};

/// The lookahead every schedule runs under (ns).
const L: u64 = 500;

/// A minimal cell world: a log of `(time, tag, pop_seq)` plus the port.
/// The promise is maintained as the exact minimum of the remaining
/// planned send times, the same discipline the SODA driver uses.
struct Toy {
    port: CellPort<Toy>,
    log: Vec<(u64, u32)>,
    pending_sends: Vec<u64>,
}

impl CellWorld for Toy {
    fn port(&mut self) -> &mut CellPort<Toy> {
        &mut self.port
    }
}

impl Toy {
    fn refresh_promise(&mut self) {
        let next = self
            .pending_sends
            .iter()
            .copied()
            .min()
            .map_or(SimTime::MAX, SimTime::from_nanos);
        self.port.set_promise(next);
    }
}

/// One planned local event; optionally it also ships a remote event.
#[derive(Clone, Debug)]
struct Op {
    at: u64,
    tag: u32,
    /// `(raw destination hop, extra delay beyond L)`. The hop is
    /// reduced mod `cells - 1` at send time so it never targets self.
    send: Option<(usize, u64)>,
}

fn build_cell(k: usize, cells: usize, plan: &[Op]) -> Engine<Toy> {
    let mut port = CellPort::default();
    port.configure(k, cells, SimDuration::from_nanos(L));
    let mut toy = Toy {
        port,
        log: Vec::new(),
        pending_sends: plan
            .iter()
            .filter(|o| o.send.is_some())
            .map(|o| o.at)
            .collect(),
    };
    toy.refresh_promise();
    let mut e = Engine::with_seed(toy, 1 + k as u64);
    for op in plan.iter().cloned() {
        e.schedule_at_as("op", SimTime::from_nanos(op.at), move |w: &mut Toy, ctx| {
            w.log.push((ctx.now().as_nanos(), op.tag));
            if let Some((hop, extra)) = op.send {
                let cells = w.port.cells();
                let to = (w.port.cell() + 1 + hop % (cells - 1)) % cells;
                let tag = op.tag + 1_000;
                w.port.send(
                    ctx.now(),
                    to,
                    SimDuration::from_nanos(L + extra),
                    "remote",
                    move |w: &mut Toy, ctx| {
                        w.log.push((ctx.now().as_nanos(), tag));
                    },
                );
                let i = w
                    .pending_sends
                    .iter()
                    .position(|&t| t == op.at)
                    .expect("send was planned");
                w.pending_sends.swap_remove(i);
                w.refresh_promise();
            }
        });
    }
    e
}

fn run_plan(kind: EngineKind, plans: &[Vec<Op>], horizon: u64) -> Vec<Vec<(u64, u32)>> {
    let cells = plans.len();
    let builders: Vec<_> = plans
        .iter()
        .cloned()
        .map(|plan| move |k: usize| build_cell(k, cells, &plan))
        .collect();
    let (logs, _) = run_cells(
        kind,
        SimDuration::from_nanos(L),
        SimTime::from_nanos(horizon),
        builders,
        |_, e: Engine<Toy>| e.into_state().log,
    );
    logs
}

/// Extra-delay menu: the bare lookahead edge, one tick past it, and
/// the half/full slot widths that land arrivals exactly on later
/// event times and epoch bounds.
const EXTRAS: [u64; 4] = [0, 1, L / 2, L];

proptest! {
    /// The core property: any schedule, any thread count, identical
    /// per-cell pop order. Times come from a deliberately tiny grid
    /// (multiples of L/2) so same-tick collisions across cells and
    /// arrivals landing exactly on an epoch bound are common, not
    /// rare; the horizon cuts mid-schedule so some events stay queued,
    /// exercising the "later events survive" contract.
    #[test]
    fn parallel_pop_order_equals_serial(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                (0u64..16, any::<bool>(), 0usize..8, 0usize..4),
                0..8,
            ),
            2..5,
        ),
        horizon_slots in 4u64..24
    ) {
        let plans: Vec<Vec<Op>> = raw
            .iter()
            .enumerate()
            .map(|(k, ops)| {
                ops.iter()
                    .enumerate()
                    .map(|(i, &(slot, send, hop, extra))| Op {
                        at: slot * (L / 2),
                        tag: (k * 100 + i) as u32,
                        send: send.then_some((hop, EXTRAS[extra])),
                    })
                    .collect()
            })
            .collect();
        let horizon = horizon_slots * (L / 2);
        let serial = run_plan(EngineKind::Serial, &plans, horizon);
        for n in [2, 3, 4] {
            let par = run_plan(EngineKind::Parallel(n), &plans, horizon);
            prop_assert_eq!(
                &par, &serial,
                "Parallel({}) diverged on plans {:?} horizon {}", n, &plans, horizon
            );
        }
    }
}

/// Deterministic edge cases the random walk might visit rarely: an
/// arrival landing exactly at the epoch bound min+L, and three cells
/// colliding on one tick with sends at the bare lookahead.
#[test]
fn lookahead_edge_arrivals_merge_deterministically() {
    let plans = vec![
        vec![
            Op {
                at: 0,
                tag: 1,
                send: Some((0, 0)),
            }, // → cell 1, arrives at exactly L
            Op {
                at: L,
                tag: 2,
                send: None,
            }, // local tie with the arrival
        ],
        vec![
            Op {
                at: L,
                tag: 101,
                send: Some((0, 0)),
            }, // → cell 2 at the first bound
        ],
        vec![Op {
            at: L,
            tag: 201,
            send: None,
        }],
    ];
    let serial = run_plan(EngineKind::Serial, &plans, 10 * L);
    for n in [2, 3] {
        let par = run_plan(EngineKind::Parallel(n), &plans, 10 * L);
        assert_eq!(par, serial, "Parallel({n}) diverged on the lookahead edge");
    }
    // Cell 1: its own event at L, then cell 0's arrival at L (local
    // events were queued first — FIFO tie preserved).
    assert_eq!(serial[1], vec![(L, 101), (L, 1_001)]);
    // Cell 2 receives cell 1's send (made at L) at 2L.
    assert_eq!(serial[2], vec![(L, 201), (2 * L, 1_101)]);
}

/// Same-tick sends from several cells to one destination must merge in
/// `(time, sender cell, sender seq)` order regardless of which worker
/// reported first.
#[test]
fn same_tick_cross_cell_ties_are_ordered_by_sender() {
    let plans = vec![
        vec![Op {
            at: 0,
            tag: 1,
            send: Some((1, 0)),
        }], // cell 0 → cell 2
        vec![Op {
            at: 0,
            tag: 101,
            send: Some((0, 0)),
        }], // cell 1 → cell 2
        vec![],
    ];
    let serial = run_plan(EngineKind::Serial, &plans, 10 * L);
    for n in [2, 3] {
        let par = run_plan(EngineKind::Parallel(n), &plans, 10 * L);
        assert_eq!(par, serial, "Parallel({n}) reordered a same-tick tie");
    }
    // Both arrive at L; cell 0's message (lower sender index) first.
    assert_eq!(serial[2], vec![(L, 1_001), (L, 1_101)]);
}
