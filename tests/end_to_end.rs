//! Cross-crate integration: the full service lifecycle on the composed
//! world — creation (download + bootstrap), serving, resizing, crash and
//! revival, teardown — with resource-conservation invariants checked at
//! every step.

use soda::core::service::{ServiceSpec, ServiceState};
use soda::core::world::{
    attack_node, create_service_driven, revive_node, submit_request, SodaWorld,
};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::isolation::FaultKind;
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;

fn web_spec(n: u32) -> ServiceSpec {
    ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: n,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

/// Sum of (available + reserved) across hosts must equal total capacity
/// at any instant.
fn assert_conservation(world: &SodaWorld) {
    for d in &world.daemons {
        let cap = d.host.capacity();
        let sum = d.host.ledger.available() + d.host.ledger.reserved();
        assert_eq!(sum, cap, "ledger conservation on {}", d.host.name);
    }
}

#[test]
fn full_lifecycle() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 1);
    let baseline: Vec<ResourceVector> = engine
        .state()
        .daemons
        .iter()
        .map(|d| d.report_resources())
        .collect();

    // --- Create <3, M>.
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().creations.len(), 1);
    assert_conservation(engine.state());
    {
        let w = engine.state();
        let rec = w.master.service(svc).unwrap();
        assert_eq!(rec.state, ServiceState::Running);
        assert_eq!(rec.placed_capacity(), 3);
        // The inflated reservation: 3 × (768 CPU, 256 mem, 1024 disk, 15 bw).
        let expect = ResourceVector::TABLE1_EXAMPLE.inflate_for_slowdown(1.5) * 3;
        let reserved: ResourceVector = w.daemons.iter().fold(ResourceVector::ZERO, |acc, d| {
            acc + d.host.ledger.reserved()
        });
        assert_eq!(reserved, expect);
    }

    // --- Serve.
    let t0 = engine.now();
    for i in 0..50u64 {
        engine.schedule_at(
            t0 + SimDuration::from_millis(50 * i),
            move |w: &mut SodaWorld, ctx| {
                submit_request(w, ctx, svc, 20_000);
            },
        );
    }
    engine.run_until(t0 + SimDuration::from_secs(60));
    assert_eq!(engine.state().completed.len(), 50);
    assert_eq!(engine.state().dropped, 0);

    // --- Resize down to 1.
    {
        let now = engine.now();
        let w = engine.state_mut();
        let mut daemons = std::mem::take(&mut w.daemons);
        w.master.resize(svc, 1, &mut daemons, now).unwrap();
        w.daemons = daemons;
    }
    assert_conservation(engine.state());
    assert_eq!(
        engine
            .state()
            .master
            .service(svc)
            .unwrap()
            .placed_capacity(),
        1
    );
    assert_eq!(
        engine
            .state()
            .master
            .switch(svc)
            .unwrap()
            .config()
            .total_capacity(),
        1
    );

    // --- Crash and revive the surviving node.
    let vsn = engine.state().master.service(svc).unwrap().nodes[0].vsn;
    engine.schedule_in(SimDuration::from_secs(1), move |w: &mut SodaWorld, ctx| {
        let blast = attack_node(w, ctx, svc, vsn, FaultKind::Crash);
        assert!(blast.service_down && !blast.host_down);
        revive_node(w, ctx, svc, vsn).unwrap();
    });
    engine.run_until(engine.now() + SimDuration::from_secs(60));
    let before = engine.state().completed.len();
    let t1 = engine.now();
    engine.schedule_at(t1, move |w: &mut SodaWorld, ctx| {
        submit_request(w, ctx, svc, 20_000);
    });
    engine.run_until(t1 + SimDuration::from_secs(30));
    assert_eq!(
        engine.state().completed.len(),
        before + 1,
        "revived node serves"
    );

    // --- Teardown restores the baseline exactly.
    {
        let w = engine.state_mut();
        let mut daemons = std::mem::take(&mut w.daemons);
        w.master.teardown(svc, &mut daemons).unwrap();
        w.daemons = daemons;
    }
    let after: Vec<ResourceVector> = engine
        .state()
        .daemons
        .iter()
        .map(|d| d.report_resources())
        .collect();
    assert_eq!(after, baseline, "teardown must release everything");
    assert_conservation(engine.state());
    for d in &engine.state().daemons {
        assert_eq!(d.vsn_count(), 0);
        assert!(d.host.processes.is_empty(), "no leaked processes");
        assert_eq!(d.host.bridge.mappings(), 0, "no leaked bridge entries");
    }
}

#[test]
fn many_services_fill_and_drain() {
    // Admit single-instance services until rejection; tear all down;
    // the HUP must return to its pristine state.
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 2);
    let baseline: Vec<ResourceVector> = engine
        .state()
        .daemons
        .iter()
        .map(|d| d.report_resources())
        .collect();
    let mut created = Vec::new();
    while let Ok(svc) = create_service_driven(&mut engine, web_spec(1), "asp") {
        created.push(svc);
        assert!(created.len() < 64, "admission must eventually reject");
    }
    assert!(
        created.len() >= 4,
        "the testbed holds several instances: {}",
        created.len()
    );
    engine.run_until(SimTime::from_secs(600));
    assert_eq!(
        engine.state().creations.len(),
        created.len(),
        "all bootstraps finish"
    );
    assert_conservation(engine.state());
    {
        let w = engine.state_mut();
        let mut daemons = std::mem::take(&mut w.daemons);
        for svc in &created {
            w.master.teardown(*svc, &mut daemons).unwrap();
        }
        w.daemons = daemons;
    }
    let after: Vec<ResourceVector> = engine
        .state()
        .daemons
        .iter()
        .map(|d| d.report_resources())
        .collect();
    assert_eq!(after, baseline);
}

#[test]
fn billing_tracks_lifetime_and_capacity() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 3);
    let svc = create_service_driven(&mut engine, web_spec(2), "payer").unwrap();
    engine.run_until(SimTime::from_secs(60));
    let created_at = engine.state().creations[0].at;
    // An hour later the meter shows 2 instances × elapsed.
    let later = created_at + SimDuration::from_secs(3600);
    engine.run_until(later);
    let usage = engine.state().agent.usage(svc, later);
    assert!((usage - 2.0 * 3600.0).abs() < 1.0, "usage {usage}");
}
