//! Property tests on the service switch: for arbitrary capacity vectors
//! and request counts, smooth WRR splits traffic in exact proportion
//! over whole rounds, accounting never drifts, and health changes only
//! redirect traffic (never lose it while a healthy backend exists).

use proptest::prelude::*;
use soda::core::service::ServiceId;
use soda::core::switch::ServiceSwitch;
use soda::net::addr::Ipv4Addr;
use soda::sim::{SimDuration, SimTime};
use soda::vmm::vsn::VsnId;

fn build_switch(caps: &[u32]) -> ServiceSwitch {
    let mut sw = ServiceSwitch::new(ServiceId(1), VsnId(1));
    for (i, &c) in caps.iter().enumerate() {
        sw.add_backend(VsnId(i as u64 + 1), Ipv4Addr(0x0a000001 + i as u32), 80, c);
    }
    sw
}

proptest! {
    /// Over `k` full rounds (k × Σcap requests), each backend serves
    /// exactly `k × cap` — WRR proportionality is exact, not just
    /// approximate.
    #[test]
    fn wrr_exact_over_full_rounds(
        caps in proptest::collection::vec(1u32..6, 1..6),
        rounds in 1u32..20
    ) {
        let mut sw = build_switch(&caps);
        let total: u32 = caps.iter().sum();
        for _ in 0..(total * rounds) {
            let i = sw.route(SimTime::ZERO).expect("healthy backends exist");
            let vsn = sw.backends()[i].vsn;
            sw.complete(vsn, SimDuration::from_millis(1), SimTime::ZERO);
        }
        let served = sw.served_counts();
        for (i, &c) in caps.iter().enumerate() {
            prop_assert_eq!(served[i], (c * rounds) as u64,
                "backend {} caps {:?}", i, caps);
        }
        prop_assert_eq!(sw.dropped(), 0);
    }

    /// Routing with interleaved completions never corrupts the
    /// outstanding counters, and everything drains to zero.
    #[test]
    fn outstanding_accounting_never_drifts(
        caps in proptest::collection::vec(1u32..4, 1..5),
        script in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let mut sw = build_switch(&caps);
        let mut inflight: Vec<VsnId> = Vec::new();
        for issue in script {
            if issue || inflight.is_empty() {
                if let Some(i) = sw.route(SimTime::ZERO) {
                    inflight.push(sw.backends()[i].vsn);
                }
            } else {
                let vsn = inflight.remove(0);
                sw.complete(vsn, SimDuration::from_millis(1), SimTime::ZERO);
            }
            let total_outstanding: u32 =
                sw.backends().iter().map(|b| b.outstanding).sum();
            prop_assert_eq!(total_outstanding as usize, inflight.len());
        }
        for vsn in inflight.drain(..) {
            sw.complete(vsn, SimDuration::from_millis(1), SimTime::ZERO);
        }
        prop_assert!(sw.backends().iter().all(|b| b.outstanding == 0));
    }

    /// With at least one healthy backend, no request is ever dropped,
    /// regardless of which subset is marked down.
    #[test]
    fn no_drops_while_any_backend_healthy(
        caps in proptest::collection::vec(1u32..4, 2..6),
        down_mask in proptest::collection::vec(any::<bool>(), 2..6),
        n in 1u32..100
    ) {
        let mut sw = build_switch(&caps);
        let k = caps.len().min(down_mask.len());
        let mut any_up = false;
        for (i, &down) in down_mask.iter().enumerate().take(k) {
            if down {
                sw.set_health(VsnId(i as u64 + 1), false);
            } else {
                any_up = true;
            }
        }
        // Ensure at least one stays healthy.
        if !any_up {
            sw.set_health(VsnId(k as u64), true);
        }
        for _ in 0..n {
            let i = sw.route(SimTime::ZERO).expect("a healthy backend exists");
            // Routed to a healthy one.
            prop_assert!(sw.backends()[i].healthy);
            let vsn = sw.backends()[i].vsn;
            sw.complete(vsn, SimDuration::from_millis(1), SimTime::ZERO);
        }
        prop_assert_eq!(sw.dropped(), 0);
    }

    /// Capacity changes keep the config file and backend list in
    /// lock-step.
    #[test]
    fn config_file_tracks_mutations(
        caps in proptest::collection::vec(1u32..5, 1..5),
        new_caps in proptest::collection::vec(1u32..9, 1..5)
    ) {
        let mut sw = build_switch(&caps);
        for (i, &nc) in new_caps.iter().enumerate().take(caps.len()) {
            sw.set_capacity(VsnId(i as u64 + 1), nc);
        }
        let expect: u32 = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| new_caps.get(i).copied().unwrap_or(c))
            .sum();
        prop_assert_eq!(sw.config().total_capacity(), expect);
        prop_assert_eq!(sw.config().len(), caps.len());
        // Round-trip through text still parses to the same file.
        let parsed: soda::core::config::ServiceConfigFile =
            sw.config().to_string().parse().expect("rendered config parses");
        prop_assert_eq!(&parsed, sw.config());
    }
}
