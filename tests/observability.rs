//! Observability-layer integration tests (DESIGN.md §3).
//!
//! The load-bearing property is the *observer effect*: enabling the
//! typed-event / span / metrics instrumentation must not change the
//! simulation in any way — same request trajectory, same engine event
//! count, same RNG state afterwards. The instrumentation only ever
//! *records* (retroactively, in the already-determined virtual
//! timeline); it never schedules events or draws randomness.
//!
//! Also covered here: the metrics registry's JSON snapshot round-trips
//! through `serde_json`, the drained timeline is well-formed and
//! serializable, and a property test drives arbitrary Master op
//! sequences and checks that every span the Master opens is closed.

use proptest::prelude::*;
use soda::core::master::SodaMaster;
use soda::core::service::{ServiceId, ServiceSpec};
use soda::core::world::{attack_node, create_service_driven, revive_node, SodaWorld};
use soda::hostos::resources::ResourceVector;
use soda::hup::daemon::SodaDaemon;
use soda::hup::host::{HostId, HupHost};
use soda::net::pool::IpPool;
use soda::sim::{Engine, Labels, Obs, SimDuration, SimTime};
use soda::vmm::isolation::FaultKind;
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PoissonGenerator;

fn web_spec(instances: u32) -> ServiceSpec {
    ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

/// A scenario touching every instrumented path: admission + placement +
/// priming, Table 2 bootstraps, Poisson load through the switch, a
/// node crash plus revival. Returns the full request trajectory, the
/// engine's executed-event count, a probe of the RNG state after the
/// run, and the obs handle (when enabled).
fn scenario(seed: u64, obs_capacity: Option<usize>) -> (Vec<(u64, u64)>, u64, u64, Option<Obs>) {
    let mut world = SodaWorld::testbed();
    let obs = obs_capacity.map(|c| world.enable_obs(c));
    let mut engine = Engine::with_seed(world, seed);
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
    engine.run_until(SimTime::from_secs(60));
    let t0 = engine.now();
    PoissonGenerator {
        service: svc,
        dataset_bytes: 30_000,
        rate_rps: 25.0,
        start: t0,
        end: t0 + SimDuration::from_secs(20),
    }
    .start(&mut engine);
    engine.schedule_at(
        t0 + SimDuration::from_secs(5),
        move |w: &mut SodaWorld, ctx| {
            if let Some(node) = w.master.service(svc).and_then(|r| r.nodes.first().copied()) {
                attack_node(w, ctx, svc, node.vsn, FaultKind::Crash);
                let _ = revive_node(w, ctx, svc, node.vsn);
            }
        },
    );
    engine.run_until(t0 + SimDuration::from_secs(60));
    let traj: Vec<(u64, u64)> = engine
        .state()
        .completed
        .iter()
        .map(|r| (r.issued.as_nanos(), r.completed.as_nanos()))
        .collect();
    let events = engine.events_executed();
    let rng_probe = engine.rng_mut().next_u64();
    (traj, events, rng_probe, obs)
}

#[test]
fn observer_effect_same_trajectory_and_rng_state() {
    let (traj_off, events_off, rng_off, _) = scenario(2003, None);
    let (traj_on, events_on, rng_on, obs) = scenario(2003, Some(8192));
    assert!(!traj_off.is_empty(), "scenario must serve requests");
    assert_eq!(
        traj_on, traj_off,
        "obs must not perturb the request trajectory"
    );
    assert_eq!(events_on, events_off, "obs must not schedule engine events");
    assert_eq!(rng_on, rng_off, "obs must not draw randomness");
    // And the enabled run actually observed something.
    let obs = obs.unwrap();
    let timeline = obs.drain_events().unwrap();
    assert!(
        timeline.events.len() > 50,
        "rich scenario yields a rich timeline"
    );
    let kinds: std::collections::BTreeSet<&str> =
        timeline.events.iter().map(|e| e.event.kind()).collect();
    for expected in [
        "admission_decision",
        "placement_decision",
        "boot_phase_entered",
        "boot_phase_completed",
        "switch_created",
        "request_dispatched",
        "request_completed",
        "vsn_crash",
    ] {
        assert!(kinds.contains(expected), "missing {expected} in {kinds:?}");
    }
    // The log is recording-ordered; retroactively replayed bootstrap
    // windows from different nodes may interleave in wall-clock terms,
    // so the virtual-time view is obtained by sorting on (time, seq).
    let mut sorted = timeline.events.clone();
    sorted.sort_by_key(|e| (e.time, e.seq));
    assert_eq!(sorted[0].event.kind(), "admission_decision");
    assert_eq!(sorted[0].time, SimTime::ZERO);
    // In the sorted view every boot phase is entered before it
    // completes.
    let mut open: std::collections::HashSet<(u64, &str)> = std::collections::HashSet::new();
    for e in &sorted {
        match e.event {
            soda::sim::Event::BootPhaseEntered { vsn, phase, .. } => {
                assert!(open.insert((vsn, phase)), "double enter {vsn}/{phase}");
            }
            soda::sim::Event::BootPhaseCompleted { vsn, phase, .. } => {
                assert!(
                    open.remove(&(vsn, phase)),
                    "complete without enter {vsn}/{phase}"
                );
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unfinished boot phases: {open:?}");
}

#[test]
fn disabled_obs_observes_nothing() {
    let obs = Obs::disabled();
    assert!(!obs.is_enabled());
    assert!(obs.snapshot().is_none());
    assert!(obs.drain_events().is_none());
    assert!(obs.with(|_| ()).is_none());
}

#[test]
fn request_lifecycle_spans_cover_queue_service_response() {
    let (_, _, _, obs) = scenario(7, Some(4096));
    let obs = obs.unwrap();
    obs.with(|inner| {
        for op in ["queue", "guest_service", "response"] {
            let st = inner.spans.stats("request", op);
            assert!(st.entered > 0, "no {op} spans recorded");
            assert_eq!(st.entered, st.exited, "{op} spans must balance");
        }
        // Master pipeline and daemon bootstrap phases are span-covered.
        for op in ["admission", "priming", "switch_creation"] {
            let st = inner.spans.stats("master", op);
            assert!(st.entered > 0, "no master/{op} spans");
            assert_eq!(st.entered, st.exited, "master/{op} must balance");
        }
        for phase in [
            "customize",
            "mount",
            "kernel_boot",
            "services_start",
            "app_start",
        ] {
            let st = inner.spans.stats("daemon", phase);
            assert!(st.entered > 0, "no daemon/{phase} spans");
        }
        assert!(
            inner.spans.is_balanced(),
            "no span may stay open after the run"
        );
        // Span durations feed per-operation latency histograms.
        let h = inner
            .registry
            .histogram("request", "response", Labels::two("service", 1, "vsn", 1))
            .or_else(|| {
                inner
                    .registry
                    .histogram("request", "response", Labels::two("service", 1, "vsn", 2))
            })
            .expect("response latency histogram exists");
        assert!(h.count() > 0);
        assert!(h.mean() > 0.0, "response latency must be positive");
    })
    .unwrap();
}

#[test]
fn registry_snapshot_roundtrips_through_json() {
    let (_, _, _, obs) = scenario(11, Some(4096));
    let obs = obs.unwrap();
    let snap = obs.snapshot().unwrap();
    let text = serde_json::to_string_pretty(&snap).unwrap();
    let parsed = serde_json::from_str(&text).unwrap();
    assert_eq!(
        serde_json::to_value(&snap),
        parsed,
        "snapshot JSON must round-trip"
    );
    // Labeled samples survive with their labels intact.
    let dispatched = snap
        .find("switch.dispatched", &[("service", 1), ("vsn", 1)])
        .or_else(|| snap.find("switch.dispatched", &[("service", 1), ("vsn", 2)]))
        .expect("per-backend dispatch counter present");
    assert!(text.contains("switch.dispatched"));
    assert!(dispatched.labels.iter().any(|(k, _)| k == "service"));
}

#[test]
fn timeline_serializes_with_kind_and_severity() {
    let (_, _, _, obs) = scenario(13, Some(2048));
    let timeline = obs.unwrap().drain_events().unwrap();
    let text = serde_json::to_string_pretty(&timeline).unwrap();
    let parsed = serde_json::from_str(&text).unwrap();
    assert_eq!(
        serde_json::to_value(&timeline),
        parsed,
        "timeline JSON must round-trip"
    );
    assert!(text.contains("\"kind\": \"request_dispatched\""));
    assert!(text.contains("\"severity\": \"INFO\""));
}

// ---------------------------------------------------------------------
// Property: every Master operation leaves the span tracker balanced.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Create { instances: u32 },
    Resize { which: usize, new_instances: u32 },
    Teardown { which: usize },
    CrashNode { which: usize },
    Migrate { which: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..5).prop_map(|instances| Op::Create { instances }),
        (0usize..8, 1u32..6).prop_map(|(which, new_instances)| Op::Resize {
            which,
            new_instances
        }),
        (0usize..8).prop_map(|which| Op::Teardown { which }),
        (0usize..8).prop_map(|which| Op::CrashNode { which }),
        (0usize..8).prop_map(|which| Op::Migrate { which }),
    ]
}

fn testbed() -> Vec<SodaDaemon> {
    vec![
        SodaDaemon::new(HupHost::seattle(
            HostId(1),
            IpPool::new("10.0.0.0".parse().unwrap(), 16),
        )),
        SodaDaemon::new(HupHost::tacoma(
            HostId(2),
            IpPool::new("10.0.1.0".parse().unwrap(), 16),
        )),
        SodaDaemon::new(HupHost::seattle(
            HostId(3),
            IpPool::new("10.0.2.0".parse().unwrap(), 16),
        )),
    ]
}

fn prop_spec(n: u32, i: usize) -> ServiceSpec {
    ServiceSpec {
        name: format!("svc{i}"),
        ..web_spec(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn master_ops_keep_spans_balanced(ops in proptest::collection::vec(op_strategy(), 1..32)) {
        let mut master = SodaMaster::new();
        master.set_obs(Obs::enabled(1 << 14));
        let mut daemons = testbed();
        let mut live: Vec<ServiceId> = Vec::new();
        let now = SimTime::ZERO;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Create { instances } => {
                    if let Ok(reply) =
                        master.create_service_now(prop_spec(instances, i), "asp", &mut daemons, now)
                    {
                        live.push(reply.service);
                    }
                }
                Op::Resize { which, new_instances } => {
                    if let Some(&svc) = live.get(which % live.len().max(1)) {
                        if let Ok(outcome) = master.resize(svc, new_instances, &mut daemons, now) {
                            // Drive every freshly placed node to ready so
                            // its priming span closes (the driven layer
                            // does this via scheduled callbacks).
                            for (_, ticket) in outcome.tickets {
                                master
                                    .resize_node_ready(svc, ticket.vsn, &mut daemons, now)
                                    .expect("placed node becomes ready");
                            }
                        }
                    }
                }
                Op::Teardown { which } => {
                    if !live.is_empty() {
                        let svc = live.remove(which % live.len());
                        master.teardown(svc, &mut daemons).expect("live teardown succeeds");
                    }
                }
                Op::CrashNode { which } => {
                    if let Some(&svc) = live.get(which % live.len().max(1)) {
                        let node = master.service(svc).and_then(|r| r.nodes.first().copied());
                        if let Some(node) = node {
                            if let Some(d) = daemons.iter_mut().find(|d| d.host.id == node.host) {
                                if d.vsn(node.vsn).is_some_and(|v| v.is_running()) {
                                    d.crash_vsn(node.vsn, now).expect("running node crashes");
                                    master.node_crashed(svc, node.vsn);
                                }
                            }
                        }
                    }
                }
                Op::Migrate { which } => {
                    if let Some(&svc) = live.get(which % live.len().max(1)) {
                        let node = master.service(svc).and_then(|r| r.nodes.first().copied());
                        if let Some(node) = node {
                            let target = daemons
                                .iter()
                                .map(|d| d.host.id)
                                .find(|&h| h != node.host);
                            if let Some(target) = target {
                                if let Ok(mig) =
                                    master.migrate(svc, node.vsn, target, &mut daemons, now)
                                {
                                    master
                                        .complete_migration(&mig, &mut daemons, now)
                                        .expect("migration completes");
                                }
                            }
                        }
                    }
                }
            }
            // The invariant under test: after every completed API call,
            // no (entity, operation) span is left open and no exit was
            // ever unmatched.
            master
                .obs()
                .with(|inner| {
                    prop_assert_eq!(inner.spans.open_count(), 0, "open spans after op {}", i);
                    prop_assert!(inner.spans.is_balanced(), "unbalanced spans after op {}", i);
                    for ((entity, op), st) in inner.spans.all_stats() {
                        prop_assert_eq!(
                            st.unmatched_exits, 0u64,
                            "unmatched exit for {}/{}", entity, op
                        );
                    }
                    Ok(())
                })
                .unwrap()?;
        }
    }
}

/// The same scenario with causal tracing (1-in-`sample_one_in`
/// deterministic head sampling) and the engine self-profiler switched
/// on — the two observability layers added on top of events, spans and
/// metrics. Returns the trajectory, event count, RNG probe, the obs
/// handle, and the profiler's per-kind cost table.
fn scenario_traced(
    seed: u64,
    sample_one_in: u64,
) -> (Vec<(u64, u64)>, u64, u64, Obs, Vec<soda::sim::ProfileEntry>) {
    let mut world = SodaWorld::testbed();
    let obs = world.enable_obs(8192);
    obs.enable_tracing(seed ^ 0x50DA, sample_one_in, 1 << 12);
    let mut engine = Engine::with_seed(world, seed);
    engine.enable_profiler();
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
    engine.run_until(SimTime::from_secs(60));
    let t0 = engine.now();
    PoissonGenerator {
        service: svc,
        dataset_bytes: 30_000,
        rate_rps: 25.0,
        start: t0,
        end: t0 + SimDuration::from_secs(20),
    }
    .start(&mut engine);
    engine.schedule_at(
        t0 + SimDuration::from_secs(5),
        move |w: &mut SodaWorld, ctx| {
            if let Some(node) = w.master.service(svc).and_then(|r| r.nodes.first().copied()) {
                attack_node(w, ctx, svc, node.vsn, FaultKind::Crash);
                let _ = revive_node(w, ctx, svc, node.vsn);
            }
        },
    );
    engine.run_until(t0 + SimDuration::from_secs(60));
    let traj: Vec<(u64, u64)> = engine
        .state()
        .completed
        .iter()
        .map(|r| (r.issued.as_nanos(), r.completed.as_nanos()))
        .collect();
    let events = engine.events_executed();
    let profile = engine.profile_report();
    let rng_probe = engine.rng_mut().next_u64();
    (traj, events, rng_probe, obs, profile)
}

/// Tracing and self-profiling are the newest observability layers and
/// ride the hottest paths (request issue, switch routing, NIC
/// completion, every engine dispatch). Switching both on must leave the
/// run bit-identical to running fully dark: the sampler is a pure hash,
/// the profiler only reads the wall clock around dispatch, and neither
/// schedules events or draws simulation randomness.
#[test]
fn tracing_and_profiling_are_observer_transparent() {
    let (traj_dark, events_dark, rng_dark, _) = scenario(31, None);
    let (traj_lit, events_lit, rng_lit, obs, profile) = scenario_traced(31, 2);
    assert!(!traj_dark.is_empty(), "scenario must serve requests");
    assert_eq!(
        traj_lit, traj_dark,
        "tracing + profiling must not perturb the request trajectory"
    );
    assert_eq!(
        events_lit, events_dark,
        "tracing + profiling must not schedule engine events"
    );
    assert_eq!(
        rng_lit, rng_dark,
        "tracing + profiling must not draw randomness"
    );
    // The traced run really traced: 1-in-2 sampling keeps some request
    // keys and declines others, deterministically.
    obs.with(|inner| {
        assert!(!inner.tracer.is_empty(), "sampler must keep some traces");
        assert!(
            inner.tracer.unsampled() > 0,
            "1-in-2 sampling must decline some keys"
        );
    })
    .unwrap();
    // And the profiler really profiled: every dispatched event is
    // attributed to exactly one kind, so the per-kind counts sum to the
    // engine's executed-event count.
    let attributed: u64 = profile.iter().map(|e| e.count).sum();
    assert_eq!(
        attributed, events_lit,
        "profiler must attribute every dispatched event"
    );
    for kind in ["client_arrival", "cpu_done", "nic_pump", "response_depart"] {
        assert!(
            profile.iter().any(|e| e.kind == kind && e.count > 0),
            "missing hot event kind {kind} in {profile:?}"
        );
    }
}

/// The event ring's drop accounting is exact: sequence numbers are
/// assigned at push, so the last retained sequence number pins the
/// total ever recorded, which must equal retained + dropped.
#[test]
fn event_log_overflow_accounting_is_exact() {
    let (_, _, _, obs) = scenario(17, Some(64));
    let obs = obs.unwrap();
    let drained = obs.drain_events().unwrap();
    assert_eq!(
        drained.events.len(),
        64,
        "ring retains exactly its capacity"
    );
    assert!(
        drained.dropped > 0,
        "rich scenario overflows a 64-slot ring"
    );
    let last_seq = drained.events.last().unwrap().seq;
    assert_eq!(
        last_seq + 1,
        drained.dropped + drained.events.len() as u64,
        "every recorded event is either retained or counted as dropped"
    );
    // What survives is the most recent window, still in record order.
    let seqs: Vec<u64> = drained.events.iter().map(|e| e.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "retained window must be contiguous"
    );
}

/// Under chaos — node crashes mid-load, revival, and a flood on the
/// switch host — every sampled trace still resolves: requests severed
/// by the crash close their root at the drop instant instead of
/// leaking an open span, and every span inside a finished trace is
/// closed. For request traces the phases stay contiguous, so they sum
/// exactly to the root's duration even when that root ended in a drop.
#[test]
fn trace_spans_balance_under_chaos() {
    use soda::core::world::ddos_switch_host;

    let mut world = SodaWorld::testbed();
    let obs = world.enable_obs(8192);
    // Keep every key: the point is the crash/drop paths, not sampling.
    obs.enable_tracing(0xC4A05, 1, 1 << 14);
    let mut engine = Engine::with_seed(world, 909);
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
    engine.run_until(SimTime::from_secs(60));
    let t0 = engine.now();
    PoissonGenerator {
        service: svc,
        dataset_bytes: 60_000,
        rate_rps: 60.0,
        start: t0,
        end: t0 + SimDuration::from_secs(15),
    }
    .start(&mut engine);
    // Crash a node mid-load (cancelling its in-flight responses), then
    // revive it; pile a flood onto the switch host for good measure.
    for (i, at) in [3u64, 7, 11].into_iter().enumerate() {
        engine.schedule_at(
            t0 + SimDuration::from_secs(at),
            move |w: &mut SodaWorld, ctx| {
                let node = w
                    .master
                    .service(svc)
                    .and_then(|r| r.nodes.get(i % 2).copied());
                if let Some(node) = node {
                    attack_node(w, ctx, svc, node.vsn, FaultKind::Crash);
                    let _ = revive_node(w, ctx, svc, node.vsn);
                }
                ddos_switch_host(w, ctx, svc, 6, 2_000_000);
            },
        );
    }
    // Run far past the load window so nothing is legitimately in flight.
    engine.run_until(t0 + SimDuration::from_secs(120));
    let w = engine.state();
    assert!(w.dropped > 0, "the crashes must sever some requests");
    assert!(!w.completed.is_empty(), "the service must still serve");
    obs.with(|inner| {
        assert!(inner.tracer.len() > 10, "traces were kept");
        let mut request_tracks = 0;
        for rec in inner.tracer.traces() {
            assert!(
                rec.is_finished(),
                "trace {}/{} (key {}) left its root open",
                rec.track,
                rec.id.0,
                rec.key
            );
            for (i, span) in rec.spans.iter().enumerate() {
                assert!(
                    span.end.is_some(),
                    "span {i} ({}) of trace {} never closed",
                    span.name,
                    rec.id.0
                );
            }
            if rec.track == "request" {
                request_tracks += 1;
                let root = rec.root();
                let total = root.end.unwrap().saturating_since(root.start).as_nanos();
                let sum: u64 = rec
                    .phases()
                    .iter()
                    .map(|s| s.end.unwrap().saturating_since(s.start).as_nanos())
                    .sum();
                assert!(
                    sum <= total,
                    "phases overrun the root on trace {}",
                    rec.id.0
                );
            }
        }
        assert!(request_tracks > 0, "request traces present");
        assert!(
            inner.spans.is_balanced(),
            "aggregate spans must balance under chaos too"
        );
    })
    .unwrap();
}

/// The generation-stamped NIC wakeup protocol drops superseded pump
/// events on arrival and counts the drops in an interned metric. The
/// counter is pure observation: the same seed produces the same count
/// across runs, and running dark (obs off) — where the drops still
/// happen but nothing is counted — leaves the request trajectory
/// bit-identical.
#[test]
fn stale_nic_wakeup_counter_is_observer_transparent() {
    use soda::core::world::ddos_switch_host;

    let run = |obs: bool| -> (Vec<(u64, u64)>, u64, u64) {
        let mut world = SodaWorld::testbed();
        if obs {
            world.enable_obs(1024);
        }
        let mut engine = Engine::with_seed(world, 1303);
        let svc = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
        engine.run_until(SimTime::from_secs(60));
        let t0 = engine.now();
        // Overlapping response flows: every flow that lands on a busy
        // NIC moves the next completion and stales the armed wakeup.
        PoissonGenerator {
            service: svc,
            dataset_bytes: 200_000,
            rate_rps: 120.0,
            start: t0,
            end: t0 + SimDuration::from_secs(10),
        }
        .start(&mut engine);
        // And a burst of flood flows added back-to-back at one instant —
        // each add re-arms the pump, staling the previous wakeup.
        engine.schedule_at(
            t0 + SimDuration::from_secs(2),
            move |w: &mut SodaWorld, ctx| {
                ddos_switch_host(w, ctx, svc, 10, 5_000_000);
            },
        );
        engine.run_until(t0 + SimDuration::from_secs(60));
        let w = engine.state();
        let traj: Vec<(u64, u64)> = w
            .completed
            .iter()
            .map(|r| (r.issued.as_nanos(), r.completed.as_nanos()))
            .collect();
        (
            traj,
            engine.events_executed(),
            engine.state().stale_nic_wakeups(),
        )
    };

    let (traj_a, events_a, stale_a) = run(true);
    let (traj_b, events_b, stale_b) = run(true);
    let (traj_dark, events_dark, stale_dark) = run(false);
    assert!(!traj_a.is_empty(), "scenario must serve requests");
    assert!(stale_a > 0, "contended NICs must shed stale wakeups");
    assert_eq!(stale_a, stale_b, "the stale count is deterministic");
    assert_eq!(traj_a, traj_b, "same seed, same trajectory");
    assert_eq!(events_a, events_b);
    assert_eq!(
        traj_a, traj_dark,
        "counting stale wakeups must not perturb the trajectory"
    );
    assert_eq!(events_a, events_dark, "same engine events dark or lit");
    assert_eq!(stale_dark, 0, "obs off counts nothing");
}

/// The observer effect holds through a full Master failover: crashing
/// the control plane and replaying the journal with instrumentation on
/// must not perturb the trajectory, the engine event count, or the RNG
/// state — and the enabled run records the whole failover arc (typed
/// events plus the `master_failovers` counter).
#[test]
fn observer_effect_holds_through_master_failover() {
    fn failover_scenario(
        seed: u64,
        obs_capacity: Option<usize>,
    ) -> (Vec<(u64, u64)>, u64, u64, Option<Obs>) {
        use soda::core::recovery::{self, RecoveryConfig};
        use soda::core::world::apply_fault;
        use soda::sim::FaultSpec;

        let mut world = SodaWorld::testbed();
        let obs = obs_capacity.map(|c| world.enable_obs(c));
        let mut engine = Engine::with_seed(world, seed);
        let svc = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
        engine.run_until(SimTime::from_secs(60));
        recovery::start_self_healing(
            &mut engine,
            RecoveryConfig::default(),
            SimTime::from_secs(180),
        );
        let t0 = engine.now();
        PoissonGenerator {
            service: svc,
            dataset_bytes: 30_000,
            rate_rps: 25.0,
            start: t0,
            end: t0 + SimDuration::from_secs(40),
        }
        .start(&mut engine);
        engine.schedule_at(t0 + SimDuration::from_secs(10), |w: &mut SodaWorld, ctx| {
            apply_fault(w, ctx, FaultSpec::MasterCrash);
        });
        engine.run_until(t0 + SimDuration::from_secs(90));
        assert!(!engine.state().master_is_down(), "standby took over");
        assert_eq!(engine.state().failover.records.len(), 1);
        let traj: Vec<(u64, u64)> = engine
            .state()
            .completed
            .iter()
            .map(|r| (r.issued.as_nanos(), r.completed.as_nanos()))
            .collect();
        let events = engine.events_executed();
        let rng_probe = engine.rng_mut().next_u64();
        (traj, events, rng_probe, obs)
    }

    let (traj_off, events_off, rng_off, _) = failover_scenario(4007, None);
    let (traj_on, events_on, rng_on, obs) = failover_scenario(4007, Some(1 << 14));
    assert!(!traj_off.is_empty(), "scenario must serve requests");
    assert_eq!(
        traj_on, traj_off,
        "obs must not perturb the trajectory through a failover"
    );
    assert_eq!(events_on, events_off, "obs must not schedule engine events");
    assert_eq!(rng_on, rng_off, "obs must not draw randomness");

    let obs = obs.unwrap();
    obs.with(|inner| {
        assert_eq!(
            inner
                .registry
                .counter("world", "master_failovers", Labels::none()),
            Some(1),
            "takeover increments the failover counter"
        );
    });
    let timeline = obs.drain_events().unwrap();
    let kinds: std::collections::BTreeSet<&str> =
        timeline.events.iter().map(|e| e.event.kind()).collect();
    for expected in ["master_down", "journal_replayed", "master_recovered"] {
        assert!(kinds.contains(expected), "missing {expected} in {kinds:?}");
    }
    // The arc is ordered: down strictly before replay, replay no later
    // than the recovered mark.
    let at = |kind: &str| {
        timeline
            .events
            .iter()
            .find(|e| e.event.kind() == kind)
            .map(|e| (e.time, e.seq))
            .unwrap()
    };
    assert!(at("master_down") < at("journal_replayed"));
    assert!(at("journal_replayed") <= at("master_recovered"));
}
