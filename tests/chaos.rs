//! Chaos integration: the deterministic fault engine and the
//! self-healing control loop, exercised across crate boundaries.
//!
//! Covers the acceptance criterion (same `(seed, FaultPlan)` → an
//! identical run, event log included) plus the nasty edges: a host
//! dying while its node is still priming, both replicas failing,
//! failure landing mid-resize, and a flapping heartbeat that must be
//! rolled back rather than acted on twice.

use soda::core::error::SodaError;
use soda::core::journal::WorldSnapshot;
use soda::core::recovery::{self, RecoveryConfig};
use soda::core::service::{ServiceSpec, ServiceState};
use soda::core::world::{
    apply_fault, crash_host, create_service_driven, resize_service_driven, SodaWorld,
};
use soda::hostos::resources::ResourceVector;
use soda::hup::daemon::SodaDaemon;
use soda::hup::host::{HostId, HupHost};
use soda::net::pool::IpPool;
use soda::sim::{Engine, FaultSpec, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PoissonGenerator;
use soda_bench::experiments::chaos_soak;

fn web_spec(n: u32) -> ServiceSpec {
    ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: n,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

/// `n` seattle-class hosts, optionally followed by a tacoma spare.
fn hup(seattles: u32, tacoma_spare: bool) -> Vec<SodaDaemon> {
    let mut daemons: Vec<SodaDaemon> = (1..=seattles)
        .map(|i| {
            SodaDaemon::new(HupHost::seattle(
                HostId(i),
                IpPool::new(format!("10.0.{i}.0").parse().expect("valid"), 8),
            ))
        })
        .collect();
    if tacoma_spare {
        let id = seattles + 1;
        daemons.push(SodaDaemon::new(HupHost::tacoma(
            HostId(id),
            IpPool::new(format!("10.0.{id}.0").parse().expect("valid"), 8),
        )));
    }
    daemons
}

/// Every placed node is running on a live host, none sits on `dead`.
fn assert_recovered_off_host(world: &SodaWorld, service: soda::core::ServiceId, dead: HostId) {
    let rec = world.master.service(service).expect("record exists");
    for n in &rec.nodes {
        assert_ne!(n.host, dead, "node still placed on the dead host");
        let d = world
            .daemons
            .iter()
            .find(|d| d.host.id == n.host)
            .expect("host exists");
        assert!(!d.is_failed(), "node placed on a failed host");
        assert!(
            d.vsn(n.vsn).is_some_and(|v| v.is_running()),
            "placed node {:?} not running",
            n.vsn
        );
    }
}

/// Acceptance: the whole chaos soak — fault plan, workload, heartbeat
/// loss draws, backoff jitter — replays bit-identically from the seed,
/// down to the fingerprint of the rendered event log.
#[test]
fn chaos_soak_is_deterministic() {
    let a = chaos_soak::run(11);
    let b = chaos_soak::run(11);
    assert_eq!(a, b, "same (seed, plan) must yield an identical run");
    assert!(a.faults_injected > 0);
    assert_eq!(a.invariant_violations, 0);
    // A different seed must actually change the trajectory.
    let c = chaos_soak::run(12);
    assert_ne!(
        a.event_fingerprint, c.event_fingerprint,
        "different seeds should not collide"
    );
}

/// Differential gate at the chaos tier: a single placement cell runs
/// the soak — fault plan, heartbeat loss draws, backoff jitter and all
/// — bit-identically to the monolith, while four cells keep the
/// routing invariant and conservation of recovery accounting.
#[test]
fn sharded_soak_matches_monolith_and_four_cells_hold_invariants() {
    use soda::core::shard::ControlPlaneKind;
    let mono = chaos_soak::run(11);
    let (one, _) = chaos_soak::run_with_kind(11, ControlPlaneKind::Sharded(1));
    assert_eq!(
        mono.event_fingerprint, one.event_fingerprint,
        "one cell must render the monolith's exact event log"
    );
    assert_eq!(mono.completed, one.completed);
    assert_eq!(mono.dropped, one.dropped);
    assert_eq!(mono.detections, one.detections);
    assert_eq!(mono.recoveries, one.recoveries);
    assert_eq!(mono.retries, one.retries);
    assert_eq!(mono.events, one.events);

    let (four, _) = chaos_soak::run_with_kind(11, ControlPlaneKind::Sharded(4));
    assert_eq!(four.shards, 4);
    assert_eq!(four.invariant_violations, 0);
    assert!(four.completed > 1000, "four cells keep serving");
}

/// Differential gate at the chaos tier, storage axis: the dense arena
/// data plane runs the soak — host crashes churning slots through
/// free/reuse, scrubs, re-placements — bit-identically to the
/// ordered-map oracle. Chaos is the hard case for the arenas: a clean
/// run only ever grows the tables, while the fault plan exercises
/// generation bumps and freelist reuse under live traffic.
#[test]
fn arena_soak_matches_map_oracle() {
    use soda::core::WorldStorageKind;
    let (arena, _) = chaos_soak::run_with_storage(11, WorldStorageKind::Arena);
    let (map, _) = chaos_soak::run_with_storage(11, WorldStorageKind::Map);
    assert_eq!(
        arena, map,
        "the arena soak must match the map oracle field for field"
    );
    assert!(arena.faults_injected > 0);
    assert_eq!(arena.invariant_violations, 0);
}

/// A host dies while its node is still downloading the service image.
/// The creation must still complete (on replacement capacity) and the
/// service must end at full strength with nothing on the dead host.
#[test]
fn host_death_during_priming_still_converges() {
    let mut engine = Engine::with_seed(SodaWorld::new(hup(2, true)), 5);
    engine.state_mut().enable_obs(1 << 14);
    recovery::start_self_healing(
        &mut engine,
        RecoveryConfig::default(),
        SimTime::from_secs(200),
    );
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
    let victim = engine.state().master.service(svc).expect("exists").nodes[0].host;
    // Mid-download: the image transfer takes a couple of seconds.
    engine.schedule_at(SimTime::from_millis(1200), move |w: &mut SodaWorld, ctx| {
        crash_host(w, ctx, victim);
    });
    engine.run_until(SimTime::from_secs(200));

    let w = engine.state_mut();
    assert_eq!(w.creations.len(), 1, "creation completes despite the crash");
    let rec = w.master.service(svc).expect("exists");
    assert_eq!(rec.placed_capacity(), 3, "full capacity restored");
    assert_eq!(rec.state, ServiceState::Running);
    assert!(!w.recovery.stats.recoveries.is_empty(), "an episode closed");
    assert_recovered_off_host(w, svc, victim);
    assert_eq!(recovery::check_invariants(w), 0);
}

/// A link partition *shorter than the heartbeat timeout* severs a
/// node's image download mid-flight. The host is never declared down,
/// so no host-level detection will ever clean the node up: severing the
/// download must itself fail the node's priming so the creation still
/// completes and the lost capacity is re-placed (regression: the node
/// used to stay stuck in `Priming` forever).
#[test]
fn short_partition_during_priming_still_converges() {
    let mut engine = Engine::with_seed(SodaWorld::new(hup(2, true)), 7);
    engine.state_mut().enable_obs(1 << 14);
    recovery::start_self_healing(
        &mut engine,
        RecoveryConfig::default(),
        SimTime::from_secs(200),
    );
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
    let victim = engine.state().master.service(svc).expect("exists").nodes[0].host;
    // Partition for 2 s — below the 3.5 s heartbeat timeout — while the
    // image transfer (a couple of seconds) is still in flight.
    engine.schedule_at(SimTime::from_millis(1200), move |w: &mut SodaWorld, ctx| {
        apply_fault(
            w,
            ctx,
            soda::sim::FaultSpec::LinkPartition {
                host: u64::from(victim.0),
                duration: SimDuration::from_secs(2),
            },
        );
    });
    engine.run_until(SimTime::from_secs(200));

    let w = engine.state_mut();
    assert_eq!(
        w.creations.len(),
        1,
        "creation completes despite the severed download"
    );
    let rec = w.master.service(svc).expect("exists");
    assert_eq!(rec.placed_capacity(), 3, "full capacity restored");
    assert_eq!(rec.state, ServiceState::Running);
    assert_eq!(w.master.healthy_capacity(svc), 3);
    assert_eq!(recovery::check_invariants(w), 0);
}

/// Both hosts carrying the service fail a few seconds apart. The
/// control loop must re-place every lost node on the survivors.
#[test]
fn double_failure_of_both_replicas_recovers() {
    let mut engine = Engine::with_seed(SodaWorld::new(hup(3, true)), 9);
    engine.state_mut().enable_obs(1 << 14);
    recovery::start_self_healing(
        &mut engine,
        RecoveryConfig::default(),
        SimTime::from_secs(300),
    );
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(30));
    let nodes = &engine.state().master.service(svc).expect("exists").nodes;
    let hosts: Vec<HostId> = {
        let mut hs: Vec<HostId> = nodes.iter().map(|n| n.host).collect();
        hs.dedup();
        hs
    };
    assert!(hosts.len() >= 2, "service spread over two hosts");
    let (h1, h2) = (hosts[0], hosts[1]);
    engine.schedule_at(SimTime::from_secs(40), move |w: &mut SodaWorld, ctx| {
        crash_host(w, ctx, h1);
    });
    // The second failure lands while the first recovery is in flight.
    engine.schedule_at(SimTime::from_secs(47), move |w: &mut SodaWorld, ctx| {
        crash_host(w, ctx, h2);
    });
    engine.run_until(SimTime::from_secs(300));

    let w = engine.state_mut();
    let rec = w.master.service(svc).expect("exists");
    assert_eq!(rec.placed_capacity(), 3, "all lost capacity re-placed");
    assert_eq!(w.master.healthy_capacity(svc), 3);
    assert!(
        w.recovery.stats.recoveries.len() >= 2,
        "both episodes closed"
    );
    assert_recovered_off_host(w, svc, h1);
    assert_recovered_off_host(w, svc, h2);
    assert_eq!(recovery::check_invariants(w), 0);
}

/// A host fails while a resize is still priming its new node. Both the
/// lost capacity and the resize target must be honoured in the end.
#[test]
fn failure_during_resize_in_flight_converges() {
    let mut engine = Engine::with_seed(SodaWorld::new(hup(3, true)), 3);
    engine.state_mut().enable_obs(1 << 14);
    recovery::start_self_healing(
        &mut engine,
        RecoveryConfig::default(),
        SimTime::from_secs(300),
    );
    let svc = create_service_driven(&mut engine, web_spec(2), "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(100));
    assert_eq!(engine.state().creations.len(), 1);

    // 2 → 8: in-place widening absorbs 4, the remaining 2 go to a
    // fresh node on a host not yet carrying the service.
    resize_service_driven(&mut engine, svc, 8).expect("resize admitted");
    // The new node is the one not yet running; its host is the victim.
    let victim = {
        let w = engine.state();
        w.master
            .service(svc)
            .expect("exists")
            .nodes
            .iter()
            .find(|n| {
                let d = w
                    .daemons
                    .iter()
                    .find(|d| d.host.id == n.host)
                    .expect("host");
                !d.vsn(n.vsn).is_some_and(|v| v.is_running())
            })
            .map(|n| n.host)
    };
    let now = engine.now();
    if let Some(victim) = victim {
        // Kill the host while the resize download is in flight.
        engine.schedule_at(now + SimDuration::from_millis(600), move |w, ctx| {
            crash_host(w, ctx, victim);
        });
        engine.run_until(SimTime::from_secs(300));

        let w = engine.state_mut();
        let rec = w.master.service(svc).expect("exists");
        assert_eq!(
            rec.placed_capacity(),
            8,
            "resize target met after the crash"
        );
        assert_eq!(rec.state, ServiceState::Running, "resize settles");
        assert_eq!(w.master.healthy_capacity(svc), 8);
        assert_recovered_off_host(w, svc, victim);
        assert_eq!(recovery::check_invariants(w), 0);
    } else {
        panic!("resize to 8 should have placed a new node");
    }
}

/// A flapping host: partitions long enough to be declared down, then
/// comes back before a replacement lands. The loop must roll back the
/// declaration (false alarm), re-admit the backends, and never leak an
/// episode — twice in a row.
#[test]
fn heartbeat_flapping_rolls_back_cleanly() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 21);
    engine.state_mut().enable_obs(1 << 14);
    recovery::start_self_healing(
        &mut engine,
        RecoveryConfig::default(),
        SimTime::from_secs(300),
    );
    let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
    engine.run_until(SimTime::from_secs(120));
    assert_eq!(engine.state().master.healthy_capacity(svc), 3);

    for start in [120u64, 140u64] {
        // Partition seattle for 8 s: past the 3.5 s heartbeat timeout,
        // but healed before any replacement can land (the spare tacoma
        // cannot fit the lost two-instance node, so placement retries).
        engine
            .state_mut()
            .control
            .partition(1, SimTime::from_secs(start + 8));
        engine.run_until(SimTime::from_secs(start + 20));
        let w = engine.state_mut();
        assert_eq!(
            w.master.healthy_capacity(svc),
            3,
            "capacity restored after the flap at t={start}"
        );
        assert_eq!(w.recovery.open_episodes(), 0, "no episode leaked");
        assert_eq!(recovery::check_invariants(w), 0);
    }
    let w = engine.state();
    assert!(
        w.recovery.stats.false_alarms >= 2,
        "each flap is rolled back as a false alarm: {:?}",
        w.recovery.stats
    );
    assert!(w.recovery.stats.detections.len() >= 2);
    assert_eq!(
        w.recovery.stats.recoveries.len(),
        0,
        "no replacement should have completed"
    );
    // The original placement survives intact.
    let rec = w.master.service(svc).expect("exists");
    assert_eq!(rec.placed_capacity(), 3);
    for n in &rec.nodes {
        let d = w
            .daemons
            .iter()
            .find(|d| d.host.id == n.host)
            .expect("host");
        assert!(d.vsn(n.vsn).is_some_and(|v| v.is_running()));
    }
}

/// FNV-1a over the rendered event log — the same fingerprint the soak
/// experiments gate on.
fn drain_fingerprint(world: &mut SodaWorld) -> u64 {
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    if let Some(drained) = world.obs.drain_events() {
        for ev in &drained.events {
            for b in ev.to_string().bytes() {
                fp ^= u64::from(b);
                fp = fp.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    fp
}

/// The Master dies while a recovery episode is mid-flight — a host was
/// crashed, detection fired, and the replacement's image download is on
/// the wire. The crash wipes the episode table; the standby must
/// rebuild from checkpoint ⊕ journal, re-detect whatever is still
/// broken under the new epoch, and converge to full capacity with
/// nothing placed on the dead host — bit-identically across replays.
#[test]
fn master_crash_during_active_recovery_converges() {
    fn scenario(seed: u64) -> (u64, usize, u64, u64) {
        let mut engine = Engine::with_seed(SodaWorld::new(hup(3, true)), seed);
        engine.state_mut().enable_obs(1 << 15);
        recovery::start_self_healing(
            &mut engine,
            RecoveryConfig::default(),
            SimTime::from_secs(300),
        );
        let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
        engine.run_until(SimTime::from_secs(49));
        assert_eq!(engine.state().creations.len(), 1, "creation finished");
        let victim = engine.state().master.service(svc).expect("exists").nodes[0].host;
        engine.schedule_at(SimTime::from_secs(50), move |w: &mut SodaWorld, ctx| {
            crash_host(w, ctx, victim);
        });
        // Detection lands ~53.5–54.5 s and opens an episode; the
        // replacement is still priming when the Master dies at 56.
        engine.schedule_at(SimTime::from_secs(56), |w: &mut SodaWorld, ctx| {
            assert!(w.recovery.open_episodes() > 0, "episode must be in flight");
            assert!(w.journal.replay_len() > 0, "journal has a tail to replay");
            apply_fault(w, ctx, FaultSpec::MasterCrash);
        });
        engine.run_until(SimTime::from_secs(300));
        let w = engine.state_mut();
        assert!(!w.master_is_down(), "standby took over");
        assert_eq!(w.failover.records.len(), 1, "exactly one takeover");
        let rec = w.failover.records[0];
        assert!(rec.replayed > 0, "takeover replayed the journal tail");
        assert_eq!(rec.epoch, 2, "epoch bumped exactly once");
        let svc_rec = w.master.service(svc).expect("record survived the crash");
        assert_eq!(svc_rec.placed_capacity(), 3, "full capacity restored");
        assert_recovered_off_host(w, svc, victim);
        assert_eq!(
            recovery::check_invariants(w),
            0,
            "never routed to a dead VSN"
        );
        (
            drain_fingerprint(w),
            rec.replayed,
            w.journal.epoch(),
            w.recovery.stats.retries,
        )
    }
    let a = scenario(11);
    let b = scenario(11);
    assert_eq!(a, b, "same seed must replay bit-identically");
}

/// The Master dies while admissions keep arriving. Every attempt during
/// the outage must be refused loudly (`MasterUnavailable`), never
/// silently queued against a dead control plane; once the standby takes
/// over, the whole backlog re-admits and every creation completes. The
/// data plane serves throughout — switches survive the crash.
#[test]
fn master_crash_with_admission_backlog() {
    fn scenario(seed: u64) -> (u64, usize, u64) {
        let mut engine = Engine::with_seed(SodaWorld::new(hup(4, false)), seed);
        engine.state_mut().enable_obs(1 << 15);
        recovery::start_self_healing(
            &mut engine,
            RecoveryConfig::default(),
            SimTime::from_secs(240),
        );
        let web = create_service_driven(&mut engine, web_spec(2), "webco").expect("admitted");
        // A slow standby (8 s watchdog) so the outage spans several
        // admission attempts.
        engine.state_mut().failover.detection_delay = SimDuration::from_secs(8);
        PoissonGenerator {
            service: web,
            dataset_bytes: 30_000,
            rate_rps: 10.0,
            start: SimTime::from_secs(20),
            end: SimTime::from_secs(120),
        }
        .start(&mut engine);
        engine.schedule_at(SimTime::from_secs(40), |w: &mut SodaWorld, ctx| {
            apply_fault(w, ctx, FaultSpec::MasterCrash);
        });
        // Control plane down 40 → ~48.05 s; three tenants knock.
        let mut backlog = Vec::new();
        for (t, asp) in [(41u64, "aco"), (43, "bco"), (45, "cco")] {
            engine.run_until(SimTime::from_secs(t));
            assert!(engine.state().master_is_down(), "still down at t={t}");
            match create_service_driven(&mut engine, web_spec(1), asp) {
                Err(SodaError::MasterUnavailable) => backlog.push(asp),
                other => panic!("expected MasterUnavailable at t={t}, got {other:?}"),
            }
        }
        engine.run_until(SimTime::from_secs(60));
        assert!(!engine.state().master_is_down(), "standby took over");
        let admitted: Vec<_> = backlog
            .into_iter()
            .map(|asp| create_service_driven(&mut engine, web_spec(1), asp).expect("retry admits"))
            .collect();
        assert_eq!(admitted.len(), 3, "whole backlog re-admitted");
        engine.run_until(SimTime::from_secs(240));
        let w = engine.state_mut();
        for svc in &admitted {
            assert!(
                w.creations.iter().any(|c| c.reply.service == *svc),
                "backlog creation {svc:?} completed"
            );
        }
        assert_eq!(w.failover.records.len(), 1, "exactly one takeover");
        assert!(
            !w.completed.is_empty(),
            "data plane served across the outage"
        );
        assert_eq!(recovery::check_invariants(w), 0);
        (drain_fingerprint(w), w.completed.len(), w.dropped)
    }
    let a = scenario(7);
    let b = scenario(7);
    assert_eq!(a, b, "same seed must replay bit-identically");
}

/// A second Master crash lands inside the first takeover's watchdog
/// window. The stale takeover must abort (generation guard) and the
/// clock restart from the second crash — exactly one takeover record,
/// latency honestly measured from the *original* outage, and the world
/// still converges.
#[test]
fn double_master_crash_before_standby_finishes_replay() {
    fn scenario(seed: u64) -> (u64, u64, u64) {
        let mut engine = Engine::with_seed(SodaWorld::new(hup(3, true)), seed);
        engine.state_mut().enable_obs(1 << 15);
        recovery::start_self_healing(
            &mut engine,
            RecoveryConfig::default(),
            SimTime::from_secs(240),
        );
        let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
        engine.run_until(SimTime::from_secs(30));
        // First crash at 40 → watchdog fires ~42.05. The second crash
        // at 41 is inside that window.
        engine.schedule_at(SimTime::from_secs(40), |w: &mut SodaWorld, ctx| {
            apply_fault(w, ctx, FaultSpec::MasterCrash);
        });
        engine.schedule_at(SimTime::from_secs(41), |w: &mut SodaWorld, ctx| {
            assert!(w.master_is_down(), "first outage still in effect");
            apply_fault(w, ctx, FaultSpec::MasterCrash);
        });
        engine.run_until(SimTime::from_secs(240));
        let w = engine.state_mut();
        assert_eq!(
            w.failover.records.len(),
            1,
            "stale takeover aborted; exactly one completes"
        );
        let rec = w.failover.records[0];
        assert_eq!(
            rec.crashed_at,
            SimTime::from_secs(40),
            "latency measured from the original outage"
        );
        assert!(
            rec.recovered_at >= SimTime::from_secs(43),
            "takeover clock restarted by the second crash: {:?}",
            rec.recovered_at
        );
        assert_eq!(rec.epoch, 2, "one epoch bump for the whole double-crash");
        assert!(!w.master_is_down());
        assert_eq!(
            w.master
                .service(svc)
                .expect("record survived")
                .placed_capacity(),
            3
        );
        assert_eq!(recovery::check_invariants(w), 0);
        (
            drain_fingerprint(w),
            rec.recovered_at.as_nanos(),
            w.journal.epoch(),
        )
    }
    let a = scenario(13);
    let b = scenario(13);
    assert_eq!(a, b, "same seed must replay bit-identically");
}

/// Tier-1: a checkpoint taken mid-soak, rendered to text, parsed back
/// and restored into the world continues fingerprint-identically to the
/// run that never snapshotted — the snapshot is a faithful,
/// serializable image of the control plane (jitter RNG state included:
/// a host dies *after* the restore point and every detection/backoff
/// draw must be unperturbed).
#[test]
fn snapshot_roundtrip_continues_fingerprint_identically() {
    fn scenario(seed: u64, roundtrip: bool) -> (u64, usize, u64) {
        let mut engine = Engine::with_seed(SodaWorld::new(hup(3, true)), seed);
        engine.state_mut().enable_obs(1 << 15);
        recovery::start_self_healing(
            &mut engine,
            RecoveryConfig::default(),
            SimTime::from_secs(200),
        );
        let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
        PoissonGenerator {
            service: svc,
            dataset_bytes: 30_000,
            rate_rps: 12.0,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(150),
        }
        .start(&mut engine);
        engine.run_until(SimTime::from_secs(100));
        if roundtrip {
            let snap = engine.state().snapshot_world(engine.now());
            let text = snap.render();
            let parsed = WorldSnapshot::parse(&text).expect("snapshot text parses back");
            assert_eq!(parsed, snap, "render → parse is lossless");
            assert_eq!(parsed.fingerprint(), snap.fingerprint());
            engine.state_mut().restore_world(&parsed);
        }
        engine.run_until(SimTime::from_secs(109));
        let victim = engine.state().master.service(svc).expect("exists").nodes[0].host;
        engine.schedule_at(SimTime::from_secs(110), move |w: &mut SodaWorld, ctx| {
            crash_host(w, ctx, victim);
        });
        engine.run_until(SimTime::from_secs(200));
        let w = engine.state_mut();
        assert_recovered_off_host(w, svc, victim);
        assert_eq!(recovery::check_invariants(w), 0);
        (drain_fingerprint(w), w.completed.len(), w.dropped)
    }
    let plain = scenario(21, false);
    let snapped = scenario(21, true);
    assert_eq!(snapped, plain, "round-trip must not perturb the run");
}

/// Snapshot → restore taken while an impairment window is ACTIVE —
/// mid-partition or mid-`SlowHost` — must also continue
/// fingerprint-identically: the snapshot captures control-plane state,
/// and restoring it must not cancel, double-apply, or time-shift the
/// in-flight fault windows.
#[test]
fn snapshot_mid_impairment_continues_fingerprint_identically() {
    fn scenario(seed: u64, fault: FaultSpec, roundtrip: bool) -> (u64, usize, u64) {
        let mut engine = Engine::with_seed(SodaWorld::new(hup(3, true)), seed);
        engine.state_mut().enable_obs(1 << 15);
        recovery::start_self_healing(
            &mut engine,
            RecoveryConfig::default(),
            SimTime::from_secs(200),
        );
        let svc = create_service_driven(&mut engine, web_spec(3), "webco").expect("admitted");
        PoissonGenerator {
            service: svc,
            dataset_bytes: 30_000,
            rate_rps: 12.0,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(150),
        }
        .start(&mut engine);
        // Impairment opens at t=95 s and stays open through t=125 s;
        // the snapshot lands at t=100 s, squarely inside the window.
        engine.schedule_at(SimTime::from_secs(95), move |w: &mut SodaWorld, ctx| {
            apply_fault(w, ctx, fault);
        });
        engine.run_until(SimTime::from_secs(100));
        if roundtrip {
            let snap = engine.state().snapshot_world(engine.now());
            let text = snap.render();
            let parsed = WorldSnapshot::parse(&text).expect("snapshot text parses back");
            assert_eq!(parsed, snap, "render → parse is lossless");
            engine.state_mut().restore_world(&parsed);
        }
        engine.run_until(SimTime::from_secs(200));
        let w = engine.state_mut();
        assert_eq!(recovery::check_invariants(w), 0);
        (drain_fingerprint(w), w.completed.len(), w.dropped)
    }
    let partition = FaultSpec::LinkPartition {
        host: 1,
        duration: SimDuration::from_secs(30),
    };
    let plain = scenario(33, partition, false);
    let snapped = scenario(33, partition, true);
    assert_eq!(
        snapped, plain,
        "snapshot mid-partition must not perturb the run"
    );

    let slow = FaultSpec::SlowHost {
        host: 1,
        factor: 4.0,
        duration: SimDuration::from_secs(30),
    };
    let plain = scenario(34, slow, false);
    let snapped = scenario(34, slow, true);
    assert_eq!(
        snapped, plain,
        "snapshot mid-SlowHost must not perturb the run"
    );
}

/// The parallel engine under chaos: per-cell fault plans, heartbeat
/// draws, self-healing episodes and invariant sweeps must replay the
/// serial oracle bit-identically on real threads — the epoch barriers
/// see recovery traffic and mass cancellations, not just the steady
/// state.
#[test]
fn parallel_engine_replays_serial_on_a_chaos_seed() {
    use soda::sim::EngineKind;
    use soda_bench::experiments::parallel::{self, ParallelConfig};

    let cfg = ParallelConfig {
        hosts: 8,
        requests: 20_000,
        seed: 1303,
        cells: 4,
        obs: true,
        chaos: true,
        ..ParallelConfig::default()
    };
    let serial = parallel::run(&cfg);
    assert!(serial.completed > 1000, "the fleet keeps serving");
    for n in [2, 4] {
        let par = parallel::run(&ParallelConfig {
            engine: EngineKind::Parallel(n),
            ..cfg
        });
        assert_eq!(
            par.trajectory_fingerprint, serial.trajectory_fingerprint,
            "Parallel({n}) chaos trajectory diverged from serial"
        );
        assert_eq!(
            par.event_fingerprint, serial.event_fingerprint,
            "Parallel({n}) chaos event log diverged from serial"
        );
        assert_eq!(par.events, serial.events);
    }
}
