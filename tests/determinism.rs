//! Whole-system determinism: identical seeds reproduce the entire
//! trajectory bit-for-bit (the property that makes every regenerated
//! table and figure reproducible), and different seeds genuinely
//! diverge.

use soda::core::service::ServiceSpec;
use soda::core::shard::ControlPlaneKind;
use soda::core::world::SodaWorld;
use soda::hostos::resources::ResourceVector;
use soda::sim::QueueKind;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PoissonGenerator;
use soda_bench::experiments::scale::{self, ScaleConfig};

fn trajectory(seed: u64) -> Vec<(u64, u64)> {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
    let spec = ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: 3,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    };
    let svc = soda::core::world::create_service_driven(&mut engine, spec, "webco").unwrap();
    engine.run_until(SimTime::from_secs(60));
    let t0 = engine.now();
    PoissonGenerator {
        service: svc,
        dataset_bytes: 30_000,
        rate_rps: 25.0,
        start: t0,
        end: t0 + SimDuration::from_secs(30),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(90));
    engine
        .state()
        .completed
        .iter()
        .map(|r| (r.issued.as_nanos(), r.completed.as_nanos()))
        .collect()
}

#[test]
fn same_seed_same_world() {
    let a = trajectory(42);
    let b = trajectory(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical seeds must replay identically");
}

#[test]
fn different_seeds_diverge() {
    let a = trajectory(42);
    let c = trajectory(43);
    assert_ne!(a, c, "different seeds must differ");
}

/// The utility-scale X-SCALE run is as deterministic as the two-host
/// testbed: same seed, same fingerprints — and observability, which
/// rides the hot paths (switch routing, completion accounting), must
/// observe without perturbing the trajectory.
#[test]
fn scale_run_is_deterministic_and_obs_transparent() {
    let cfg = ScaleConfig {
        hosts: 100,
        requests: 100_000,
        seed: 1303,
        obs: true,
        queue: QueueKind::Wheel,
        ..ScaleConfig::default()
    };
    let a = scale::run(&cfg);
    let b = scale::run(&cfg);
    assert_eq!(a.completed + a.dropped, cfg.requests);
    assert_eq!(
        a.trajectory_fingerprint, b.trajectory_fingerprint,
        "identical seeds must replay identically at 100 hosts"
    );
    assert_eq!(
        a.event_fingerprint, b.event_fingerprint,
        "the event log must replay identically too"
    );
    assert_eq!(a.events, b.events);

    let dark = scale::run(&ScaleConfig { obs: false, ..cfg });
    assert_eq!(
        dark.trajectory_fingerprint, a.trajectory_fingerprint,
        "turning observability on must not move the trajectory"
    );
    assert_eq!(dark.events, a.events);
    assert_eq!(dark.event_fingerprint, 0, "obs off records nothing");
}

/// The timer wheel replaced the binary heap as the engine's event core;
/// the heap survives as `queue::oracle` and as `QueueKind::Heap`. The
/// two must be trajectory-identical at utility scale: replaying the
/// 100-host / 100k-request run on each queue implementation produces
/// the same trajectory and event-log fingerprints, bit for bit.
#[test]
fn queue_implementations_replay_identically_at_scale() {
    let cfg = ScaleConfig {
        hosts: 100,
        requests: 100_000,
        seed: 1303,
        obs: true,
        queue: QueueKind::Wheel,
        ..ScaleConfig::default()
    };
    let wheel = scale::run(&cfg);
    let heap = scale::run(&ScaleConfig {
        queue: QueueKind::Heap,
        ..cfg
    });
    assert_eq!(wheel.completed + wheel.dropped, cfg.requests);
    assert_eq!(
        wheel.trajectory_fingerprint, heap.trajectory_fingerprint,
        "wheel and heap must drive identical trajectories"
    );
    assert_eq!(
        wheel.event_fingerprint, heap.event_fingerprint,
        "and identical event logs"
    );
    assert_eq!(wheel.events, heap.events);
    assert_eq!(wheel.completed, heap.completed);
    assert_eq!(wheel.dropped, heap.dropped);
}

/// The sharded control plane's differential gate: one placement cell
/// IS the monolith. `Sharded(1)` must replay the utility-scale
/// 100-host / 100k-request run bit-identically to `Monolith` —
/// trajectory fingerprint, event-log fingerprint and event count — and
/// with zero shard traffic. A sharded plane with n > 1 cells keeps the
/// conservation law on the same run: every service admits, every
/// request completes or is counted dropped.
#[test]
fn sharded_one_cell_replays_the_monolith_at_scale() {
    let cfg = ScaleConfig {
        hosts: 100,
        requests: 100_000,
        seed: 1303,
        obs: true,
        queue: QueueKind::Wheel,
        ..ScaleConfig::default()
    };
    let mono = scale::run(&cfg);
    let one = scale::run(&ScaleConfig {
        kind: ControlPlaneKind::Sharded(1),
        ..cfg
    });
    assert_eq!(
        mono.trajectory_fingerprint, one.trajectory_fingerprint,
        "one cell must walk the monolith's exact trajectory"
    );
    assert_eq!(
        mono.event_fingerprint, one.event_fingerprint,
        "and render the monolith's exact event log"
    );
    assert_eq!(mono.events, one.events);
    assert_eq!(one.shards, 1);
    assert_eq!(one.shard_spills, 0, "a single cell never spills");
    assert_eq!(one.shard_msgs_sent, 0, "a single cell never messages");

    let four = scale::run(&ScaleConfig {
        kind: ControlPlaneKind::Sharded(4),
        ..cfg
    });
    assert_eq!(four.shards, 4);
    assert_eq!(four.services, mono.services, "every service still admits");
    assert_eq!(four.vsns, mono.vsns, "every instance still places");
    assert_eq!(
        four.completed + four.dropped,
        cfg.requests,
        "conservation holds under four cells"
    );
}

/// The dense-arena data plane's differential gate at utility scale:
/// `Arena` (the default slab backend for every id-keyed hot table) must
/// replay the `Map` oracle bit-identically on the 100-host /
/// 100k-request run — trajectory fingerprint, event-log fingerprint and
/// event count. Both backends iterate in ascending id order by
/// construction, so any divergence is a slot-accounting bug, not an
/// ordering choice.
#[test]
fn arena_storage_replays_the_map_oracle_at_scale() {
    use soda::core::WorldStorageKind;

    let cfg = ScaleConfig {
        hosts: 100,
        requests: 100_000,
        seed: 1303,
        obs: true,
        queue: QueueKind::Wheel,
        storage: WorldStorageKind::Arena,
        ..ScaleConfig::default()
    };
    let arena = scale::run(&cfg);
    let map = scale::run(&ScaleConfig {
        storage: WorldStorageKind::Map,
        ..cfg
    });
    assert_eq!(arena.completed + arena.dropped, cfg.requests);
    assert_eq!(
        arena.trajectory_fingerprint, map.trajectory_fingerprint,
        "the arena must walk the map oracle's exact trajectory"
    );
    assert_eq!(
        arena.event_fingerprint, map.event_fingerprint,
        "and render the map oracle's exact event log"
    );
    assert_eq!(arena.events, map.events);
    assert_eq!(arena.completed, map.completed);
    assert_eq!(arena.dropped, map.dropped);
}

#[test]
fn engine_event_count_is_reproducible() {
    let count = |seed| {
        let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
        let spec = ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 80,
        };
        soda::core::world::create_service_driven(&mut engine, spec, "a").unwrap();
        engine.run_until(SimTime::from_secs(60));
        engine.events_executed()
    };
    assert_eq!(count(7), count(7));
}

/// The parallel engine's differential gate at utility scale: the
/// conservative epoch-synchronized runner must replay the serial
/// oracle bit-for-bit on the 100-host / 100k-request run — trajectory
/// fingerprint, event-log fingerprint and event count — for every
/// thread count, including `Parallel(1)`. The merge order at the epoch
/// barriers, not thread scheduling, decides every cross-cell tie, so
/// divergence at any n is a bug, not noise.
#[test]
fn parallel_engine_replays_the_serial_oracle_at_scale() {
    use soda::sim::EngineKind;
    use soda_bench::experiments::parallel::{self, ParallelConfig};

    let cfg = ParallelConfig {
        hosts: 100,
        requests: 100_000,
        seed: 1303,
        cells: 8,
        obs: true,
        queue: QueueKind::Wheel,
        ..ParallelConfig::default()
    };
    let serial = parallel::run(&cfg);
    assert_eq!(serial.completed + serial.dropped, cfg.requests);
    assert!(serial.remote_msgs > 0, "cross-cell traffic must flow");
    for n in [1, 2, 4, 8] {
        let par = parallel::run(&ParallelConfig {
            engine: EngineKind::Parallel(n),
            ..cfg
        });
        assert_eq!(
            par.trajectory_fingerprint, serial.trajectory_fingerprint,
            "Parallel({n}) must walk the serial oracle's exact trajectory"
        );
        assert_eq!(
            par.event_fingerprint, serial.event_fingerprint,
            "Parallel({n}) must write the serial oracle's exact event log"
        );
        assert_eq!(par.events, serial.events);
        assert_eq!(par.remote_msgs, serial.remote_msgs);
        assert_eq!(par.epochs, serial.epochs);
    }
}
