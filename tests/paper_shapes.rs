//! One integration test per paper artifact, asserting the *shape* the
//! reproduction must preserve (DESIGN.md §5's calibration targets).
//! These run the same entry points as the `exp_*` binaries, at reduced
//! measurement lengths.

use soda_bench::experiments::{
    attack, ddos, download, fig4, fig5, fig6, inflation, table2, table4,
};
use soda_workload::datasets::{FIG4_SWEEP, FIG6_SWEEP};

#[test]
fn t2_bootstrap_ordering_and_host_gap() {
    let rows = table2::run();
    // S_II < S_I < S_III ≪ S_IV, tacoma slower everywhere.
    assert!(rows[1].seattle_secs < rows[0].seattle_secs);
    assert!(rows[0].seattle_secs < rows[2].seattle_secs);
    assert!(rows[3].seattle_secs > 2.0 * rows[2].seattle_secs);
    for r in &rows {
        assert!(r.tacoma_secs > r.seattle_secs);
    }
    // Size is not destiny: the 400 MB image boots faster than the 253 MB
    // full server.
    assert!(rows[2].image_bytes > rows[3].image_bytes);
    assert!(rows[2].seattle_secs < rows[3].seattle_secs);
}

#[test]
fn t4_syscall_penalty_band() {
    let rows = table4::run();
    for r in &rows {
        assert!(
            r.penalty > 15.0 && r.penalty < 35.0,
            "{}: {}",
            r.call,
            r.penalty
        );
    }
    assert_eq!(
        rows.iter().max_by_key(|r| r.uml_cycles).unwrap().call,
        "gettimeofday"
    );
}

#[test]
fn f4_two_to_one_split_equal_latency() {
    // One representative sweep point suffices for the integration test;
    // the unit tests in soda-bench cover more.
    let r = fig4::run_point(&FIG4_SWEEP[1], 60, 2);
    assert!(
        (1.7..2.3).contains(&r.served_ratio()),
        "{}",
        r.served_ratio()
    );
    assert!(
        (0.65..1.55).contains(&r.response_ratio()),
        "{}",
        r.response_ratio()
    );
}

#[test]
fn f5_proportional_beats_stock() {
    let stock = fig5::run_stock(20, 9);
    let prop = fig5::run_proportional(20, 9);
    assert!(prop.max_mean_deviation() < 0.02);
    assert!(stock.max_mean_deviation() > 0.10);
}

#[test]
fn f6_ordering_and_modest_factor() {
    let p = &FIG6_SWEEP[1];
    let c1 = fig6::run_cell(fig6::Scenario::VsnWithSwitch, p, 30, 4);
    let c2 = fig6::run_cell(fig6::Scenario::HostWithSwitch, p, 30, 4);
    let c3 = fig6::run_cell(fig6::Scenario::HostDirect, p, 30, 4);
    assert!(c1.mean_secs > c2.mean_secs);
    assert!(c2.mean_secs > c3.mean_secs);
    let factor = c1.mean_secs / c3.mean_secs;
    assert!(factor > 1.0 && factor < 2.0, "factor {factor}");
}

#[test]
fn download_linear() {
    let rows = download::run();
    assert!(download::linearity_r2(&rows) > 0.9999);
}

#[test]
fn attack_isolated_vs_counterfactual() {
    let soda = attack::run(true, 90, 5);
    assert!(soda.honeypot_crashes >= 2);
    assert!(!soda.web_cohosted_crashed);
    assert_eq!(soda.web_completed, soda.web_offered);
    let direct = attack::run(false, 90, 5);
    assert!(direct.web_cohosted_crashed);
}

#[test]
fn ddos_violates_isolation() {
    let r = ddos::run(40, 40, 8);
    assert!(r.degradation() > 2.0, "degradation {}", r.degradation());
}

#[test]
fn inflation_tradeoff() {
    let rows = inflation::run();
    for w in rows.windows(2) {
        assert!(w[1].admitted <= w[0].admitted);
    }
    assert!(
        rows.iter()
            .find(|r| r.factor == 1.5)
            .unwrap()
            .covers_measured
    );
}
