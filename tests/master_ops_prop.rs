//! Property test: arbitrary interleavings of the SODA API (create,
//! resize, teardown, crash, revive-prime) never violate the platform
//! invariants — ledger conservation, config-file/capacity agreement,
//! no leaked IPs/processes/bridge entries after everything is torn down.

use proptest::prelude::*;
use soda::core::journal::{Journal, JournalOp, ServiceSnapshot};
use soda::core::master::SodaMaster;
use soda::core::service::{ServiceId, ServiceSpec, ServiceState};
use soda::hostos::resources::ResourceVector;
use soda::hup::daemon::SodaDaemon;
use soda::hup::host::{HostId, HupHost};
use soda::net::pool::IpPool;
use soda::sim::SimTime;
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;

#[derive(Clone, Debug)]
enum Op {
    Create { instances: u32 },
    Resize { which: usize, new_instances: u32 },
    Teardown { which: usize },
    CrashNode { which: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..5).prop_map(|instances| Op::Create { instances }),
        (0usize..8, 1u32..6).prop_map(|(which, new_instances)| Op::Resize {
            which,
            new_instances
        }),
        (0usize..8).prop_map(|which| Op::Teardown { which }),
        (0usize..8).prop_map(|which| Op::CrashNode { which }),
    ]
}

fn testbed() -> Vec<SodaDaemon> {
    vec![
        SodaDaemon::new(HupHost::seattle(
            HostId(1),
            IpPool::new("10.0.0.0".parse().unwrap(), 16),
        )),
        SodaDaemon::new(HupHost::tacoma(
            HostId(2),
            IpPool::new("10.0.1.0".parse().unwrap(), 16),
        )),
        SodaDaemon::new(HupHost::seattle(
            HostId(3),
            IpPool::new("10.0.2.0".parse().unwrap(), 16),
        )),
    ]
}

fn spec(n: u32, i: usize) -> ServiceSpec {
    ServiceSpec {
        name: format!("svc{i}"),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: n,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

fn check_invariants(master: &SodaMaster, daemons: &[SodaDaemon], live: &[ServiceId]) {
    // Ledger conservation per host.
    for d in daemons {
        let cap = d.host.ledger.capacity();
        assert_eq!(d.host.ledger.available() + d.host.ledger.reserved(), cap);
    }
    // Config files agree with records for every live service.
    for &svc in live {
        let rec = master.service(svc).expect("live service exists");
        if rec.state == ServiceState::Running {
            if let Some(sw) = master.switch(svc) {
                assert_eq!(
                    sw.config().total_capacity(),
                    rec.placed_capacity(),
                    "{svc}: config/capacity drift"
                );
                assert_eq!(sw.config().len(), rec.nodes.len());
                // The switch's incremental view cache and aggregates
                // must survive a from-scratch recompute after every
                // master op (resize/upgrade/migrate/teardown).
                sw.assert_cache_coherent();
            }
        }
    }
    // IP pool accounting: in-use addresses equal bridge mappings.
    for d in daemons {
        assert_eq!(
            d.host.ip_pool.in_use() as usize,
            d.host.bridge.mappings(),
            "{}: pool/bridge drift",
            d.host.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn master_survives_arbitrary_op_sequences(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let baseline: Vec<ResourceVector> =
            daemons.iter().map(|d| d.report_resources()).collect();
        let mut live: Vec<ServiceId> = Vec::new();
        let now = SimTime::ZERO;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Create { instances } => {
                    if let Ok(reply) =
                        master.create_service_now(spec(instances, i), "asp", &mut daemons, now)
                    {
                        live.push(reply.service);
                    }
                }
                Op::Resize { which, new_instances } => {
                    if let Some(&svc) = live.get(which % live.len().max(1)) {
                        let _ = master.resize(svc, new_instances, &mut daemons, now);
                    }
                }
                Op::Teardown { which } => {
                    if !live.is_empty() {
                        let svc = live.remove(which % live.len());
                        master.teardown(svc, &mut daemons).expect("live teardown succeeds");
                    }
                }
                Op::CrashNode { which } => {
                    if let Some(&svc) = live.get(which % live.len().max(1)) {
                        let node = master.service(svc).and_then(|r| r.nodes.first().copied());
                        if let Some(node) = node {
                            if let Some(d) =
                                daemons.iter_mut().find(|d| d.host.id == node.host)
                            {
                                if d.vsn(node.vsn).is_some_and(|v| v.is_running()) {
                                    d.crash_vsn(node.vsn, SimTime::ZERO).expect("running node crashes");
                                    master.node_crashed(svc, node.vsn);
                                }
                            }
                        }
                    }
                }
            }
            check_invariants(&master, &daemons, &live);
        }
        // Drain: tear everything down; the HUP returns to pristine.
        for svc in live {
            master.teardown(svc, &mut daemons).expect("final teardown");
        }
        let after: Vec<ResourceVector> =
            daemons.iter().map(|d| d.report_resources()).collect();
        prop_assert_eq!(after, baseline);
        for d in &daemons {
            prop_assert_eq!(d.vsn_count(), 0);
            prop_assert!(d.host.processes.is_empty());
            prop_assert_eq!(d.host.bridge.mappings(), 0);
            prop_assert_eq!(d.host.ip_pool.in_use(), 0);
        }
    }

    /// Inline compaction is a pure optimisation: for any op sequence,
    /// replaying a journal that compacts aggressively (every 4 entries)
    /// must rebuild state identical — fingerprint, id counters, epoch —
    /// to replaying the full uncompacted stream, after every single
    /// append, not just at the end.
    #[test]
    fn journal_compaction_equivalence(ops in proptest::collection::vec(op_strategy(), 1..48)) {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let genesis = master.snapshot(1);
        let mut compacted = Journal::new(genesis.clone(), 4);
        let mut full = Journal::new(genesis, usize::MAX);
        let mut live: Vec<ServiceId> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            // (op kind, touched service, post-transition record)
            let entry: Option<(JournalOp, ServiceId, Option<ServiceSnapshot>)> = match op {
                Op::Create { instances } => master
                    .create_service_now(spec(instances, i), "asp", &mut daemons, now)
                    .ok()
                    .map(|reply| {
                        live.push(reply.service);
                        let rec = master.service(reply.service).expect("admitted");
                        (JournalOp::Admission, reply.service, Some(ServiceSnapshot::capture(rec)))
                    }),
                Op::Resize { which, new_instances } => {
                    live.get(which % live.len().max(1)).copied().and_then(|svc| {
                        master.resize(svc, new_instances, &mut daemons, now).ok().map(|_| {
                            let rec = master.service(svc).expect("resized");
                            (JournalOp::Resize, svc, Some(ServiceSnapshot::capture(rec)))
                        })
                    })
                }
                Op::Teardown { which } => {
                    if live.is_empty() {
                        None
                    } else {
                        let svc = live.remove(which % live.len());
                        master.teardown(svc, &mut daemons).expect("live teardown succeeds");
                        Some((JournalOp::Teardown, svc, None))
                    }
                }
                Op::CrashNode { which } => {
                    live.get(which % live.len().max(1)).copied().and_then(|svc| {
                        let node = master.service(svc).and_then(|r| r.nodes.first().copied())?;
                        let d = daemons.iter_mut().find(|d| d.host.id == node.host)?;
                        if !d.vsn(node.vsn).is_some_and(|v| v.is_running()) {
                            return None;
                        }
                        d.crash_vsn(node.vsn, now).expect("running node crashes");
                        master.node_crashed(svc, node.vsn);
                        let rec = master.service(svc).expect("record survives crash");
                        Some((JournalOp::Recovery, svc, Some(ServiceSnapshot::capture(rec))))
                    })
                }
            };
            // Counters ride every entry, exactly as the world journals them.
            let snap = master.snapshot(compacted.epoch());
            let counters = (snap.next_service, snap.next_vsn);
            if let Some((op, svc, rec)) = entry {
                compacted.append(now, op, svc, None, rec.clone(), counters);
                full.append(now, op, svc, None, rec, counters);
            }
            // A takeover mid-stream must not break the equivalence either.
            if i % 13 == 12 {
                compacted.bump_epoch(now, counters);
                full.bump_epoch(now, counters);
            }
            let a = compacted.rebuild();
            let b = full.rebuild();
            prop_assert_eq!(a.fingerprint(), b.fingerprint(), "divergence after op {}", i);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(compacted.epoch(), full.epoch());
            prop_assert_eq!((a.next_service, a.next_vsn), (b.next_service, b.next_vsn));
        }
        prop_assert_eq!(full.checkpoints_taken(), 0, "the oracle stream never compacts");
        prop_assert_eq!(compacted.appended_total(), full.appended_total());
        if compacted.appended_total() >= 4 {
            prop_assert!(compacted.checkpoints_taken() > 0, "compaction actually fired");
        }
    }
}
