//! Request conservation across the whole pipeline: every submitted
//! request either completes or is counted as dropped — none vanish in
//! the switch, the CPU stage, the shaper, or the NIC — across a grid of
//! seeds, loads and perturbations (crashes mid-flight, floods).

use soda::core::service::ServiceSpec;
use soda::core::world::{
    attack_node, create_service_driven, ddos_switch_host, submit_request,
    submit_request_with_callback, SodaWorld,
};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::isolation::FaultKind;
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PoissonGenerator;

fn web_spec(n: u32) -> ServiceSpec {
    ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances: n,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

#[test]
fn conservation_under_clean_load() {
    for seed in [1u64, 7, 42, 1234] {
        let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
        let svc = create_service_driven(&mut engine, web_spec(3), "a").unwrap();
        engine.run_until(SimTime::from_secs(120));
        let t0 = engine.now();
        let rate = 10.0 + (seed % 4) as f64 * 15.0;
        PoissonGenerator {
            service: svc,
            dataset_bytes: 10_000 + (seed % 5) * 20_000,
            rate_rps: rate,
            start: t0,
            end: t0 + SimDuration::from_secs(60),
        }
        .start(&mut engine);
        engine.run_until(t0 + SimDuration::from_secs(600));
        let w = engine.state();
        let served: u64 = w.master.switch(svc).unwrap().served_counts().iter().sum();
        assert_eq!(w.completed.len() as u64, served, "seed {seed}");
        assert_eq!(w.dropped, 0, "seed {seed}: clean run drops nothing");
        // No backend still believes something is outstanding.
        for b in w.master.switch(svc).unwrap().backends() {
            assert_eq!(b.outstanding, 0, "seed {seed}");
        }
    }
}

#[test]
fn conservation_under_crash_and_flood() {
    for seed in [3u64, 9] {
        let mut engine = Engine::with_seed(SodaWorld::testbed(), seed);
        let svc = create_service_driven(&mut engine, web_spec(3), "a").unwrap();
        engine.run_until(SimTime::from_secs(120));
        let t0 = engine.now();
        // Count every submission explicitly via callbacks.
        let submitted = 400u64;
        for i in 0..submitted {
            engine.schedule_at(
                t0 + SimDuration::from_millis(25 * i),
                move |w: &mut SodaWorld, ctx| {
                    submit_request_with_callback(w, ctx, svc, 30_000, None);
                },
            );
        }
        // Mid-run: crash the seattle node and flood the switch host.
        let vsn = engine.state().master.service(svc).unwrap().nodes[0].vsn;
        engine.schedule_at(
            t0 + SimDuration::from_secs(4),
            move |w: &mut SodaWorld, ctx| {
                attack_node(w, ctx, svc, vsn, FaultKind::Crash);
                ddos_switch_host(w, ctx, svc, 5, 5_000_000);
            },
        );
        engine.run_until(t0 + SimDuration::from_secs(900));
        let w = engine.state();
        assert_eq!(
            w.completed.len() as u64 + w.dropped,
            submitted,
            "seed {seed}: completed {} + dropped {} != {submitted}",
            w.completed.len(),
            w.dropped
        );
        for b in w.master.switch(svc).unwrap().backends() {
            assert_eq!(b.outstanding, 0, "seed {seed}: in-flight must drain");
        }
    }
}

#[test]
fn callbacks_fire_exactly_once_per_request() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 5);
    let svc = create_service_driven(&mut engine, web_spec(1), "a").unwrap();
    engine.run_until(SimTime::from_secs(120));
    let t0 = engine.now();
    // A shared counter via the world's trace is awkward; count through a
    // static-free trick: schedule follow-up submissions from callbacks
    // and verify the chain length.
    const CHAIN: u64 = 25;
    fn chain(
        w: &mut SodaWorld,
        ctx: &mut soda::sim::Ctx<SodaWorld>,
        svc: soda::core::service::ServiceId,
        left: u64,
    ) {
        if left == 0 {
            return;
        }
        submit_request_with_callback(
            w,
            ctx,
            svc,
            5_000,
            Some(Box::new(move |w, ctx, outcome| {
                assert!(outcome.is_some(), "healthy service must serve");
                chain(w, ctx, svc, left - 1);
            })),
        );
    }
    engine.schedule_at(t0, move |w: &mut SodaWorld, ctx| chain(w, ctx, svc, CHAIN));
    engine.run_until(t0 + SimDuration::from_secs(300));
    assert_eq!(engine.state().completed.len() as u64, CHAIN);
    // And one plain request still works alongside.
    let t1 = engine.now();
    engine.schedule_at(t1, move |w: &mut SodaWorld, ctx| {
        submit_request(w, ctx, svc, 1_000)
    });
    engine.run_until(t1 + SimDuration::from_secs(30));
    assert_eq!(engine.state().completed.len() as u64, CHAIN + 1);
}

#[test]
fn dropped_request_callback_gets_none() {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 6);
    let svc = create_service_driven(&mut engine, web_spec(1), "a").unwrap();
    engine.run_until(SimTime::from_secs(120));
    let vsn = engine.state().master.service(svc).unwrap().nodes[0].vsn;
    let t0 = engine.now();
    engine.schedule_at(t0, move |w: &mut SodaWorld, ctx| {
        attack_node(w, ctx, svc, vsn, FaultKind::Crash);
        submit_request_with_callback(
            w,
            ctx,
            svc,
            1_000,
            Some(Box::new(|w, _ctx, outcome| {
                assert!(outcome.is_none(), "crashed service must report the drop");
                // Mark observation by bumping a counter we can read.
                w.dropped += 100; // sentinel on top of the real drop count
            })),
        );
    });
    engine.run_until(t0 + SimDuration::from_secs(30));
    let w = engine.state();
    assert!(
        w.dropped >= 101,
        "callback ran with None: dropped={}",
        w.dropped
    );
    assert!(w.completed.is_empty());
}
