//! The NIC's warm flow-completion path must be allocation-free: once a
//! link's index and the owner's scratch buffer are warm, advancing
//! across completion boundaries and draining results via
//! `drain_completed_into` is pure index surgery (ordered-set pops, map
//! removes, pushes into retained capacity). Same discipline and same
//! counting-allocator idiom as `route_no_alloc.rs`: its own test binary
//! with a thread-local counter, so harness threads can't bleed
//! allocations into a window. Only `add_flow` is excluded from the
//! window — inserting into the ordered index legitimately allocates
//! tree nodes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use soda::net::link::{LinkSpec, ProcessorSharingLink};
use soda::sim::{SimDuration, SimTime};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations made by the *calling* thread so far.
fn allocations_here() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be mid-teardown on exiting threads.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warm_flow_completion_path_never_allocates() {
    const FLOWS: usize = 1_000;
    let mut link = ProcessorSharingLink::new(LinkSpec::lan_100mbps());
    // Distinct sizes → distinct finish thresholds → one completion per
    // boundary, the worst case for per-event index work.
    for i in 0..FLOWS {
        link.add_flow(10_000 + 64 * i as u64, SimTime::ZERO);
    }
    // Warm the internal completed buffer (its first push would otherwise
    // allocate inside the window — `drain_completed_into` retains its
    // capacity across drains) and give the caller's scratch buffer all
    // the capacity it will need, on purpose, outside the window.
    let mut drained: Vec<_> = Vec::with_capacity(FLOWS + 1);
    link.add_flow(0, SimTime::ZERO);
    link.drain_completed_into(&mut drained);
    drained.clear();

    let before = allocations_here();
    // Event-driven drive: hop boundary to boundary exactly like
    // `pump_nic` does, draining after every advance. Pops from the
    // ordered index, map removals, and pushes into retained capacity —
    // zero allocations.
    while link.active_flows() > 0 {
        let t = link.next_completion().expect("active flows remain");
        link.advance(t);
        link.drain_completed_into(&mut drained);
    }
    // Partial advances (no boundary crossed) on the now-idle link are
    // equally clean.
    let mut now = SimTime::from_secs(10_000);
    for _ in 0..1_000 {
        now += SimDuration::from_micros(7);
        link.advance(now);
        link.drain_completed_into(&mut drained);
    }
    let after = allocations_here();
    assert_eq!(
        after - before,
        0,
        "advance+drain_completed_into must not allocate once warm \
         (got {} allocations over {FLOWS} completions)",
        after - before
    );
    assert_eq!(drained.len(), FLOWS, "every flow completed exactly once");
}

#[test]
fn warm_partial_advance_under_load_never_allocates() {
    // A contended link being nudged forward between boundaries (the
    // common steady state under fan-in load) must not allocate either:
    // it's a single shared-counter update regardless of flow count.
    let mut link = ProcessorSharingLink::new(LinkSpec::lan_100mbps());
    for _ in 0..10_000 {
        link.add_flow(100_000_000, SimTime::ZERO);
    }
    let mut scratch = Vec::with_capacity(16);
    let before = allocations_here();
    let mut now = SimTime::ZERO;
    for _ in 0..10_000 {
        now += SimDuration::from_nanos(311);
        link.advance(now);
        link.drain_completed_into(&mut scratch);
        let _ = link.next_completion();
    }
    let after = allocations_here();
    assert_eq!(
        after - before,
        0,
        "partial advances on a loaded link must not allocate (got {})",
        after - before
    );
    assert!(scratch.is_empty(), "nothing completes this early");
    assert_eq!(link.active_flows(), 10_000);
}
