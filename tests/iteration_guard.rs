//! Deterministic-iteration guard.
//!
//! The simulation's reproducibility contract (same seed → same
//! trajectory, same event log, and `Sharded(1)` ≡ `Monolith`) dies the
//! moment an event emission or a placement decision iterates a
//! `HashMap`/`HashSet` — std's hasher is seeded per process, so the
//! visit order varies run to run. Ordered state must live in `BTreeMap`
//! (the inventory, recovery beliefs) or be explicitly sorted before use
//! (the dead-VSN sweep in `crash_host`).
//!
//! This test is the audit, made durable: it scans the sources of
//! `soda-core` and `soda-sim` (the engine and the parallel epoch
//! machinery in `par.rs` are just as order-sensitive — a hash-ordered
//! merge would break the `Parallel(n)` ≡ `Serial` gate) for hash-typed
//! fields and for iteration over them, and fails when either appears
//! outside the reviewed allow-lists below. Adding a new `HashMap` field
//! or a new `.iter()`/`.values()`/`.retain()` call over one forces the
//! author to re-audit (is the order observable?) and extend the list.

use std::fs;
use std::path::{Path, PathBuf};

/// Hash-typed fields/bindings already audited: every one is either
/// looked up by key only, or its only iteration sites are listed in
/// [`AUDITED_ITERATION_SITES`]. The world's id-keyed hot tables moved
/// off hash maps entirely (see `arena.rs` and
/// [`world_hot_state_is_arena_backed`]), so only order-insensitive
/// locals remain.
const AUDITED_HASH_STATE: &[&str] = &[
    // world.rs locals: membership sets / key-value indexes, read only
    // via `contains`/`get`.
    "keep", "known", // placement.rs proptest local: assertion-only membership set.
    "seen",
];

/// Audited iteration-over-hash sites, `(file, line-substring)`. Each is
/// order-insensitive: pure removal, or the result is sorted before
/// anything observable happens. Currently empty: the arena conversion
/// removed the last iterated hash state (`node_runtimes` iterates in
/// ascending id order by construction, so `crash_host` no longer needs
/// its defensive sort).
const AUDITED_ITERATION_SITES: &[(&str, &str)] = &[];

/// The world's id-keyed hot tables, every one required to be backed by
/// the arena containers (`IdMap`/`RequestTable`) whose iteration order
/// is ascending-id in both backends.
const ARENA_BACKED_FIELDS: &[&str] = &[
    "nics: IdMap<",
    "node_runtimes: IdMap<",
    "daemon_slots: IdMap<",
    "ready_nodes: IdMap<",
    "callbacks: RequestTable<",
    "nic_arms: IdMap<",
    "host_slow: IdMap<",
    "armed_priming_failures: IdMap<",
    "request_traces: RequestTable<",
    "creation_traces: IdMap<",
    "priming_traces: IdMap<",
];

fn scanned_sources() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for crate_dir in ["crates/soda-core/src", "crates/soda-sim/src"] {
        let before = out.len();
        let mut stack = vec![root.join(crate_dir)];
        while let Some(d) = stack.pop() {
            for entry in fs::read_dir(&d).expect("crate sources readable") {
                let path: PathBuf = entry.expect("dir entry").path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let name = path
                        .file_name()
                        .expect("file name")
                        .to_string_lossy()
                        .into_owned();
                    out.push((name, fs::read_to_string(&path).expect("source reads")));
                }
            }
        }
        assert!(out.len() > before + 3, "expected the {crate_dir} tree");
    }
    assert!(out.len() >= 10, "expected both crates' source trees");
    out
}

/// Strip line comments so commentary about hash maps doesn't trip the
/// scan (string literals in this codebase never mention HashMap).
fn code_of(line: &str) -> &str {
    line.split("//").next().unwrap_or(line)
}

/// Names bound to a hash-typed value on this line: the identifier
/// before `: HashMap<...>` / `: HashSet<...>` (field declarations and
/// typed lets) or before `= HashMap::new()`-style constructions.
fn hash_bindings(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for marker in ["HashMap<", "HashSet<", "HashMap::new", "HashSet::new"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(marker) {
            let abs = from + pos;
            from = abs + marker.len();
            let mut before = code[..abs].trim_end();
            before = before
                .strip_suffix("std::collections::")
                .unwrap_or(before)
                .trim_end();
            let before = match before.strip_suffix([':', '=']) {
                Some(b) => b.trim_end(),
                // `use std::collections::HashMap`, turbofish, etc.
                None => continue,
            };
            let name: String = before
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            out.push(if name.is_empty() {
                "<anonymous>".to_string()
            } else {
                name
            });
        }
    }
    out
}

/// Every `HashMap`/`HashSet` field or binding in soda-core must be on
/// the audited list — new hash-typed state requires a determinism
/// review before it can land.
#[test]
fn hash_state_is_allow_listed() {
    let mut violations = Vec::new();
    for (file, src) in scanned_sources() {
        for (i, line) in src.lines().enumerate() {
            for name in hash_bindings(code_of(line)) {
                if !AUDITED_HASH_STATE.contains(&name.as_str()) {
                    violations.push(format!("{file}:{}: unaudited hash state `{name}`", i + 1));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "hash-typed state needs a determinism audit (iterate via BTreeMap \
         or sort before observing), then add it to AUDITED_HASH_STATE:\n{}",
        violations.join("\n")
    );
}

/// Every iteration over audited hash state must itself be an audited
/// site: hash visit order must never feed event emission or placement.
#[test]
fn hash_iteration_sites_are_audited() {
    let mut patterns = Vec::new();
    for field in AUDITED_HASH_STATE {
        for method in [
            "iter()",
            "iter_mut()",
            "keys()",
            "values()",
            "values_mut()",
            "drain()",
            "retain(",
        ] {
            patterns.push(format!("{field}.{method}"));
        }
    }
    let mut violations = Vec::new();
    for (file, src) in scanned_sources() {
        for (i, line) in src.lines().enumerate() {
            let code = code_of(line);
            for p in &patterns {
                if !code.contains(p.as_str()) {
                    continue;
                }
                let audited = AUDITED_ITERATION_SITES
                    .iter()
                    .any(|&(f, frag)| f == file && code.contains(frag));
                if !audited {
                    violations.push(format!("{file}:{}: unaudited iteration `{p}`", i + 1));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "iteration over hash state must be order-insensitive (or sorted) \
         and recorded in AUDITED_ITERATION_SITES:\n{}",
        violations.join("\n")
    );
}

/// The audited-site fragments must actually exist — a refactor that
/// removes or rewords one should prune the allow-list, not leave dead
/// grants behind.
#[test]
fn audited_sites_still_exist() {
    let sources = scanned_sources();
    for &(file, frag) in AUDITED_ITERATION_SITES {
        let found = sources
            .iter()
            .any(|(name, src)| name == file && src.contains(frag));
        assert!(
            found,
            "stale allow-list entry: {file} no longer contains `{frag}`"
        );
    }
}

/// The arena containers and the in-flight table are the determinism
/// backbone of the data plane: both must stay hash-free by
/// construction, not by audit.
#[test]
fn arena_modules_are_hash_free() {
    let sources = scanned_sources();
    for target in ["arena.rs", "inflight.rs"] {
        let (_, src) = sources
            .iter()
            .find(|(name, _)| name == target)
            .unwrap_or_else(|| panic!("{target} exists in soda-core"));
        for (i, line) in src.lines().enumerate() {
            let code = code_of(line);
            assert!(
                !code.contains("HashMap") && !code.contains("HashSet"),
                "{target}:{}: hash container in an arena module",
                i + 1
            );
        }
    }
}

/// The world's id-keyed hot tables must stay on the arena containers.
/// Demoting one back to a `HashMap` would re-open the hash-order
/// question this guard exists to close (and silently forfeit the dense
/// layout the xl scale tier depends on).
#[test]
fn world_hot_state_is_arena_backed() {
    let sources = scanned_sources();
    let (_, world) = sources
        .iter()
        .find(|(name, _)| name == "world.rs")
        .expect("world.rs exists");
    for field in ARENA_BACKED_FIELDS {
        assert!(
            world.contains(field),
            "world.rs hot table drifted off the arena: expected `{field}`"
        );
    }
}
