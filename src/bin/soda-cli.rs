//! `soda-cli` — drive a simulated HUP from the command line.
//!
//! ```text
//! soda-cli demo
//! soda-cli simulate [--instances N] [--dataset BYTES] [--rate RPS]
//!                   [--secs S] [--policy wrr|rr|random|least-conn]
//!                   [--seed SEED] [--no-shaping]
//! soda-cli status   (creates a service, prints a monitoring snapshot)
//! soda-cli obs FILE [--top N]
//!                   (pretty-print an observability snapshot from a
//!                    results/<exp>.json: slowest histograms by p99,
//!                    quantiles incl. p999, drop counts)
//! soda-cli experiments
//! ```

use std::process::ExitCode;

use soda::core::monitoring;
use soda::core::policy::{LeastConnections, RandomPolicy, RoundRobin, SwitchPolicy};
use soda::core::service::ServiceSpec;
use soda::core::world::{create_service_driven, SodaWorld};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PoissonGenerator;

struct SimulateArgs {
    instances: u32,
    dataset: u64,
    rate: f64,
    secs: u64,
    policy: Option<String>,
    seed: u64,
    shaping: bool,
}

impl Default for SimulateArgs {
    fn default() -> Self {
        SimulateArgs {
            instances: 3,
            dataset: 50_000,
            rate: 20.0,
            secs: 60,
            policy: None,
            seed: 1,
            shaping: true,
        }
    }
}

fn parse_simulate(args: &[String]) -> Result<SimulateArgs, String> {
    let mut out = SimulateArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--instances" => {
                out.instances = value("--instances")?
                    .parse()
                    .map_err(|e| format!("--instances: {e}"))?
            }
            "--dataset" => {
                out.dataset = value("--dataset")?
                    .parse()
                    .map_err(|e| format!("--dataset: {e}"))?
            }
            "--rate" => {
                out.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--secs" => {
                out.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--policy" => out.policy = Some(value("--policy")?),
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--no-shaping" => out.shaping = false,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(out)
}

fn make_policy(name: &str, seed: u64) -> Result<Box<dyn SwitchPolicy>, String> {
    match name {
        "rr" => Ok(Box::new(RoundRobin::new())),
        "random" => Ok(Box::new(RandomPolicy::new(seed))),
        "least-conn" => Ok(Box::new(LeastConnections::new())),
        "wrr" => Err("wrr is the default; omit --policy".into()),
        other => Err(format!("unknown policy {other:?} (rr|random|least-conn)")),
    }
}

fn web_spec(instances: u32) -> ServiceSpec {
    ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

fn cmd_simulate(a: SimulateArgs) -> Result<(), String> {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), a.seed);
    engine.state_mut().shaping_enforced = a.shaping;
    let svc = create_service_driven(&mut engine, web_spec(a.instances), "cli")
        .map_err(|e| format!("creation failed: {e}"))?;
    engine.run_until(SimTime::from_secs(180));
    if engine.state().creations.is_empty() {
        return Err("creation did not complete within 180 s".into());
    }
    let created = engine.state().creations[0].clone();
    println!(
        "created {} node(s) in {} (download + bootstrap)",
        created.reply.nodes.len(),
        created.reply.creation_time
    );
    if let Some(name) = &a.policy {
        let p = make_policy(name, a.seed)?;
        engine
            .state_mut()
            .master
            .switch_mut(svc)
            .ok_or("no switch")?
            .replace_policy(p);
    }
    let t0 = engine.now();
    PoissonGenerator {
        service: svc,
        dataset_bytes: a.dataset,
        rate_rps: a.rate,
        start: t0,
        end: t0 + SimDuration::from_secs(a.secs),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(a.secs + 300));
    let w = engine.state();
    let sw = w.master.switch(svc).ok_or("no switch")?;
    println!(
        "policy {} served {:?} requests (dropped {})",
        sw.policy_name(),
        sw.served_counts(),
        w.dropped
    );
    println!(
        "mean response per node: {:?} s",
        sw.mean_responses()
            .iter()
            .map(|m| format!("{m:.4}"))
            .collect::<Vec<_>>()
    );
    println!("invoice: {:.4} units", w.agent.invoice("cli", engine.now()));
    Ok(())
}

fn cmd_status() -> Result<(), String> {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 1);
    let svc = create_service_driven(&mut engine, web_spec(3), "cli")
        .map_err(|e| format!("creation failed: {e}"))?;
    engine.run_until(SimTime::from_secs(120));
    let w = engine.state();
    let status =
        monitoring::snapshot(&w.master, &w.daemons, svc, engine.now()).ok_or("snapshot failed")?;
    println!("service {} at t={}", status.service, status.taken_at);
    println!("healthy: {:.0}%", status.healthy_fraction * 100.0);
    for n in &status.nodes {
        println!(
            "  {} on {} ip {} cap {}M state {:?} procs {}",
            n.vsn,
            n.host,
            n.ip.map(|i| i.to_string()).unwrap_or_else(|| "-".into()),
            n.capacity,
            n.state,
            n.process_count
        );
    }
    Ok(())
}

/// One histogram pulled out of a results JSON, wherever it was nested.
struct HistEntry {
    name: String,
    labels: String,
    count: u64,
    mean_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
}

/// Recursively collect metric samples and drop counters from any
/// results JSON shape — a bare registry snapshot array, an object with
/// an embedded `metrics` key, or an experiment report that carries
/// numeric `dropped`/`*_dropped` fields of its own.
fn collect_obs(
    value: &serde_json::Value,
    path: &str,
    hists: &mut Vec<HistEntry>,
    drops: &mut Vec<(String, u64)>,
) {
    use serde_json::Value;
    match value {
        Value::Object(fields) => {
            let name = value.get("name").and_then(Value::as_str);
            if let (Some(name), Some(h)) = (name, value.get("histogram")) {
                let labels = match value.get("labels") {
                    Some(Value::Object(ls)) if !ls.is_empty() => {
                        let parts: Vec<String> = ls
                            .iter()
                            .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
                            .collect();
                        format!("{{{}}}", parts.join(","))
                    }
                    _ => String::new(),
                };
                let g = |key: &str| h.get(key).and_then(Value::as_u64).unwrap_or(0);
                hists.push(HistEntry {
                    name: name.to_string(),
                    labels,
                    count: g("count"),
                    mean_ns: h.get("mean").and_then(Value::as_f64).unwrap_or(0.0),
                    p50_ns: g("p50"),
                    p99_ns: g("p99"),
                    p999_ns: g("p999"),
                    max_ns: g("max"),
                });
            }
            if let (Some(name), Some(v)) = (name, value.get("counter").and_then(Value::as_u64)) {
                if name.contains("drop") {
                    drops.push((name.to_string(), v));
                }
            }
            for (k, v) in fields {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                // Experiment reports carry their own drop tallies as
                // plain numeric fields (`dropped`, `events_dropped`, …).
                if k.contains("drop") {
                    if let Some(n) = v.as_u64() {
                        drops.push((sub.clone(), n));
                    }
                }
                collect_obs(v, &sub, hists, drops);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                collect_obs(v, &format!("{path}[{i}]"), hists, drops);
            }
        }
        _ => {}
    }
}

fn cmd_obs(args: &[String]) -> Result<(), String> {
    let mut file: Option<&String> = None;
    let mut top: usize = 10;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?
            }
            _ if file.is_none() => file = Some(a),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = file.ok_or("obs needs a results JSON path (e.g. results/exp_chaos_soak.json)")?;
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&body).map_err(|e| format!("{path}: parse error: {e}"))?;

    let mut hists = Vec::new();
    let mut drops = Vec::new();
    collect_obs(&value, "", &mut hists, &mut drops);

    if hists.is_empty() && drops.is_empty() {
        println!("{path}: no histograms or drop counters found");
        return Ok(());
    }

    if !hists.is_empty() {
        hists.sort_by(|a, b| b.p99_ns.cmp(&a.p99_ns).then(a.name.cmp(&b.name)));
        println!(
            "== {path} — slowest {} histograms by p99 ==",
            top.min(hists.len())
        );
        println!(
            "{:<36} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean ms", "p50 ms", "p99 ms", "p999 ms", "max ms"
        );
        let ms = |ns: u64| ns as f64 / 1e6;
        for h in hists.iter().take(top) {
            println!(
                "{:<36} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                format!("{}{}", h.name, h.labels),
                h.count,
                h.mean_ns / 1e6,
                ms(h.p50_ns),
                ms(h.p99_ns),
                ms(h.p999_ns),
                ms(h.max_ns),
            );
        }
    }

    if !drops.is_empty() {
        println!("\n== drop counts ==");
        for (name, n) in &drops {
            println!("{name:<48} {n}");
        }
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    println!("== SODA demo: create → serve → snapshot ==");
    cmd_simulate(SimulateArgs::default())?;
    println!();
    cmd_status()
}

fn cmd_experiments() {
    println!("experiment binaries (run with `cargo run --release -p soda-bench --bin <name>`):");
    for (bin, what) in [
        ("exp_table2_bootstrap", "Table 2 — bootstrap times"),
        ("exp_table3_config", "Table 3 — service configuration file"),
        (
            "exp_table4_syscalls",
            "Table 4 — syscall slow-down (+ skas ablation)",
        ),
        ("exp_fig3_consoles", "Figure 3 — co-existing guest consoles"),
        ("exp_fig4_loadbalance", "Figure 4 — WRR 2:1 load balancing"),
        (
            "exp_fig5_cpu_isolation",
            "Figure 5 — CPU isolation (+ lottery ablation)",
        ),
        (
            "exp_fig6_slowdown",
            "Figure 6 — application-level slow-down",
        ),
        ("exp_download", "§4.3 — download linearity"),
        ("exp_attack_isolation", "§5 — attack isolation"),
        ("exp_ddos", "X-DDOS — switch flood isolation violation"),
        ("exp_resizing", "X-RSZ — service resizing"),
        ("exp_placement", "X-PLC — placement ablation"),
        ("exp_inflation", "X-INFL — slow-down inflation sweep"),
        ("exp_federation", "X-FED — wide-area federation"),
        ("exp_migration", "X-MIG — node migration"),
        ("exp_host_failure", "X-HOST — host failure + failover"),
        ("exp_usage_billing", "X-BILL — reservation vs usage billing"),
    ] {
        println!("  {bin:<24} {what}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("demo", &args[..]),
    };
    let result = match cmd {
        "demo" => cmd_demo(),
        "simulate" => parse_simulate(rest).and_then(cmd_simulate),
        "status" => cmd_status(),
        "obs" => cmd_obs(rest),
        "experiments" => {
            cmd_experiments();
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!(
                "usage: soda-cli [demo|simulate|status|obs|experiments]\n\
                 simulate flags: --instances N --dataset BYTES --rate RPS --secs S\n\
                 \t--policy rr|random|least-conn --seed SEED --no-shaping\n\
                 obs: soda-cli obs results/<exp>.json [--top N]"
            );
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("soda-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
