//! `soda-cli` — drive a simulated HUP from the command line.
//!
//! ```text
//! soda-cli demo
//! soda-cli simulate [--instances N] [--dataset BYTES] [--rate RPS]
//!                   [--secs S] [--policy wrr|rr|random|least-conn]
//!                   [--seed SEED] [--no-shaping]
//! soda-cli status   (creates a service, prints a monitoring snapshot)
//! soda-cli experiments
//! ```

use std::process::ExitCode;

use soda::core::monitoring;
use soda::core::policy::{LeastConnections, RandomPolicy, RoundRobin, SwitchPolicy};
use soda::core::service::ServiceSpec;
use soda::core::world::{create_service_driven, SodaWorld};
use soda::hostos::resources::ResourceVector;
use soda::sim::{Engine, SimDuration, SimTime};
use soda::vmm::rootfs::RootFsCatalog;
use soda::vmm::sysservices::StartupClass;
use soda::workload::httpgen::PoissonGenerator;

struct SimulateArgs {
    instances: u32,
    dataset: u64,
    rate: f64,
    secs: u64,
    policy: Option<String>,
    seed: u64,
    shaping: bool,
}

impl Default for SimulateArgs {
    fn default() -> Self {
        SimulateArgs {
            instances: 3,
            dataset: 50_000,
            rate: 20.0,
            secs: 60,
            policy: None,
            seed: 1,
            shaping: true,
        }
    }
}

fn parse_simulate(args: &[String]) -> Result<SimulateArgs, String> {
    let mut out = SimulateArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--instances" => {
                out.instances = value("--instances")?
                    .parse()
                    .map_err(|e| format!("--instances: {e}"))?
            }
            "--dataset" => {
                out.dataset = value("--dataset")?
                    .parse()
                    .map_err(|e| format!("--dataset: {e}"))?
            }
            "--rate" => {
                out.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--secs" => {
                out.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--policy" => out.policy = Some(value("--policy")?),
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--no-shaping" => out.shaping = false,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(out)
}

fn make_policy(name: &str, seed: u64) -> Result<Box<dyn SwitchPolicy>, String> {
    match name {
        "rr" => Ok(Box::new(RoundRobin::new())),
        "random" => Ok(Box::new(RandomPolicy::new(seed))),
        "least-conn" => Ok(Box::new(LeastConnections::new())),
        "wrr" => Err("wrr is the default; omit --policy".into()),
        other => Err(format!("unknown policy {other:?} (rr|random|least-conn)")),
    }
}

fn web_spec(instances: u32) -> ServiceSpec {
    ServiceSpec {
        name: "web".into(),
        image: RootFsCatalog::new().base_1_0(),
        required_services: vec!["network", "syslogd"],
        app_class: StartupClass::Light,
        instances,
        machine: ResourceVector::TABLE1_EXAMPLE,
        port: 8080,
    }
}

fn cmd_simulate(a: SimulateArgs) -> Result<(), String> {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), a.seed);
    engine.state_mut().shaping_enforced = a.shaping;
    let svc = create_service_driven(&mut engine, web_spec(a.instances), "cli")
        .map_err(|e| format!("creation failed: {e}"))?;
    engine.run_until(SimTime::from_secs(180));
    if engine.state().creations.is_empty() {
        return Err("creation did not complete within 180 s".into());
    }
    let created = engine.state().creations[0].clone();
    println!(
        "created {} node(s) in {} (download + bootstrap)",
        created.reply.nodes.len(),
        created.reply.creation_time
    );
    if let Some(name) = &a.policy {
        let p = make_policy(name, a.seed)?;
        engine
            .state_mut()
            .master
            .switch_mut(svc)
            .ok_or("no switch")?
            .replace_policy(p);
    }
    let t0 = engine.now();
    PoissonGenerator {
        service: svc,
        dataset_bytes: a.dataset,
        rate_rps: a.rate,
        start: t0,
        end: t0 + SimDuration::from_secs(a.secs),
    }
    .start(&mut engine);
    engine.run_until(t0 + SimDuration::from_secs(a.secs + 300));
    let w = engine.state();
    let sw = w.master.switch(svc).ok_or("no switch")?;
    println!(
        "policy {} served {:?} requests (dropped {})",
        sw.policy_name(),
        sw.served_counts(),
        w.dropped
    );
    println!(
        "mean response per node: {:?} s",
        sw.mean_responses()
            .iter()
            .map(|m| format!("{m:.4}"))
            .collect::<Vec<_>>()
    );
    println!("invoice: {:.4} units", w.agent.invoice("cli", engine.now()));
    Ok(())
}

fn cmd_status() -> Result<(), String> {
    let mut engine = Engine::with_seed(SodaWorld::testbed(), 1);
    let svc = create_service_driven(&mut engine, web_spec(3), "cli")
        .map_err(|e| format!("creation failed: {e}"))?;
    engine.run_until(SimTime::from_secs(120));
    let w = engine.state();
    let status =
        monitoring::snapshot(&w.master, &w.daemons, svc, engine.now()).ok_or("snapshot failed")?;
    println!("service {} at t={}", status.service, status.taken_at);
    println!("healthy: {:.0}%", status.healthy_fraction * 100.0);
    for n in &status.nodes {
        println!(
            "  {} on {} ip {} cap {}M state {:?} procs {}",
            n.vsn,
            n.host,
            n.ip.map(|i| i.to_string()).unwrap_or_else(|| "-".into()),
            n.capacity,
            n.state,
            n.process_count
        );
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    println!("== SODA demo: create → serve → snapshot ==");
    cmd_simulate(SimulateArgs::default())?;
    println!();
    cmd_status()
}

fn cmd_experiments() {
    println!("experiment binaries (run with `cargo run --release -p soda-bench --bin <name>`):");
    for (bin, what) in [
        ("exp_table2_bootstrap", "Table 2 — bootstrap times"),
        ("exp_table3_config", "Table 3 — service configuration file"),
        (
            "exp_table4_syscalls",
            "Table 4 — syscall slow-down (+ skas ablation)",
        ),
        ("exp_fig3_consoles", "Figure 3 — co-existing guest consoles"),
        ("exp_fig4_loadbalance", "Figure 4 — WRR 2:1 load balancing"),
        (
            "exp_fig5_cpu_isolation",
            "Figure 5 — CPU isolation (+ lottery ablation)",
        ),
        (
            "exp_fig6_slowdown",
            "Figure 6 — application-level slow-down",
        ),
        ("exp_download", "§4.3 — download linearity"),
        ("exp_attack_isolation", "§5 — attack isolation"),
        ("exp_ddos", "X-DDOS — switch flood isolation violation"),
        ("exp_resizing", "X-RSZ — service resizing"),
        ("exp_placement", "X-PLC — placement ablation"),
        ("exp_inflation", "X-INFL — slow-down inflation sweep"),
        ("exp_federation", "X-FED — wide-area federation"),
        ("exp_migration", "X-MIG — node migration"),
        ("exp_host_failure", "X-HOST — host failure + failover"),
        ("exp_usage_billing", "X-BILL — reservation vs usage billing"),
    ] {
        println!("  {bin:<24} {what}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("demo", &args[..]),
    };
    let result = match cmd {
        "demo" => cmd_demo(),
        "simulate" => parse_simulate(rest).and_then(cmd_simulate),
        "status" => cmd_status(),
        "experiments" => {
            cmd_experiments();
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!(
                "usage: soda-cli [demo|simulate|status|experiments]\n\
                 simulate flags: --instances N --dataset BYTES --rate RPS --secs S\n\
                 \t--policy rr|random|least-conn --seed SEED --no-shaping"
            );
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("soda-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
