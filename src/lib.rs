//! # soda
//!
//! Facade crate for the SODA reproduction (Jiang & Xu, *SODA: a
//! Service-On-Demand Architecture for Application Service Hosting
//! Utility Platforms*, HPDC 2003).
//!
//! Re-exports every workspace crate under one roof:
//!
//! * [`sim`] — deterministic discrete-event engine, RNG, metrics.
//! * [`hostos`] — host-OS model: schedulers, syscalls, shaper, ledger.
//! * [`net`] — IP pools, bridge, proxy, flow-level links, HTTP sizing.
//! * [`vmm`] — UML guest model: rootfs tailoring, bootstrap, syscall
//!   interception, VSN state machine, isolation.
//! * [`hup`] — HUP hosts and the per-host SODA Daemon.
//! * [`core`] — the SODA Agent, Master, service switch, policies,
//!   placement, billing, federation, and the composed [`core::world`].
//! * [`workload`] — siege-like generators, Figure 5 loads, attacks.
//!
//! ## Quickstart
//!
//! ```
//! use soda::core::service::ServiceSpec;
//! use soda::core::world::{create_service_driven, SodaWorld};
//! use soda::hostos::resources::ResourceVector;
//! use soda::sim::{Engine, SimTime};
//! use soda::vmm::rootfs::RootFsCatalog;
//! use soda::vmm::sysservices::StartupClass;
//!
//! // The paper's two-host testbed on a 100 Mbps LAN.
//! let mut engine = Engine::new(SodaWorld::testbed());
//!
//! // An ASP asks for <3, M>: three machine instances of Table 1's M.
//! let spec = ServiceSpec {
//!     name: "web".into(),
//!     image: RootFsCatalog::new().base_1_0(),
//!     required_services: vec!["network", "syslogd"],
//!     app_class: StartupClass::Light,
//!     instances: 3,
//!     machine: ResourceVector::TABLE1_EXAMPLE,
//!     port: 8080,
//! };
//! let service = create_service_driven(&mut engine, spec, "webco").unwrap();
//!
//! // Let the image download and the nodes bootstrap.
//! engine.run_until(SimTime::from_secs(120));
//! let world = engine.state();
//! assert_eq!(world.creations.len(), 1);
//! // Figure 2's layout: 2 M on seattle, 1 M on tacoma.
//! let nodes = &world.creations[0].reply.nodes;
//! assert_eq!(nodes.len(), 2);
//! assert_eq!(nodes[0].capacity, 2);
//! assert_eq!(nodes[1].capacity, 1);
//! let _ = service;
//! ```

pub use soda_core as core;
pub use soda_hostos as hostos;
pub use soda_hup as hup;
pub use soda_net as net;
pub use soda_sim as sim;
pub use soda_vmm as vmm;
pub use soda_workload as workload;
