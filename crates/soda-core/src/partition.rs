//! Partitionable services — §3.5 limitation 3.
//!
//! "Currently, SODA only supports fully replicated services, i.e. the
//! same service image is mapped to every virtual service node. However,
//! a more flexible service image mapping is desirable … for example, a
//! partitionable service \[25\] where different service components are
//! mapped to different virtual service nodes."
//!
//! This extension composes the existing Master machinery: a partitioned
//! service is a named set of *components*, each with its **own image**
//! and its own `<n, M>`; each component is created as a service of its
//! own (own nodes, own switch), and the partition object routes by
//! component name. Creation is atomic: if any component fails admission,
//! the ones already created are rolled back.

use std::fmt;

use soda_hup::daemon::SodaDaemon;
use soda_sim::SimTime;
use soda_vmm::vsn::VsnId;

use crate::error::SodaError;
use crate::master::SodaMaster;
use crate::service::{ServiceId, ServiceSpec};

/// Identifier of a partitioned service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PartitionId(pub u64);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part-{}", self.0)
    }
}

/// A partitioned service's specification: an ordered list of components,
/// each a full [`ServiceSpec`] (own image, own `<n, M>`, own port).
#[derive(Clone, Debug)]
pub struct PartitionedSpec {
    /// Partition name.
    pub name: String,
    /// The components, e.g. `web` / `app` / `db`.
    pub components: Vec<ServiceSpec>,
}

/// A created partitioned service.
#[derive(Clone, Debug)]
pub struct PartitionedService {
    /// Partition id.
    pub id: PartitionId,
    /// Partition name.
    pub name: String,
    /// `(component name, underlying service)` in spec order.
    pub components: Vec<(String, ServiceId)>,
}

impl PartitionedService {
    /// The underlying service of a component.
    pub fn component(&self, name: &str) -> Option<ServiceId> {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }
}

/// Create every component, atomically: on the first failure all
/// previously created components are torn down and the error returned.
pub fn create_partitioned_now(
    master: &mut SodaMaster,
    spec: &PartitionedSpec,
    asp: &str,
    daemons: &mut [SodaDaemon],
    now: SimTime,
    id: PartitionId,
) -> Result<PartitionedService, SodaError> {
    if spec.components.is_empty() {
        return Err(SodaError::BadRequest(
            "partition needs at least one component".into(),
        ));
    }
    let mut created: Vec<(String, ServiceId)> = Vec::with_capacity(spec.components.len());
    for comp in &spec.components {
        match master.create_service_now(comp.clone(), asp, daemons, now) {
            Ok(reply) => created.push((comp.name.clone(), reply.service)),
            Err(e) => {
                // Roll back what exists so far.
                for (_, svc) in created {
                    let _ = master.teardown(svc, daemons);
                }
                return Err(e);
            }
        }
    }
    Ok(PartitionedService {
        id,
        name: spec.name.clone(),
        components: created,
    })
}

/// Tear the whole partition down.
pub fn teardown_partitioned(
    master: &mut SodaMaster,
    partition: &PartitionedService,
    daemons: &mut [SodaDaemon],
) -> Result<(), SodaError> {
    for (_, svc) in &partition.components {
        master.teardown(*svc, daemons)?;
    }
    Ok(())
}

/// Route one request to a named component's switch; returns the backend
/// VSN chosen, for completion bookkeeping by the caller (stable across
/// concurrent backend removals, unlike an index).
pub fn route_component(
    master: &mut SodaMaster,
    partition: &PartitionedService,
    component: &str,
    now: SimTime,
) -> Option<(ServiceId, VsnId)> {
    let svc = partition.component(component)?;
    let sw = master.switch_mut(svc)?;
    let idx = sw.route(now)?;
    Some((svc, sw.backends()[idx].vsn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_hostos::resources::ResourceVector;
    use soda_hup::host::{HostId, HupHost};
    use soda_net::pool::IpPool;
    use soda_sim::SimDuration;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn daemons() -> Vec<SodaDaemon> {
        vec![
            SodaDaemon::new(HupHost::seattle(
                HostId(1),
                IpPool::new("10.0.0.0".parse().unwrap(), 8),
            )),
            SodaDaemon::new(HupHost::tacoma(
                HostId(2),
                IpPool::new("10.0.1.0".parse().unwrap(), 8),
            )),
        ]
    }

    fn three_tier() -> PartitionedSpec {
        let c = RootFsCatalog::new();
        let m = ResourceVector::TABLE1_EXAMPLE;
        PartitionedSpec {
            name: "shop".into(),
            components: vec![
                ServiceSpec {
                    name: "web".into(),
                    image: c.base_1_0(),
                    required_services: vec!["network", "syslogd"],
                    app_class: StartupClass::Light,
                    instances: 2,
                    machine: m,
                    port: 80,
                },
                ServiceSpec {
                    name: "app".into(),
                    image: c.custom(
                        "app_fs",
                        25_000_000,
                        10_000_000,
                        &["network", "syslogd"],
                        false,
                    ),
                    required_services: vec!["network", "syslogd"],
                    app_class: StartupClass::Heavy,
                    instances: 1,
                    machine: m,
                    port: 9000,
                },
                ServiceSpec {
                    name: "db".into(),
                    image: c.custom(
                        "db_fs",
                        40_000_000,
                        200_000_000,
                        &["network", "syslogd", "mysqld"],
                        false,
                    ),
                    required_services: vec!["network", "syslogd", "mysqld"],
                    app_class: StartupClass::Heavy,
                    instances: 1,
                    machine: m,
                    port: 3306,
                },
            ],
        }
    }

    #[test]
    fn three_tier_creation_maps_different_images() {
        let mut master = SodaMaster::new();
        let mut ds = daemons();
        let part = create_partitioned_now(
            &mut master,
            &three_tier(),
            "shopco",
            &mut ds,
            SimTime::ZERO,
            PartitionId(1),
        )
        .unwrap();
        assert_eq!(part.components.len(), 3);
        // Each component has its own service, its own switch, its own
        // image.
        let web = part.component("web").unwrap();
        let db = part.component("db").unwrap();
        assert_ne!(web, db);
        assert!(part.component("cache").is_none());
        assert_eq!(
            master.service(web).unwrap().spec.image.name,
            "rootfs_base_1.0"
        );
        assert_eq!(master.service(db).unwrap().spec.image.name, "db_fs");
        assert_eq!(master.switch(web).unwrap().config().total_capacity(), 2);
        assert_eq!(master.switch(db).unwrap().config().total_capacity(), 1);
        // Total VSNs across the HUP: web(2 nodes or 1) + app(1) + db(1).
        let total: usize = ds.iter().map(|d| d.vsn_count()).sum();
        assert!(total >= 3);
    }

    #[test]
    fn components_route_independently() {
        let mut master = SodaMaster::new();
        let mut ds = daemons();
        let part = create_partitioned_now(
            &mut master,
            &three_tier(),
            "shopco",
            &mut ds,
            SimTime::ZERO,
            PartitionId(1),
        )
        .unwrap();
        // A request path: web → app → db, each hop through its own
        // switch.
        for tier in ["web", "app", "db"] {
            let (svc, vsn) = route_component(&mut master, &part, tier, SimTime::ZERO).unwrap();
            master.switch_mut(svc).unwrap().complete(
                vsn,
                SimDuration::from_millis(2),
                SimTime::ZERO,
            );
        }
        for tier in ["web", "app", "db"] {
            let svc = part.component(tier).unwrap();
            let served: u64 = master.switch(svc).unwrap().served_counts().iter().sum();
            assert_eq!(served, 1, "{tier}");
        }
        assert!(route_component(&mut master, &part, "nope", SimTime::ZERO).is_none());
    }

    #[test]
    fn failed_component_rolls_back_partition() {
        let mut master = SodaMaster::new();
        let mut ds = daemons();
        let baseline: Vec<_> = ds.iter().map(|d| d.report_resources()).collect();
        let mut spec = three_tier();
        // Make the db tier impossible.
        spec.components[2].instances = 50;
        let err = create_partitioned_now(
            &mut master,
            &spec,
            "shopco",
            &mut ds,
            SimTime::ZERO,
            PartitionId(1),
        )
        .unwrap_err();
        assert!(matches!(err, SodaError::AdmissionRejected { .. }));
        // Everything rolled back.
        let after: Vec<_> = ds.iter().map(|d| d.report_resources()).collect();
        assert_eq!(after, baseline);
        let total: usize = ds.iter().map(|d| d.vsn_count()).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn teardown_releases_all_components() {
        let mut master = SodaMaster::new();
        let mut ds = daemons();
        let baseline: Vec<_> = ds.iter().map(|d| d.report_resources()).collect();
        let part = create_partitioned_now(
            &mut master,
            &three_tier(),
            "shopco",
            &mut ds,
            SimTime::ZERO,
            PartitionId(1),
        )
        .unwrap();
        teardown_partitioned(&mut master, &part, &mut ds).unwrap();
        let after: Vec<_> = ds.iter().map(|d| d.report_resources()).collect();
        assert_eq!(after, baseline);
    }

    #[test]
    fn empty_partition_rejected() {
        let mut master = SodaMaster::new();
        let mut ds = daemons();
        let spec = PartitionedSpec {
            name: "x".into(),
            components: vec![],
        };
        assert!(matches!(
            create_partitioned_now(
                &mut master,
                &spec,
                "a",
                &mut ds,
                SimTime::ZERO,
                PartitionId(1)
            ),
            Err(SodaError::BadRequest(_))
        ));
    }
}
