//! Slice placement — mapping `<n, M>` onto HUP hosts.
//!
//! §3.2: "The SODA Master maps the service resource requirement `<n, M>`
//! to `n'` (`n' ≤ n`) virtual service nodes. Our current implementation
//! assumes that (1) service S is fully replicated in each virtual
//! service node and (2) the minimum granularity of each virtual service
//! node is one machine instance M — the capacity of one virtual service
//! node is either one M or a multiple of M."
//!
//! A plan therefore assigns each chosen host at most one node, with an
//! integer number of instances; the node's slice is `instances × M`
//! (no resource aggregation, per footnote 2). Three classic policies are
//! provided; the Master defaults to [`WorstFit`] (spread for balance),
//! which reproduces the paper's Figure 2 layout — 2 M on *seattle*,
//! 1 M on *tacoma* for `<3, M>`.

use soda_hostos::resources::ResourceVector;
use soda_hup::host::HostId;

/// One planned node: `instances × M` on `host`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodePlan {
    /// Target host.
    pub host: HostId,
    /// Machine instances mapped to this node (≥ 1).
    pub instances: u32,
}

/// A placement algorithm.
pub trait PlacementPolicy: Send {
    /// Place `n` instances of (already slow-down-inflated) `m` on
    /// `hosts` (id + current availability, in id order). Returns `None`
    /// if the demand cannot be fully placed — admission then fails.
    fn place(
        &self,
        n: u32,
        m: &ResourceVector,
        hosts: &[(HostId, ResourceVector)],
    ) -> Option<Vec<NodePlan>>;

    /// Policy name for experiment output.
    fn name(&self) -> &'static str;

    /// For one-instance-at-a-time headroom policies, the direction of
    /// the headroom preference: `Some(true)` = most headroom first
    /// (worst-fit), `Some(false)` = least headroom first (best-fit).
    /// `None` (the default) means the policy is not expressible as a
    /// headroom scan; the Master then cannot serve it from its
    /// incremental admission index and falls back to a full
    /// [`PlacementPolicy::place`] call per admission.
    fn headroom_preference(&self) -> Option<bool> {
        None
    }
}

fn finish(mut counts: Vec<(HostId, u32)>) -> Vec<NodePlan> {
    counts.retain(|&(_, k)| k > 0);
    counts
        .into_iter()
        .map(|(host, instances)| NodePlan { host, instances })
        .collect()
}

/// First-fit: walk hosts in id order, packing as many instances as fit
/// before moving on. Minimises the number of nodes (and hence switch
/// fan-out) but concentrates load.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn place(
        &self,
        n: u32,
        m: &ResourceVector,
        hosts: &[(HostId, ResourceVector)],
    ) -> Option<Vec<NodePlan>> {
        let mut remaining = n;
        let mut counts = Vec::new();
        for &(id, avail) in hosts {
            if remaining == 0 {
                break;
            }
            let fit = avail.instances_of(m).min(remaining);
            if fit > 0 {
                counts.push((id, fit));
                remaining -= fit;
            }
        }
        (remaining == 0).then(|| finish(counts))
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Best-fit: place instances one at a time on the host with the *least*
/// remaining headroom that still fits. Preserves large holes for large
/// future requests.
#[derive(Clone, Copy, Debug, Default)]
pub struct BestFit;

/// Worst-fit: place instances one at a time on the host with the *most*
/// remaining headroom. Spreads load — the Master's default.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorstFit;

/// Best/worst-fit placement over a headroom-ordered index instead of a
/// per-instance linear scan: O((H + n) log H) where the naive loop is
/// O(n·H). The index is a `BTreeSet<(headroom, host position)>` holding
/// only hosts that still fit ≥ 1 instance; placing an instance updates
/// exactly one entry (only the chosen host's headroom changes).
///
/// Tie-breaking matches the naive scan bit-for-bit — the lowest host
/// *position* among equal-headroom hosts wins, for both directions —
/// which `oracle::one_at_a_time_naive` and the differential proptests
/// below pin down.
fn one_at_a_time(
    n: u32,
    m: &ResourceVector,
    hosts: &[(HostId, ResourceVector)],
    prefer_most_headroom: bool,
) -> Option<Vec<NodePlan>> {
    let mut avail: Vec<(HostId, ResourceVector)> = hosts.to_vec();
    let mut counts: Vec<(HostId, u32)> = hosts.iter().map(|&(id, _)| (id, 0)).collect();
    // Headroom measured in whole instances of m.
    let mut index: std::collections::BTreeSet<(u32, usize)> = avail
        .iter()
        .enumerate()
        .filter_map(|(i, &(_, a))| {
            let k = a.instances_of(m);
            (k > 0).then_some((k, i))
        })
        .collect();
    for _ in 0..n {
        let &(k, i) = if prefer_most_headroom {
            // Most headroom, lowest position on ties: the max headroom
            // is at the back of the index, but equal-headroom entries
            // sort by position, so take the *first* entry at that key.
            let &(kmax, _) = index.last()?;
            index
                .range((kmax, 0)..)
                .next()
                .expect("kmax came from the index")
        } else {
            // Least headroom, lowest position on ties: simply the front.
            index.first()?
        };
        index.remove(&(k, i));
        avail[i].1 -= *m;
        counts[i].1 += 1;
        let k_next = avail[i].1.instances_of(m);
        if k_next > 0 {
            index.insert((k_next, i));
        }
    }
    Some(finish(counts))
}

/// Naive reference implementations, kept as differential-test oracles.
/// Not part of the API; exercised by `tests/scale_oracle.rs`.
#[doc(hidden)]
pub mod oracle {
    use super::{finish, HostId, NodePlan, ResourceVector};

    /// The original O(n·H) linear-scan best/worst-fit the ordered-index
    /// implementation must match decision-for-decision.
    pub fn one_at_a_time_naive(
        n: u32,
        m: &ResourceVector,
        hosts: &[(HostId, ResourceVector)],
        prefer_most_headroom: bool,
    ) -> Option<Vec<NodePlan>> {
        let mut avail: Vec<(HostId, ResourceVector)> = hosts.to_vec();
        let mut counts: Vec<(HostId, u32)> = hosts.iter().map(|&(id, _)| (id, 0)).collect();
        for _ in 0..n {
            let mut best: Option<(usize, u32)> = None;
            for (i, &(_, a)) in avail.iter().enumerate() {
                let k = a.instances_of(m);
                if k == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, bk)) => {
                        if prefer_most_headroom {
                            k > bk
                        } else {
                            k < bk
                        }
                    }
                };
                if better {
                    best = Some((i, k));
                }
            }
            let (i, _) = best?;
            avail[i].1 -= *m;
            counts[i].1 += 1;
        }
        Some(finish(counts))
    }
}

impl PlacementPolicy for BestFit {
    fn place(
        &self,
        n: u32,
        m: &ResourceVector,
        hosts: &[(HostId, ResourceVector)],
    ) -> Option<Vec<NodePlan>> {
        one_at_a_time(n, m, hosts, false)
    }

    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn headroom_preference(&self) -> Option<bool> {
        Some(false)
    }
}

impl PlacementPolicy for WorstFit {
    fn place(
        &self,
        n: u32,
        m: &ResourceVector,
        hosts: &[(HostId, ResourceVector)],
    ) -> Option<Vec<NodePlan>> {
        one_at_a_time(n, m, hosts, true)
    }

    fn name(&self) -> &'static str {
        "worst-fit"
    }

    fn headroom_preference(&self) -> Option<bool> {
        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m() -> ResourceVector {
        ResourceVector::new(512, 256, 1024, 10)
    }

    /// seattle/tacoma-shaped availability: seattle fits 3 M, tacoma 2 M.
    fn testbed() -> Vec<(HostId, ResourceVector)> {
        vec![
            (HostId(1), ResourceVector::new(1800, 1500, 50_000, 80)),
            (HostId(2), ResourceVector::new(1100, 600, 30_000, 60)),
        ]
    }

    #[test]
    fn worst_fit_reproduces_figure2_layout() {
        // <3, M> over seattle+tacoma → 2 M on seattle, 1 M on tacoma.
        let plan = WorstFit.place(3, &m(), &testbed()).unwrap();
        assert_eq!(
            plan,
            vec![
                NodePlan {
                    host: HostId(1),
                    instances: 2
                },
                NodePlan {
                    host: HostId(2),
                    instances: 1
                },
            ]
        );
    }

    #[test]
    fn first_fit_packs_lowest_host() {
        let plan = FirstFit.place(3, &m(), &testbed()).unwrap();
        assert_eq!(
            plan,
            vec![NodePlan {
                host: HostId(1),
                instances: 3
            }]
        );
        let plan4 = FirstFit.place(4, &m(), &testbed()).unwrap();
        assert_eq!(
            plan4,
            vec![
                NodePlan {
                    host: HostId(1),
                    instances: 3
                },
                NodePlan {
                    host: HostId(2),
                    instances: 1
                },
            ]
        );
    }

    #[test]
    fn best_fit_fills_tightest_host_first() {
        let plan = BestFit.place(2, &m(), &testbed()).unwrap();
        assert_eq!(
            plan,
            vec![NodePlan {
                host: HostId(2),
                instances: 2
            }]
        );
    }

    #[test]
    fn all_policies_fail_cleanly_when_demand_exceeds_capacity() {
        for policy in [&FirstFit as &dyn PlacementPolicy, &BestFit, &WorstFit] {
            assert!(
                policy.place(6, &m(), &testbed()).is_none(),
                "{}",
                policy.name()
            );
            assert!(policy.place(1, &m(), &[]).is_none(), "{}", policy.name());
        }
    }

    #[test]
    fn zero_instances_yields_empty_plan() {
        // n = 0 is rejected upstream by the API, but the algorithms
        // degrade gracefully.
        let plan = WorstFit.place(0, &m(), &testbed()).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn multidimensional_constraint_respected() {
        // A host with plenty of CPU but no bandwidth cannot take a node.
        let hosts = vec![
            (HostId(1), ResourceVector::new(10_000, 10_000, 100_000, 5)),
            (HostId(2), ResourceVector::new(600, 300, 2_000, 100)),
        ];
        let plan = WorstFit.place(1, &m(), &hosts).unwrap();
        assert_eq!(plan[0].host, HostId(2), "bandwidth-starved host skipped");
    }

    #[test]
    fn names() {
        assert_eq!(FirstFit.name(), "first-fit");
        assert_eq!(BestFit.name(), "best-fit");
        assert_eq!(WorstFit.name(), "worst-fit");
    }

    proptest! {
        /// Every successful plan (a) places exactly n instances, (b) has
        /// at most one node per host, and (c) never oversubscribes any
        /// host dimension.
        #[test]
        fn prop_plan_validity(
            n in 1u32..12,
            hosts in proptest::collection::vec((1u32..6, 1u32..6, 1u32..6, 1u32..6), 1..5),
            which in 0usize..3
        ) {
            let m = ResourceVector::new(512, 256, 1024, 10);
            let host_list: Vec<(HostId, ResourceVector)> = hosts
                .iter()
                .enumerate()
                .map(|(i, &(a, b, c, d))| {
                    (HostId(i as u32), ResourceVector::new(512 * a, 256 * b, 1024 * c, 10 * d))
                })
                .collect();
            let policy: &dyn PlacementPolicy = match which {
                0 => &FirstFit,
                1 => &BestFit,
                _ => &WorstFit,
            };
            if let Some(plan) = policy.place(n, &m, &host_list) {
                let total: u32 = plan.iter().map(|p| p.instances).sum();
                prop_assert_eq!(total, n);
                let mut seen = std::collections::HashSet::new();
                for node in &plan {
                    prop_assert!(node.instances >= 1);
                    prop_assert!(seen.insert(node.host), "host used twice");
                    let avail = host_list.iter().find(|&&(id, _)| id == node.host).unwrap().1;
                    prop_assert!(avail.covers(&(m * node.instances)),
                        "{:?} oversubscribed", node.host);
                }
            }
        }

        /// The three policies agree on feasibility (all succeed or all
        /// fail) for single-host pools.
        #[test]
        fn prop_single_host_feasibility(n in 1u32..10, k in 1u32..10) {
            let m = ResourceVector::new(512, 256, 1024, 10);
            let hosts = vec![(HostId(1), m * k)];
            let results: Vec<bool> = [&FirstFit as &dyn PlacementPolicy, &BestFit, &WorstFit]
                .iter()
                .map(|p| p.place(n, &m, &hosts).is_some())
                .collect();
            prop_assert!(results.iter().all(|&r| r == (n <= k)));
        }

        /// Differential oracle: the ordered-index placement and the
        /// naive linear scan make identical decisions (same hosts, same
        /// instance counts, same order) for both fit directions —
        /// including ties, zero-fit hosts, and infeasible demands.
        #[test]
        fn prop_indexed_matches_naive_scan(
            n in 0u32..16,
            hosts in proptest::collection::vec((0u32..6, 0u32..6, 0u32..6, 0u32..6), 0..8),
            prefer_most in any::<bool>()
        ) {
            let m = ResourceVector::new(512, 256, 1024, 10);
            let host_list: Vec<(HostId, ResourceVector)> = hosts
                .iter()
                .enumerate()
                .map(|(i, &(a, b, c, d))| {
                    // Duplicate ids on purpose (i/2): tie-breaking must
                    // be positional, not id-based.
                    (HostId((i / 2) as u32),
                     ResourceVector::new(512 * a, 256 * b, 1024 * c, 10 * d))
                })
                .collect();
            let fast = one_at_a_time(n, &m, &host_list, prefer_most);
            let naive = oracle::one_at_a_time_naive(n, &m, &host_list, prefer_most);
            prop_assert_eq!(fast, naive);
        }
    }
}
