//! The SODA Master.
//!
//! "SODA Master is a middleware-level entity coordinating the service
//! creation activities across the HUP. More specifically, SODA Master
//! determines the set of virtual service nodes for each service creation
//! request and coordinates the service priming process." (§2.2)
//!
//! The Master here is written *sans-IO* with respect to time: methods
//! perform all state changes immediately and return
//! [`PrimingTicket`]s whose durations the simulation driver schedules;
//! [`SodaMaster::node_ready`] is called back when a node's download +
//! bootstrap completes. `create_service_now` wraps the full cycle for
//! callers that don't need the temporal detail (unit tests, quickstart).

use std::collections::BTreeMap;

use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::{PrimingTicket, SodaDaemon};
use soda_hup::host::HostId;
use soda_hup::inventory::ResourceInventory;
use soda_sim::{Event, Labels, Obs, SimDuration, SimTime};
use soda_vmm::intercept::SlowdownFactors;
use soda_vmm::vsn::{VsnId, VsnState};

use crate::api::{CreationReply, NodeInfo};
use crate::error::SodaError;
use crate::journal::{MasterSnapshot, ServiceSnapshot};
use crate::placement::{BestFit, FirstFit, NodePlan, PlacementPolicy, WorstFit};
use crate::service::{PlacedNode, ServiceId, ServiceRecord, ServiceSpec, ServiceState};
use crate::switch::ServiceSwitch;

/// What admission hands back: the new service id plus one priming ticket
/// per placed node, for the driver to schedule.
#[derive(Debug)]
pub struct AdmissionOutcome {
    /// The admitted service.
    pub service: ServiceId,
    /// `(host, ticket)` per node.
    pub tickets: Vec<(HostId, PrimingTicket)>,
}

/// Outcome of a resize: nodes whose capacity changed in place, plus
/// tickets for any newly added nodes.
#[derive(Debug)]
pub struct ResizeOutcome {
    /// Nodes resized in place as `(vsn, new_capacity)`.
    pub resized: Vec<(VsnId, u32)>,
    /// Nodes removed.
    pub removed: Vec<VsnId>,
    /// Newly placed nodes, still priming.
    pub tickets: Vec<(HostId, PrimingTicket)>,
}

/// What a migration needs from the caller before completion: ship the
/// checkpoint, wait out the replacement's bootstrap.
#[derive(Debug)]
pub struct MigrationOutcome {
    /// The service being migrated.
    pub service: ServiceId,
    /// The node being replaced.
    pub old_vsn: VsnId,
    /// The replacement node (priming on `target`).
    pub new_vsn: VsnId,
    /// Destination host.
    pub target: HostId,
    /// The replacement's priming ticket.
    pub ticket: PrimingTicket,
    /// Bytes of guest memory image to ship source → target.
    pub checkpoint_bytes: u64,
}

/// The Master's incremental admission index: a headroom-ordered view of
/// the roster that persists *between* admissions, so the admission hot
/// path is O(plan log H) instead of rebuilding an O(H) host snapshot per
/// service (the dominant cost at 100k hosts × 500k admissions).
///
/// `avail[i]` mirrors `daemons[i].report_resources()` — positions are
/// roster positions, which is exactly the position space
/// `placement::one_at_a_time` tie-breaks on, so cached placement is
/// decision-for-decision identical to the uncached path. The index holds
/// `(instances_of(m), position)` for hosts that still fit ≥ 1 instance.
///
/// Coherence contract: the cache is only reused while nothing outside
/// `admit` has changed any host's availability. Every Master method that
/// reserves, releases or resizes a slice drops the cache, and the world
/// drops every Master's cache on host failure/repair and on direct
/// daemon teardowns ([`SodaMaster::invalidate_admission_index`]). Debug
/// builds re-verify the full mirror against the live roster on every
/// cached admission, so the test suite enforces the contract.
struct AdmissionIndex {
    /// The inflated machine slice the index was built for.
    m: ResourceVector,
    /// `(host id, availability)` mirror of the roster, by position.
    avail: Vec<(HostId, ResourceVector)>,
    /// `(whole instances of m, roster position)` for hosts with room.
    index: std::collections::BTreeSet<(u32, usize)>,
}

/// The HUP-wide coordinator.
pub struct SodaMaster {
    inventory: ResourceInventory,
    admission_index: Option<AdmissionIndex>,
    placement: Box<dyn PlacementPolicy>,
    /// Slow-down inflation applied to `M` at admission (footnote 2;
    /// default 1.5).
    pub slowdown_inflation: f64,
    services: BTreeMap<ServiceId, ServiceRecord>,
    switches: BTreeMap<ServiceId, ServiceSwitch>,
    next_service: u64,
    next_vsn: u64,
    /// First id this Master may issue (its shard lane's residue).
    id_base: u64,
    /// Distance between consecutive ids this Master issues. A sharded
    /// control plane gives cell `k` of `n` the lane `base = k + 1`,
    /// `stride = n`, so ids are globally unique without coordination
    /// and `(id - 1) % n` recovers the owning shard. The monolith keeps
    /// the default `base = stride = 1`.
    id_stride: u64,
    obs: Obs,
}

impl Default for SodaMaster {
    fn default() -> Self {
        Self::new()
    }
}

impl SodaMaster {
    /// A Master with the default worst-fit (load-spreading) placement
    /// and the paper's conservative 1.5× inflation.
    pub fn new() -> Self {
        SodaMaster {
            inventory: ResourceInventory::new(),
            admission_index: None,
            placement: Box::new(WorstFit),
            slowdown_inflation: SlowdownFactors::CONSERVATIVE.cpu,
            services: BTreeMap::new(),
            switches: BTreeMap::new(),
            next_service: 1,
            next_vsn: 1,
            id_base: 1,
            id_stride: 1,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle. Existing switches pick it up too,
    /// so `set_obs` can be called after services are already running.
    pub fn set_obs(&mut self, obs: Obs) {
        for sw in self.switches.values_mut() {
            sw.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// The Master's observability handle (disabled unless
    /// [`SodaMaster::set_obs`] was given an enabled one).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Replace the placement policy (the placement ablation experiment).
    pub fn set_placement(&mut self, p: Box<dyn PlacementPolicy>) {
        self.admission_index = None;
        self.placement = p;
    }

    /// Drop the incremental admission index. Must be called by any code
    /// that changes a host's availability behind the Master's back (host
    /// failure/repair, direct daemon teardowns); the next admission
    /// rebuilds from live daemon reports.
    pub fn invalidate_admission_index(&mut self) {
        self.admission_index = None;
    }

    /// The placement policy's name.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// `(next_service, next_vsn)` — journaled with every entry so a
    /// standby rebuilt from the log never re-issues a used id.
    pub(crate) fn id_counters(&self) -> (u64, u64) {
        (self.next_service, self.next_vsn)
    }

    /// Confine this Master to the id lane `base + k*stride` (`base >=
    /// 1`, `stride >= 1`). Must be set before the Master issues any id;
    /// calling it later would orphan already-issued ids, so it resets
    /// the counters to the lane start.
    pub fn set_id_lane(&mut self, base: u64, stride: u64) {
        self.id_base = base.max(1);
        self.id_stride = stride.max(1);
        self.next_service = self.id_base;
        self.next_vsn = self.id_base;
    }

    /// Capture the Master's durable control state (service records,
    /// id counters, placement name) under `epoch`. Switch routing
    /// tables and the resource inventory are deliberately absent: the
    /// switches survive a Master crash as separate processes, and the
    /// inventory is rebuilt from live daemon reports.
    pub fn snapshot(&self, epoch: u64) -> MasterSnapshot {
        MasterSnapshot {
            epoch,
            next_service: self.next_service,
            next_vsn: self.next_vsn,
            slowdown_inflation: self.slowdown_inflation,
            placement: self.placement.name().to_string(),
            services: self
                .services
                .values()
                .map(ServiceSnapshot::capture)
                .collect(),
        }
    }

    /// Fail-stop crash of the Master process: every record it held in
    /// memory is gone. The per-service switches are colocated but
    /// separate data-plane processes — they keep routing and are later
    /// transplanted into the standby, so they are NOT touched here.
    pub(crate) fn crash_control(&mut self) {
        self.services.clear();
        self.inventory = ResourceInventory::new();
        self.admission_index = None;
        self.next_service = self.id_base;
        self.next_vsn = self.id_base;
    }

    /// Standby rebuild from checkpoint ⊕ journal replay: install the
    /// replayed records and counters over whatever the crash left.
    /// Returns how many records were restored.
    pub(crate) fn restore_control(&mut self, snap: &MasterSnapshot) -> usize {
        self.services.clear();
        self.admission_index = None;
        let mut restored = 0;
        for s in &snap.services {
            if let Some(rec) = s.restore() {
                self.services.insert(rec.id, rec);
                restored += 1;
            }
        }
        self.next_service = snap.next_service.max(self.id_base);
        self.next_vsn = snap.next_vsn.max(self.id_base);
        self.slowdown_inflation = snap.slowdown_inflation;
        match snap.placement.as_str() {
            "first-fit" => self.placement = Box::new(FirstFit),
            "best-fit" => self.placement = Box::new(BestFit),
            "worst-fit" => self.placement = Box::new(WorstFit),
            _ => {}
        }
        restored
    }

    /// Refresh the inventory from the daemons' reports.
    pub fn collect_resources(&mut self, daemons: &[SodaDaemon], now: SimTime) {
        for d in daemons {
            self.inventory.update(d.host.id, d.report_resources(), now);
        }
    }

    /// Forget inventory entries for hosts outside `daemons`.
    ///
    /// A cell Master that previously admitted with a spilled (fleet-wide)
    /// roster would otherwise keep stale reports for foreign hosts, and a
    /// later cell-restricted placement could choose a host that is not in
    /// the daemon slice it was handed. No-op when `daemons` is the full
    /// fleet, so the monolith path is unaffected.
    pub fn prune_inventory_to(&mut self, daemons: &[SodaDaemon]) {
        // Fast path: the inventory already covers exactly this roster.
        // Rosters are contiguous ascending slices of one fleet, so a
        // matching size plus matching lowest/highest ids means matching
        // sets; skipping the rebuild keeps the steady-state
        // per-admission cost O(log H) instead of O(H log H).
        if self.inventory.len() == daemons.len()
            && self.inventory.first_host() == daemons.first().map(|d| d.host.id)
            && self.inventory.last_host() == daemons.last().map(|d| d.host.id)
        {
            return;
        }
        let keep: std::collections::BTreeSet<HostId> = daemons.iter().map(|d| d.host.id).collect();
        self.inventory.retain(|h| keep.contains(&h));
    }

    /// The per-instance slice actually reserved: `M` with CPU and
    /// bandwidth inflated for the guest-OS slow-down.
    pub fn inflated_machine(&self, m: &ResourceVector) -> ResourceVector {
        m.inflate_for_slowdown(self.slowdown_inflation)
    }

    /// Admission + placement + begin priming on every chosen daemon.
    pub fn admit(
        &mut self,
        spec: ServiceSpec,
        asp: &str,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<AdmissionOutcome, SodaError> {
        if spec.instances == 0 {
            self.obs.record(
                now,
                Event::AdmissionDecision {
                    service: 0,
                    accepted: false,
                    instances: 0,
                },
            );
            self.obs
                .counter_add("master", "admission_rejected", Labels::none(), 1);
            return Err(SodaError::BadRequest(
                "instance count n must be positive".into(),
            ));
        }
        let m_infl = self.inflated_machine(&spec.machine);
        let Some(plan) = self.place_for_admission(spec.instances, &m_infl, daemons, now) else {
            // Rejection: the cache (if any) was consumed mid-placement,
            // so drop it and report the availability sum from a fresh
            // collection — the same numbers the uncached path computes.
            self.admission_index = None;
            self.collect_resources(daemons, now);
            let available = self
                .inventory
                .hosts()
                .fold(ResourceVector::ZERO, |acc, (_, r)| acc + r.available);
            self.obs.record(
                now,
                Event::AdmissionDecision {
                    service: 0,
                    accepted: false,
                    instances: spec.instances,
                },
            );
            self.obs
                .counter_add("master", "admission_rejected", Labels::none(), 1);
            return Err(SodaError::AdmissionRejected {
                requested: m_infl * spec.instances,
                available,
            });
        };
        let service = ServiceId(self.next_service);
        self.next_service += self.id_stride;
        if self.obs.is_enabled() {
            self.obs.record(
                now,
                Event::AdmissionDecision {
                    service: service.0,
                    accepted: true,
                    instances: spec.instances,
                },
            );
            self.obs.record(
                now,
                Event::PlacementDecision {
                    service: service.0,
                    nodes: plan.len() as u32,
                },
            );
            self.obs
                .counter_add("master", "admission_accepted", Labels::none(), 1);
            // Admission + placement happen atomically in virtual time; a
            // zero-width span still counts the operation in the
            // `master.admission` histogram.
            self.obs.span_record(
                "master",
                "admission",
                Labels::one("service", service.0),
                now,
                now,
            );
        }
        let mut tickets = Vec::with_capacity(plan.len());
        let mut nodes = Vec::with_capacity(plan.len());
        for node_plan in &plan {
            let daemon = soda_hup::daemon::daemon_for_mut(daemons, node_plan.host)
                .expect("placement only chooses reported hosts");
            let vsn = VsnId(self.next_vsn);
            self.next_vsn += self.id_stride;
            let slice = m_infl * node_plan.instances;
            let ticket = match daemon.begin_priming(
                vsn,
                node_plan.instances,
                slice,
                &spec.image,
                &spec.required_services,
                spec.app_class,
                &spec.name,
                now,
            ) {
                Ok(t) => t,
                Err(e) => {
                    // Partial priming: earlier nodes of this plan hold
                    // reservations the cache already accounts for, but
                    // this node's do not match — rebuild next admission.
                    self.admission_index = None;
                    return Err(e.into());
                }
            };
            self.obs.span_enter("master", "priming", vsn.0, now);
            nodes.push(PlacedNode {
                host: node_plan.host,
                vsn,
                capacity: node_plan.instances,
            });
            tickets.push((node_plan.host, ticket));
        }
        self.services.insert(
            service,
            ServiceRecord {
                id: service,
                spec,
                asp: asp.to_string(),
                state: ServiceState::Creating,
                nodes,
                nodes_ready: 0,
            },
        );
        Ok(AdmissionOutcome { service, tickets })
    }

    /// Place `n` instances of `m_infl` for admission. Headroom policies
    /// (worst/best-fit) are served from the incremental
    /// [`AdmissionIndex`]; other policies, unsorted rosters, and rosters
    /// that disagree with the inventory fall back to the uncached
    /// collect-and-place path. `None` means the demand cannot be placed.
    fn place_for_admission(
        &mut self,
        n: u32,
        m_infl: &ResourceVector,
        daemons: &[SodaDaemon],
        now: SimTime,
    ) -> Option<Vec<NodePlan>> {
        let Some(prefer_most) = self.placement.headroom_preference() else {
            self.collect_resources(daemons, now);
            return self.place_uncached(n, m_infl);
        };
        if !self.admission_index_reusable(m_infl, daemons)
            && !self.rebuild_admission_index(m_infl, daemons, now)
        {
            return self.place_uncached(n, m_infl);
        }
        #[cfg(debug_assertions)]
        self.assert_admission_index_coherent(daemons);
        let cache = self
            .admission_index
            .as_mut()
            .expect("reused or rebuilt above");
        // The one-at-a-time loop from `placement::one_at_a_time`, run
        // against the persistent index: identical (headroom, position)
        // keys, identical tie-breaks, identical plans.
        let mut picks: BTreeMap<usize, u32> = BTreeMap::new();
        for _ in 0..n {
            let &(k, i) = if prefer_most {
                let &(kmax, _) = cache.index.last()?;
                cache
                    .index
                    .range((kmax, 0)..)
                    .next()
                    .expect("kmax came from the index")
            } else {
                cache.index.first()?
            };
            cache.index.remove(&(k, i));
            cache.avail[i].1 -= *m_infl;
            *picks.entry(i).or_insert(0) += 1;
            let k_next = cache.avail[i].1.instances_of(m_infl);
            if k_next > 0 {
                cache.index.insert((k_next, i));
            }
        }
        // Ascending-position iteration reproduces `finish`'s plan order.
        Some(
            picks
                .into_iter()
                .map(|(i, instances)| NodePlan {
                    host: cache.avail[i].0,
                    instances,
                })
                .collect(),
        )
    }

    /// The original admission placement: a fresh host snapshot from the
    /// (already collected) inventory, handed to the policy.
    fn place_uncached(&mut self, n: u32, m_infl: &ResourceVector) -> Option<Vec<NodePlan>> {
        let hosts: Vec<(HostId, ResourceVector)> = self
            .inventory
            .hosts()
            .map(|(id, r)| (id, r.available))
            .collect();
        self.placement.place(n, m_infl, &hosts)
    }

    /// Cheap O(1) test that the cached index still describes `daemons`:
    /// same machine slice, same roster shape, and an inventory covering
    /// exactly this roster — so cached and uncached placement would see
    /// the same host set. Content freshness is the invalidation
    /// contract's job ([`SodaMaster::invalidate_admission_index`]), not
    /// this check's.
    fn admission_index_reusable(&self, m_infl: &ResourceVector, daemons: &[SodaDaemon]) -> bool {
        self.admission_index.as_ref().is_some_and(|c| {
            c.m == *m_infl
                && c.avail.len() == daemons.len()
                && self.inventory.len() == daemons.len()
                && c.avail.first().map(|&(h, _)| h) == daemons.first().map(|d| d.host.id)
                && c.avail.last().map(|&(h, _)| h) == daemons.last().map(|d| d.host.id)
        })
    }

    /// Build the admission index from live daemon reports, refreshing
    /// the inventory on the way (it stays the uncached path's and the
    /// rejection report's source of truth). Returns `false` — leaving
    /// the cache empty — when the roster is not in strictly ascending
    /// host-id order or the inventory covers hosts beyond it; the caller
    /// then places uncached, honouring those extra reports exactly as
    /// before.
    fn rebuild_admission_index(
        &mut self,
        m_infl: &ResourceVector,
        daemons: &[SodaDaemon],
        now: SimTime,
    ) -> bool {
        self.admission_index = None;
        self.collect_resources(daemons, now);
        if self.inventory.len() != daemons.len()
            || !daemons.windows(2).all(|w| w[0].host.id < w[1].host.id)
        {
            return false;
        }
        let avail: Vec<(HostId, ResourceVector)> = daemons
            .iter()
            .map(|d| (d.host.id, d.report_resources()))
            .collect();
        let index = avail
            .iter()
            .enumerate()
            .filter_map(|(i, &(_, a))| {
                let k = a.instances_of(m_infl);
                (k > 0).then_some((k, i))
            })
            .collect();
        self.admission_index = Some(AdmissionIndex {
            m: *m_infl,
            avail,
            index,
        });
        true
    }

    /// Debug-build coherence check: the cached mirror must equal the
    /// live roster entry for entry — an availability change that
    /// bypassed [`SodaMaster::invalidate_admission_index`] trips this on
    /// the next admission, so the whole debug test suite enforces the
    /// invalidation contract.
    #[cfg(debug_assertions)]
    fn assert_admission_index_coherent(&self, daemons: &[SodaDaemon]) {
        let c = self.admission_index.as_ref().expect("cache present");
        assert_eq!(c.avail.len(), daemons.len());
        for (i, d) in daemons.iter().enumerate() {
            assert_eq!(c.avail[i].0, d.host.id, "roster misaligned at position {i}");
            assert_eq!(
                c.avail[i].1,
                d.report_resources(),
                "admission index stale for host {:?} — an availability mutation bypassed \
                 invalidate_admission_index",
                d.host.id
            );
            let k = c.avail[i].1.instances_of(&c.m);
            assert_eq!(
                c.index.contains(&(k, i)),
                k > 0,
                "headroom index entry wrong for position {i}"
            );
        }
    }

    /// Called when one node's download + bootstrap has completed. When
    /// the last node reports, the Master creates the service switch and
    /// the service goes Running; the returned reply is what the Agent
    /// sends to the ASP.
    pub fn node_ready(
        &mut self,
        service: ServiceId,
        vsn: VsnId,
        daemons: &mut [SodaDaemon],
        now: SimTime,
        creation_time: SimDuration,
    ) -> Result<Option<CreationReply>, SodaError> {
        let rec = self
            .services
            .get_mut(&service)
            .ok_or(SodaError::UnknownService(service))?;
        let placed = *rec.node(vsn).ok_or(SodaError::UnknownVsn(vsn))?;
        let daemon = soda_hup::daemon::daemon_for_mut(daemons, placed.host)
            .ok_or(SodaError::UnknownVsn(vsn))?;
        daemon.complete_priming(vsn, now)?;
        self.obs.span_exit("master", "priming", vsn.0, now);
        rec.nodes_ready += 1;
        if rec.nodes_ready < rec.nodes.len() {
            return Ok(None);
        }
        self.finish_creation(service, daemons, now, creation_time)
            .map(Some)
    }

    /// All surviving nodes are up: build the switch (colocated in the
    /// first node) and mark the service Running. Nodes whose daemon or
    /// IP cannot be resolved (a host died in the creation window) are
    /// skipped with a `MasterOpFailed` event instead of panicking.
    fn finish_creation(
        &mut self,
        service: ServiceId,
        daemons: &[SodaDaemon],
        now: SimTime,
        creation_time: SimDuration,
    ) -> Result<CreationReply, SodaError> {
        let rec = self
            .services
            .get_mut(&service)
            .ok_or(SodaError::UnknownService(service))?;
        let port = rec.spec.port;
        let mut infos = Vec::with_capacity(rec.nodes.len());
        let mut backends = Vec::with_capacity(rec.nodes.len());
        for n in &rec.nodes {
            let resolved = soda_hup::daemon::daemon_for(daemons, n.host)
                .and_then(|d| d.vsn(n.vsn))
                .and_then(|v| v.ip);
            let Some(ip) = resolved else {
                self.obs.record(
                    now,
                    Event::MasterOpFailed {
                        service: service.0,
                        vsn: n.vsn.0,
                        op: "switch_backend",
                    },
                );
                continue;
            };
            backends.push((n.vsn, ip, n.capacity));
            infos.push(NodeInfo {
                ip,
                port,
                capacity: n.capacity,
            });
        }
        let Some(&switch_endpoint) = infos.first() else {
            return Err(SodaError::InvalidState {
                service,
                attempted: "switch_creation",
            });
        };
        rec.state = ServiceState::Running;
        let first = backends[0].0;
        let mut switch = ServiceSwitch::new(service, first);
        switch.set_obs(self.obs.clone());
        for (vsn, ip, capacity) in backends {
            switch.add_backend(vsn, ip, port, capacity);
        }
        if self.obs.is_enabled() {
            self.obs.record(
                now,
                Event::SwitchCreated {
                    service: service.0,
                    backends: switch.backends().len() as u32,
                },
            );
            // The switch materializes as soon as the last node reports —
            // a zero-width `master.switch_creation` span counts it.
            self.obs.span_record(
                "master",
                "switch_creation",
                Labels::one("service", service.0),
                now,
                now,
            );
        }
        self.switches.insert(service, switch);
        Ok(CreationReply {
            service,
            nodes: infos,
            switch_endpoint,
            creation_time,
        })
    }

    /// Full creation with zero simulated latency — for tests, examples
    /// and callers that only need the end state. The reported
    /// `creation_time` is the slowest node's bootstrap total (download
    /// excluded: no link is involved here).
    pub fn create_service_now(
        &mut self,
        spec: ServiceSpec,
        asp: &str,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<CreationReply, SodaError> {
        let outcome = self.admit(spec, asp, daemons, now)?;
        let worst = outcome
            .tickets
            .iter()
            .map(|(_, t)| t.timing.total())
            .max()
            .unwrap_or(SimDuration::ZERO);
        let mut reply = None;
        for (_, ticket) in &outcome.tickets {
            reply = self.node_ready(outcome.service, ticket.vsn, daemons, now, worst)?;
        }
        Ok(reply.expect("last node_ready yields the reply"))
    }

    /// Tear a service down: every node released, the switch destroyed.
    pub fn teardown(
        &mut self,
        service: ServiceId,
        daemons: &mut [SodaDaemon],
    ) -> Result<(), SodaError> {
        self.admission_index = None;
        let rec = self
            .services
            .get_mut(&service)
            .ok_or(SodaError::UnknownService(service))?;
        if rec.state == ServiceState::TornDown {
            return Err(SodaError::InvalidState {
                service,
                attempted: "teardown",
            });
        }
        for n in rec.nodes.clone() {
            if let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, n.host) {
                let _ = d.teardown_vsn(n.vsn);
            }
        }
        rec.state = ServiceState::TornDown;
        rec.nodes.clear();
        self.switches.remove(&service);
        Ok(())
    }

    /// Resize to `<n_new, M>` (§3.4): "the SODA Master will either
    /// adjust the resources in the current virtual service nodes, or
    /// add/remove virtual service node(s). In either case, the service
    /// configuration file will be updated."
    ///
    /// Strategy: shrink removes capacity node-by-node from the end
    /// (tearing down emptied nodes); growth first tries to widen
    /// existing nodes in place, then places new nodes for the remainder.
    pub fn resize(
        &mut self,
        service: ServiceId,
        new_instances: u32,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<ResizeOutcome, SodaError> {
        self.admission_index = None;
        if new_instances == 0 {
            return Err(SodaError::BadRequest("n_new must be positive".into()));
        }
        let rec = self
            .services
            .get(&service)
            .ok_or(SodaError::UnknownService(service))?;
        if rec.state != ServiceState::Running {
            return Err(SodaError::InvalidState {
                service,
                attempted: "resize",
            });
        }
        let current = rec.placed_capacity();
        let m_infl = self.inflated_machine(&rec.spec.machine);
        let mut outcome = ResizeOutcome {
            resized: Vec::new(),
            removed: Vec::new(),
            tickets: Vec::new(),
        };
        if new_instances == current {
            return Ok(outcome);
        }

        if new_instances < current {
            let mut to_shed = current - new_instances;
            let rec = self.services.get_mut(&service).expect("checked");
            let mut keep = Vec::new();
            // Shed from the last-placed node backwards: drop whole nodes
            // while they fit in the deficit, then narrow one node.
            for mut n in rec.nodes.clone().into_iter().rev() {
                if to_shed >= n.capacity {
                    to_shed -= n.capacity;
                    if let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, n.host) {
                        d.teardown_vsn(n.vsn)?;
                    }
                    outcome.removed.push(n.vsn);
                    continue;
                }
                if to_shed > 0 {
                    let new_cap = n.capacity - to_shed;
                    to_shed = 0;
                    if let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, n.host) {
                        d.resize_vsn(n.vsn, new_cap, m_infl * new_cap, now)?;
                    }
                    n.capacity = new_cap;
                    outcome.resized.push((n.vsn, new_cap));
                }
                keep.push(n);
            }
            keep.reverse();
            rec.nodes = keep;
            // Update the switch + config file.
            if let Some(sw) = self.switches.get_mut(&service) {
                for &vsn in &outcome.removed {
                    sw.remove_backend(vsn);
                }
                for &(vsn, cap) in &outcome.resized {
                    sw.set_capacity(vsn, cap);
                }
            }
            if self.obs.is_enabled() {
                for &vsn in &outcome.removed {
                    self.obs.record(
                        now,
                        Event::ResizeStep {
                            service: service.0,
                            vsn: vsn.0,
                            action: "shrink",
                        },
                    );
                }
                for &(vsn, _) in &outcome.resized {
                    self.obs.record(
                        now,
                        Event::ResizeStep {
                            service: service.0,
                            vsn: vsn.0,
                            action: "deflate",
                        },
                    );
                }
            }
            return Ok(outcome);
        }

        // Growth: widen existing nodes where the host has headroom.
        let mut to_add = new_instances - current;
        let nodes_snapshot = self.services[&service].nodes.clone();
        for n in &nodes_snapshot {
            if to_add == 0 {
                break;
            }
            let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, n.host) else {
                continue;
            };
            let headroom = d.report_resources().instances_of(&m_infl);
            if headroom == 0 {
                continue;
            }
            let grow_by = headroom.min(to_add);
            let new_cap = n.capacity + grow_by;
            d.resize_vsn(n.vsn, new_cap, m_infl * new_cap, now)?;
            to_add -= grow_by;
            outcome.resized.push((n.vsn, new_cap));
        }
        // Place fresh nodes for any remainder.
        if to_add > 0 {
            self.collect_resources(daemons, now);
            let used_hosts: Vec<HostId> = nodes_snapshot.iter().map(|n| n.host).collect();
            let hosts: Vec<(HostId, ResourceVector)> = self
                .inventory
                .hosts()
                .filter(|(id, _)| !used_hosts.contains(id))
                .map(|(id, r)| (id, r.available))
                .collect();
            let Some(plan) = self.placement.place(to_add, &m_infl, &hosts) else {
                // Roll back the in-place growth.
                for &(vsn, _) in &outcome.resized {
                    let n = nodes_snapshot.iter().find(|n| n.vsn == vsn).expect("known");
                    if let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, n.host) {
                        let _ = d.resize_vsn(vsn, n.capacity, m_infl * n.capacity, now);
                    }
                }
                let available = hosts
                    .iter()
                    .fold(ResourceVector::ZERO, |acc, &(_, a)| acc + a);
                return Err(SodaError::AdmissionRejected {
                    requested: m_infl * to_add,
                    available,
                });
            };
            let rec = self.services.get_mut(&service).expect("checked");
            for node_plan in &plan {
                let daemon = soda_hup::daemon::daemon_for_mut(daemons, node_plan.host)
                    .expect("placement only chooses reported hosts");
                let vsn = VsnId(self.next_vsn);
                self.next_vsn += self.id_stride;
                let ticket = daemon.begin_priming(
                    vsn,
                    node_plan.instances,
                    m_infl * node_plan.instances,
                    &rec.spec.image,
                    &rec.spec.required_services,
                    rec.spec.app_class,
                    &rec.spec.name,
                    now,
                )?;
                rec.nodes.push(PlacedNode {
                    host: node_plan.host,
                    vsn,
                    capacity: node_plan.instances,
                });
                self.obs.record(
                    now,
                    Event::ResizeStep {
                        service: service.0,
                        vsn: vsn.0,
                        action: "grow",
                    },
                );
                self.obs.span_enter("master", "priming", vsn.0, now);
                outcome.tickets.push((node_plan.host, ticket));
            }
            rec.state = ServiceState::Resizing;
        }
        // Apply in-place growth to the switch immediately.
        let rec = self.services.get_mut(&service).expect("checked");
        for n in &mut rec.nodes {
            if let Some(&(_, cap)) = outcome.resized.iter().find(|&&(v, _)| v == n.vsn) {
                n.capacity = cap;
            }
        }
        if let Some(sw) = self.switches.get_mut(&service) {
            for &(vsn, cap) in &outcome.resized {
                sw.set_capacity(vsn, cap);
            }
        }
        if self.obs.is_enabled() {
            for &(vsn, _) in &outcome.resized {
                self.obs.record(
                    now,
                    Event::ResizeStep {
                        service: service.0,
                        vsn: vsn.0,
                        action: "inflate",
                    },
                );
            }
        }
        Ok(outcome)
    }

    /// A resize-added node finished priming: wire it into the switch.
    pub fn resize_node_ready(
        &mut self,
        service: ServiceId,
        vsn: VsnId,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<(), SodaError> {
        let rec = self
            .services
            .get_mut(&service)
            .ok_or(SodaError::UnknownService(service))?;
        let placed = *rec.node(vsn).ok_or(SodaError::UnknownVsn(vsn))?;
        let daemon = soda_hup::daemon::daemon_for_mut(daemons, placed.host)
            .ok_or(SodaError::UnknownVsn(vsn))?;
        let ip = daemon.complete_priming(vsn, now)?;
        self.obs.span_exit("master", "priming", vsn.0, now);
        rec.state = ServiceState::Running;
        let port = rec.spec.port;
        if let Some(sw) = self.switches.get_mut(&service) {
            sw.add_backend(vsn, ip, port, placed.capacity);
        }
        Ok(())
    }

    /// Migrate one node to another host (make-before-break): prime a
    /// replacement node on `target`, transfer the checkpoint, cut the
    /// switch over, then release the old slice. The old node keeps
    /// serving until the replacement is up, so a healthy migration drops
    /// nothing.
    ///
    /// Returns the replacement ticket plus the checkpoint size; the
    /// caller accounts `checkpoint_bytes / LAN` of transfer time before
    /// calling [`SodaMaster::complete_migration`].
    pub fn migrate(
        &mut self,
        service: ServiceId,
        vsn: VsnId,
        target: HostId,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<MigrationOutcome, SodaError> {
        self.admission_index = None;
        let rec = self
            .services
            .get(&service)
            .ok_or(SodaError::UnknownService(service))?;
        if rec.state != ServiceState::Running {
            return Err(SodaError::InvalidState {
                service,
                attempted: "migrate",
            });
        }
        let placed = *rec.node(vsn).ok_or(SodaError::UnknownVsn(vsn))?;
        if placed.host == target {
            return Err(SodaError::BadRequest("target equals source host".into()));
        }
        if rec.nodes.iter().any(|n| n.host == target) {
            return Err(SodaError::BadRequest(
                "service already has a node on the target host".into(),
            ));
        }
        let m_infl = self.inflated_machine(&rec.spec.machine);
        let slice = m_infl * placed.capacity;
        let spec = rec.spec.clone();
        let daemon = soda_hup::daemon::daemon_for_mut(daemons, target)
            .ok_or(SodaError::BadRequest(format!("unknown host {target}")))?;
        let new_vsn = VsnId(self.next_vsn);
        self.next_vsn += self.id_stride;
        let ticket = daemon.begin_priming(
            new_vsn,
            placed.capacity,
            slice,
            &spec.image,
            &spec.required_services,
            spec.app_class,
            &spec.name,
            now,
        )?;
        self.obs.span_enter("master", "priming", new_vsn.0, now);
        // The checkpoint is the guest's memory image (its `mem=` cap).
        let checkpoint_bytes = u64::from(slice.mem_mb) * 1_000_000;
        Ok(MigrationOutcome {
            service,
            old_vsn: vsn,
            new_vsn,
            target,
            ticket,
            checkpoint_bytes,
        })
    }

    /// Finish a migration: bring the replacement up, cut the switch
    /// over, tear the old node down.
    pub fn complete_migration(
        &mut self,
        outcome: &MigrationOutcome,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<(), SodaError> {
        self.admission_index = None;
        let service = outcome.service;
        let rec = self
            .services
            .get_mut(&service)
            .ok_or(SodaError::UnknownService(service))?;
        let old = *rec
            .node(outcome.old_vsn)
            .ok_or(SodaError::UnknownVsn(outcome.old_vsn))?;
        let target_daemon = soda_hup::daemon::daemon_for_mut(daemons, outcome.target)
            .ok_or(SodaError::UnknownVsn(outcome.new_vsn))?;
        let new_ip = target_daemon.complete_priming(outcome.new_vsn, now)?;
        self.obs
            .span_exit("master", "priming", outcome.new_vsn.0, now);
        // Switch cut-over.
        let port = rec.spec.port;
        if let Some(sw) = self.switches.get_mut(&service) {
            sw.add_backend(outcome.new_vsn, new_ip, port, old.capacity);
            sw.remove_backend(outcome.old_vsn);
        }
        // Record update + old slice release.
        if let Some(n) = rec.nodes.iter_mut().find(|n| n.vsn == outcome.old_vsn) {
            n.vsn = outcome.new_vsn;
            n.host = outcome.target;
        }
        if let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, old.host) {
            d.teardown_vsn(outcome.old_vsn)?;
        }
        Ok(())
    }

    /// A whole host failed: mark every affected backend down. Returns
    /// the affected `(service, vsn, capacity)` triples so the driver can
    /// decide what to recover. (The Daemons' `fail_host` is called by
    /// the driver; this is the Master-side bookkeeping.)
    pub fn host_failed(&mut self, host: HostId) -> Vec<(ServiceId, VsnId, u32)> {
        let affected: Vec<(ServiceId, VsnId, u32)> = self
            .services
            .values()
            .filter(|rec| rec.state != ServiceState::TornDown)
            .flat_map(|rec| {
                rec.nodes
                    .iter()
                    .filter(|n| n.host == host)
                    .map(move |n| (rec.id, n.vsn, n.capacity))
            })
            .collect();
        for &(svc, vsn, _) in &affected {
            if let Some(sw) = self.switches.get_mut(&svc) {
                sw.set_health(vsn, false);
            }
        }
        affected
    }

    /// Replace a dead node with a fresh one elsewhere (failover): place
    /// the node's capacity on a surviving host that does not already
    /// carry this service, begin priming, and rewrite the record. The
    /// dead node's backend leaves the switch immediately; the new one
    /// joins via [`SodaMaster::resize_node_ready`] when its bootstrap
    /// finishes. If the old host is still alive (planned evacuation),
    /// its slice is released.
    pub fn replace_node(
        &mut self,
        service: ServiceId,
        vsn: VsnId,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<(HostId, PrimingTicket), SodaError> {
        self.admission_index = None;
        let rec = self
            .services
            .get(&service)
            .ok_or(SodaError::UnknownService(service))?;
        let dead = *rec.node(vsn).ok_or(SodaError::UnknownVsn(vsn))?;
        let m_infl = self.inflated_machine(&rec.spec.machine);
        let spec = rec.spec.clone();
        let used_hosts: Vec<HostId> = rec.nodes.iter().map(|n| n.host).collect();
        self.collect_resources(daemons, now);
        let hosts: Vec<(HostId, ResourceVector)> = self
            .inventory
            .hosts()
            .filter(|(id, _)| !used_hosts.contains(id))
            .map(|(id, r)| (id, r.available))
            .collect();
        let plan = self
            .placement
            .place(dead.capacity, &m_infl, &hosts)
            .filter(|p| p.len() == 1)
            .ok_or_else(|| {
                let available = hosts
                    .iter()
                    .fold(ResourceVector::ZERO, |acc, &(_, a)| acc + a);
                SodaError::AdmissionRejected {
                    requested: m_infl * dead.capacity,
                    available,
                }
            })?;
        let target = plan[0].host;
        let new_vsn = VsnId(self.next_vsn);
        self.next_vsn += self.id_stride;
        let daemon = soda_hup::daemon::daemon_for_mut(daemons, target)
            .expect("placement only chooses reported hosts");
        let ticket = daemon.begin_priming(
            new_vsn,
            dead.capacity,
            m_infl * dead.capacity,
            &spec.image,
            &spec.required_services,
            spec.app_class,
            &spec.name,
            now,
        )?;
        // Drop the dead node: from the switch now, from the source
        // daemon if it survives.
        if let Some(sw) = self.switches.get_mut(&service) {
            sw.remove_backend(vsn);
        }
        if let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, dead.host) {
            if !d.is_failed() {
                let _ = d.teardown_vsn(vsn);
            }
        }
        let rec = self.services.get_mut(&service).expect("checked");
        if let Some(n) = rec.nodes.iter_mut().find(|n| n.vsn == vsn) {
            n.vsn = new_vsn;
            n.host = target;
        }
        rec.state = ServiceState::Resizing; // back to Running at node_ready
        self.obs.record(
            now,
            Event::ResizeStep {
                service: service.0,
                vsn: new_vsn.0,
                action: "grow",
            },
        );
        self.obs.span_enter("master", "priming", new_vsn.0, now);
        Ok((target, ticket))
    }

    /// A node crashed: mark it down in the switch (the service record
    /// keeps the node; a re-prime can bring it back).
    pub fn node_crashed(&mut self, service: ServiceId, vsn: VsnId) {
        if let Some(sw) = self.switches.get_mut(&service) {
            sw.set_health(vsn, false);
        }
    }

    /// A crashed node recovered.
    pub fn node_recovered(&mut self, service: ServiceId, vsn: VsnId) {
        if let Some(sw) = self.switches.get_mut(&service) {
            sw.set_health(vsn, true);
        }
    }

    /// Capacity currently healthy in the service's switch (machine
    /// instances actually in rotation). Zero before the switch exists.
    pub fn healthy_capacity(&self, service: ServiceId) -> u32 {
        self.switches
            .get(&service)
            .map_or(0, |sw| sw.healthy_capacity())
    }

    /// Place `capacity` replacement instances for `service` on a host
    /// that does not already carry it, and begin priming there. Unlike
    /// [`SodaMaster::replace_node`] this does not touch any existing
    /// node: the dead node stays in the record (and drained in the
    /// switch) until the caller commits via [`SodaMaster::remove_node`],
    /// so a false-positive detection can still be rolled back. The new
    /// node joins the switch via [`SodaMaster::resize_node_ready`].
    pub fn place_recovery_node(
        &mut self,
        service: ServiceId,
        capacity: u32,
        avoid: &[HostId],
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Result<(HostId, PrimingTicket), SodaError> {
        self.admission_index = None;
        if capacity == 0 {
            return Err(SodaError::BadRequest("capacity must be positive".into()));
        }
        let rec = self
            .services
            .get(&service)
            .ok_or(SodaError::UnknownService(service))?;
        if rec.state == ServiceState::TornDown {
            return Err(SodaError::InvalidState {
                service,
                attempted: "recovery_placement",
            });
        }
        let m_infl = self.inflated_machine(&rec.spec.machine);
        let spec = rec.spec.clone();
        let was_running = rec.state == ServiceState::Running;
        let used_hosts: Vec<HostId> = rec.nodes.iter().map(|n| n.host).collect();
        let alive: Vec<HostId> = daemons
            .iter()
            .filter(|d| !d.is_failed() && !avoid.contains(&d.host.id))
            .map(|d| d.host.id)
            .collect();
        self.collect_resources(daemons, now);
        // Prefer a host not already carrying the service (fault
        // diversity); when the platform has no such slice, co-locating
        // on a live carrying host still restores capacity.
        let spread: Vec<(HostId, ResourceVector)> = self
            .inventory
            .hosts()
            .filter(|(id, _)| alive.contains(id) && !used_hosts.contains(id))
            .map(|(id, r)| (id, r.available))
            .collect();
        let colocated: Vec<(HostId, ResourceVector)> = self
            .inventory
            .hosts()
            .filter(|(id, _)| alive.contains(id))
            .map(|(id, r)| (id, r.available))
            .collect();
        let plan = self
            .placement
            .place(capacity, &m_infl, &spread)
            .filter(|p| p.len() == 1)
            .or_else(|| {
                self.placement
                    .place(capacity, &m_infl, &colocated)
                    .filter(|p| p.len() == 1)
            })
            .ok_or_else(|| {
                let available = colocated
                    .iter()
                    .fold(ResourceVector::ZERO, |acc, &(_, a)| acc + a);
                SodaError::AdmissionRejected {
                    requested: m_infl * capacity,
                    available,
                }
            })?;
        let target = plan[0].host;
        let new_vsn = VsnId(self.next_vsn);
        self.next_vsn += self.id_stride;
        let daemon = soda_hup::daemon::daemon_for_mut(daemons, target)
            .expect("placement only chooses reported hosts");
        let ticket = daemon.begin_priming(
            new_vsn,
            capacity,
            m_infl * capacity,
            &spec.image,
            &spec.required_services,
            spec.app_class,
            &spec.name,
            now,
        )?;
        let rec = self.services.get_mut(&service).expect("checked");
        rec.nodes.push(PlacedNode {
            host: target,
            vsn: new_vsn,
            capacity,
        });
        if was_running {
            rec.state = ServiceState::Resizing; // back to Running at node_ready
        }
        self.obs.record(
            now,
            Event::ResizeStep {
                service: service.0,
                vsn: new_vsn.0,
                action: "grow",
            },
        );
        self.obs.span_enter("master", "priming", new_vsn.0, now);
        Ok((target, ticket))
    }

    /// Scrub a node from its service: out of the record, out of the
    /// switch, torn down on its daemon when the host still lives. If the
    /// removal leaves a mid-creation service with every remaining node
    /// already booted, the creation completes with the survivors (the
    /// reply's `creation_time` is zero — the real duration is unknown to
    /// the Master on this path). Removing the last node of a Creating
    /// service tears the service down. Returns the node's capacity and
    /// the completion reply, or `None` for an unknown service/node.
    pub fn remove_node(
        &mut self,
        service: ServiceId,
        vsn: VsnId,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> Option<(u32, Option<CreationReply>)> {
        self.admission_index = None;
        let rec = self.services.get_mut(&service)?;
        let pos = rec.nodes.iter().position(|n| n.vsn == vsn)?;
        let node = rec.nodes.remove(pos);
        let creating = rec.state == ServiceState::Creating;
        let completable = creating && !rec.nodes.is_empty() && rec.nodes_ready >= rec.nodes.len();
        if creating && rec.nodes.is_empty() {
            rec.state = ServiceState::TornDown;
        }
        if let Some(sw) = self.switches.get_mut(&service) {
            sw.remove_backend(vsn);
        }
        if let Some(d) = soda_hup::daemon::daemon_for_mut(daemons, node.host) {
            // Close the priming span if the node never booted; teardown
            // releases the slice when the host survives.
            let priming = d
                .vsn(vsn)
                .is_some_and(|v| matches!(v.state(), VsnState::Priming));
            if priming {
                self.obs.span_exit("master", "priming", vsn.0, now);
            }
            if !d.is_failed() {
                let _ = d.teardown_vsn(vsn);
            }
        }
        let reply = if completable {
            self.finish_creation(service, daemons, now, SimDuration::ZERO)
                .ok()
        } else {
            None
        };
        Some((node.capacity, reply))
    }

    /// The service record.
    pub fn service(&self, id: ServiceId) -> Option<&ServiceRecord> {
        self.services.get(&id)
    }

    /// The service's switch.
    pub fn switch(&self, id: ServiceId) -> Option<&ServiceSwitch> {
        self.switches.get(&id)
    }

    /// Mutable switch access (routing mutates policy state).
    pub fn switch_mut(&mut self, id: ServiceId) -> Option<&mut ServiceSwitch> {
        self.switches.get_mut(&id)
    }

    /// All hosted services.
    pub fn services(&self) -> impl Iterator<Item = &ServiceRecord> {
        self.services.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_net::pool::IpPool;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    use soda_hup::host::HupHost;

    fn testbed() -> Vec<SodaDaemon> {
        vec![
            SodaDaemon::new(HupHost::seattle(
                HostId(1),
                IpPool::new("128.10.9.120".parse().unwrap(), 8),
            )),
            SodaDaemon::new(HupHost::tacoma(
                HostId(2),
                IpPool::new("128.10.9.128".parse().unwrap(), 8),
            )),
        ]
    }

    fn web_spec(n: u32) -> ServiceSpec {
        ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: n,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        }
    }

    #[test]
    fn create_service_reproduces_figure2_layout() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let reply = master
            .create_service_now(web_spec(3), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        // <3, M> → 2M on seattle, 1M on tacoma (Figure 2 / Table 3).
        assert_eq!(reply.nodes.len(), 2);
        assert_eq!(reply.nodes[0].capacity, 2);
        assert_eq!(reply.nodes[1].capacity, 1);
        let rec = master.service(reply.service).unwrap();
        assert_eq!(rec.state, ServiceState::Running);
        assert_eq!(rec.nodes[0].host, HostId(1));
        assert_eq!(rec.nodes[1].host, HostId(2));
        // The switch's config file has the Table 3 shape.
        let sw = master.switch(reply.service).unwrap();
        let cfg = sw.config().to_string();
        assert!(cfg.contains("8080 2"), "{cfg}");
        assert!(cfg.contains("8080 1"), "{cfg}");
        assert_eq!(sw.config().total_capacity(), 3);
        assert!(reply.creation_time > SimDuration::from_secs(1));
    }

    #[test]
    fn admission_inflates_by_slowdown_factor() {
        let master = SodaMaster::new();
        let m = ResourceVector::TABLE1_EXAMPLE;
        let infl = master.inflated_machine(&m);
        assert_eq!(infl.cpu_mhz, 768); // 512 × 1.5
        assert_eq!(infl.bw_mbps, 15);
        assert_eq!(infl.mem_mb, m.mem_mb);
    }

    #[test]
    fn admission_rejects_oversized_requests() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let err = master
            .create_service_now(web_spec(50), "webco", &mut daemons, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, SodaError::AdmissionRejected { .. }));
        // Nothing leaked.
        assert_eq!(daemons[0].vsn_count(), 0);
        assert_eq!(daemons[1].vsn_count(), 0);
    }

    #[test]
    fn zero_instances_is_a_bad_request() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let err = master
            .create_service_now(web_spec(0), "webco", &mut daemons, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, SodaError::BadRequest(_)));
    }

    #[test]
    fn teardown_releases_all_hosts() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let before: Vec<_> = daemons.iter().map(|d| d.report_resources()).collect();
        let reply = master
            .create_service_now(web_spec(3), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        master.teardown(reply.service, &mut daemons).unwrap();
        let after: Vec<_> = daemons.iter().map(|d| d.report_resources()).collect();
        assert_eq!(before, after);
        assert!(master.switch(reply.service).is_none());
        assert_eq!(
            master.service(reply.service).unwrap().state,
            ServiceState::TornDown
        );
        // Double teardown rejected.
        assert!(matches!(
            master.teardown(reply.service, &mut daemons),
            Err(SodaError::InvalidState { .. })
        ));
    }

    #[test]
    fn resize_shrink_in_place_and_remove_nodes() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let reply = master
            .create_service_now(web_spec(3), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        // 3 → 2: drops the tacoma node entirely (capacity 1, shed from
        // the end).
        let out = master
            .resize(reply.service, 2, &mut daemons, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(out.removed.len(), 1);
        assert!(out.tickets.is_empty());
        let rec = master.service(reply.service).unwrap();
        assert_eq!(rec.placed_capacity(), 2);
        assert_eq!(rec.nodes.len(), 1);
        let seattle_vsn = rec.nodes[0].vsn;
        assert_eq!(
            master
                .switch(reply.service)
                .unwrap()
                .config()
                .total_capacity(),
            2
        );
        assert_eq!(daemons[1].vsn_count(), 0, "tacoma node torn down");
        // 2 → 1: in-place shrink of the seattle node.
        let out = master
            .resize(reply.service, 1, &mut daemons, SimTime::from_secs(20))
            .unwrap();
        assert_eq!(out.removed.len(), 0);
        assert_eq!(out.resized, vec![(seattle_vsn, 1)]);
        assert_eq!(master.service(reply.service).unwrap().placed_capacity(), 1);
    }

    #[test]
    fn resize_grow_in_place() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let reply = master
            .create_service_now(web_spec(2), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        let rec_nodes = master.service(reply.service).unwrap().nodes.clone();
        let out = master
            .resize(reply.service, 3, &mut daemons, SimTime::from_secs(5))
            .unwrap();
        // Growth fits in place (seattle has headroom): no new tickets.
        assert!(out.tickets.is_empty());
        assert!(!out.resized.is_empty());
        assert_eq!(master.service(reply.service).unwrap().placed_capacity(), 3);
        assert_eq!(
            master
                .switch(reply.service)
                .unwrap()
                .config()
                .total_capacity(),
            3
        );
        // The original node ids survive.
        for n in &master.service(reply.service).unwrap().nodes {
            assert!(rec_nodes.iter().any(|o| o.vsn == n.vsn));
        }
    }

    #[test]
    fn resize_noop_and_errors() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let reply = master
            .create_service_now(web_spec(2), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        let out = master
            .resize(reply.service, 2, &mut daemons, SimTime::ZERO)
            .unwrap();
        assert!(out.resized.is_empty() && out.removed.is_empty() && out.tickets.is_empty());
        assert!(matches!(
            master.resize(reply.service, 0, &mut daemons, SimTime::ZERO),
            Err(SodaError::BadRequest(_))
        ));
        assert!(matches!(
            master.resize(ServiceId(999), 1, &mut daemons, SimTime::ZERO),
            Err(SodaError::UnknownService(_))
        ));
        // Oversized growth is rejected and rolls back.
        let before = master.service(reply.service).unwrap().placed_capacity();
        assert!(master
            .resize(reply.service, 60, &mut daemons, SimTime::ZERO)
            .is_err());
        assert_eq!(
            master.service(reply.service).unwrap().placed_capacity(),
            before
        );
    }

    #[test]
    fn crash_marks_switch_unhealthy() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let reply = master
            .create_service_now(web_spec(3), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        let vsn = master.service(reply.service).unwrap().nodes[0].vsn;
        master.node_crashed(reply.service, vsn);
        let sw = master.switch_mut(reply.service).unwrap();
        // All traffic now flows to the healthy tacoma node.
        for _ in 0..10 {
            let i = sw.route(SimTime::ZERO).unwrap();
            let picked = sw.backends()[i].vsn;
            assert_ne!(picked, vsn);
            sw.complete(picked, SimDuration::from_millis(1), SimTime::ZERO);
        }
        master.node_recovered(reply.service, vsn);
        let sw = master.switch_mut(reply.service).unwrap();
        let mut saw_recovered = false;
        for _ in 0..10 {
            let i = sw.route(SimTime::ZERO).unwrap();
            let picked = sw.backends()[i].vsn;
            if picked == vsn {
                saw_recovered = true;
            }
            sw.complete(picked, SimDuration::from_millis(1), SimTime::ZERO);
        }
        assert!(saw_recovered);
    }

    #[test]
    fn migration_moves_node_and_preserves_capacity() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        // One node on seattle.
        let reply = master
            .create_service_now(web_spec(1), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        let svc = reply.service;
        let old_vsn = master.service(svc).unwrap().nodes[0].vsn;
        let src = master.service(svc).unwrap().nodes[0].host;
        assert_eq!(src, HostId(1));
        let src_before = daemons[0].report_resources();
        // Migrate to tacoma.
        let out = master
            .migrate(svc, old_vsn, HostId(2), &mut daemons, SimTime::ZERO)
            .unwrap();
        assert_eq!(out.checkpoint_bytes, 256_000_000);
        // Old node still serving while the replacement primes
        // (make-before-break).
        assert!(daemons[0].vsn(old_vsn).unwrap().is_running());
        master
            .complete_migration(&out, &mut daemons, SimTime::from_secs(30))
            .unwrap();
        let rec = master.service(svc).unwrap();
        assert_eq!(rec.nodes.len(), 1);
        assert_eq!(rec.nodes[0].host, HostId(2));
        assert_eq!(rec.nodes[0].vsn, out.new_vsn);
        assert_eq!(rec.placed_capacity(), 1);
        // Source slice released; destination charged.
        assert_eq!(
            daemons[0].report_resources(),
            src_before + master.inflated_machine(&rec.spec.machine)
        );
        assert_eq!(daemons[0].vsn_count(), 0);
        assert_eq!(daemons[1].vsn_count(), 1);
        // The switch routes to the new node.
        let sw = master.switch_mut(svc).unwrap();
        let i = sw.route(SimTime::ZERO).unwrap();
        assert_eq!(sw.backends()[i].vsn, out.new_vsn);
        sw.complete(out.new_vsn, SimDuration::from_millis(1), SimTime::ZERO);
    }

    #[test]
    fn migration_error_paths() {
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let reply = master
            .create_service_now(web_spec(3), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        let svc = reply.service;
        let vsn = master.service(svc).unwrap().nodes[0].vsn;
        // Target == source.
        assert!(matches!(
            master.migrate(svc, vsn, HostId(1), &mut daemons, SimTime::ZERO),
            Err(SodaError::BadRequest(_))
        ));
        // Target already hosts a node of this service.
        assert!(matches!(
            master.migrate(svc, vsn, HostId(2), &mut daemons, SimTime::ZERO),
            Err(SodaError::BadRequest(_))
        ));
        // Unknown service / node.
        assert!(master
            .migrate(ServiceId(99), vsn, HostId(2), &mut daemons, SimTime::ZERO)
            .is_err());
        assert!(master
            .migrate(svc, VsnId(999), HostId(2), &mut daemons, SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn two_services_share_the_hup() {
        // The §5 testbed: web content (2 nodes) + honeypot (1 node on
        // seattle) coexist.
        let mut master = SodaMaster::new();
        let mut daemons = testbed();
        let web = master
            .create_service_now(web_spec(3), "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        let honeypot_spec = ServiceSpec {
            name: "honeypot".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 80,
        };
        let hp = master
            .create_service_now(honeypot_spec, "seclab", &mut daemons, SimTime::ZERO)
            .unwrap();
        assert_ne!(web.service, hp.service);
        assert_eq!(master.services().count(), 2);
        let total_vsns: usize = daemons.iter().map(|d| d.vsn_count()).sum();
        assert_eq!(total_vsns, 3);
    }
}
