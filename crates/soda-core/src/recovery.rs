//! The Master's self-healing control loop.
//!
//! SODA's availability story (§3.6) needs more than an omniscient
//! script calling `failover_node`: the Master must *notice* that a host
//! died, and it can only do so through the control plane. This module
//! closes that loop:
//!
//! 1. **Heartbeats** — every daemon reports its running VSNs each
//!    interval; delivery is gated by the world's [`ControlPlane`], so a
//!    partitioned or lossy link looks exactly like a dead host.
//! 2. **Detection** — a host silent past the timeout is declared down:
//!    its backends are drained from every switch, their runtimes and
//!    in-flight work dropped (and counted), and one recovery *episode*
//!    opens per lost node. A heartbeat that names a crashed VSN opens
//!    an episode for just that node.
//! 3. **Recovery** — an episode first tries to re-prime the node in
//!    place (host still up), otherwise places a replacement on a host
//!    not already carrying the service. Placement failures retry with
//!    exponential backoff and jitter from a dedicated seeded RNG.
//! 4. **Graceful degradation** — when the backoff budget is exhausted
//!    the service is declared degraded; capacity is reclaimed by
//!    shedding the lowest-priority service (strictly lower than the
//!    victim of the outage), and as a last resort the episode parks,
//!    retrying at the backoff ceiling until capacity appears.
//! 5. **Flap tolerance** — a host that heartbeats again after being
//!    declared down cancels any episode whose "dead" node turned out
//!    alive (a false alarm), restoring it to rotation.
//!
//! Every decision is recorded as a typed [`Event`], so a chaos run's
//! whole recovery timeline is reconstructable from the event log, and
//! all randomness flows from [`RecoveryConfig::seed`] — the loop is
//! deterministic given `(seed, FaultPlan)`.
//!
//! [`ControlPlane`]: soda_net::control::ControlPlane

use std::collections::BTreeMap;

use soda_hup::host::HostId;
use soda_sim::{BackoffPolicy, Ctx, Engine, Event, SimDuration, SimRng, SimTime};
use soda_vmm::isolation::ExecutionMode;
use soda_vmm::vsn::{VsnId, VsnState};

use crate::config::ShardId;
use crate::journal::{
    EpisodeId, EpisodeSnapshot, HostSnapshot, JournalOp, RecoverySnapshot, StatsSnapshot,
    PRIORITY_BIAS,
};
use crate::service::{ServiceId, ServiceState};
use crate::shard::{send_shard_msg, shard_salt, ShardMsg};
use crate::world::{self, SodaWorld};

/// Tunables of the self-healing loop.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// How often each daemon heartbeats.
    pub heartbeat_interval: SimDuration,
    /// Silence past this declares the host down (must exceed the
    /// interval by enough to ride out one lost heartbeat).
    pub heartbeat_timeout: SimDuration,
    /// Retry schedule for failed replacement placements.
    pub backoff: BackoffPolicy,
    /// Seed of the loop's own RNG (backoff jitter); independent from
    /// the engine's seed so enabling recovery never perturbs workload
    /// randomness.
    pub seed: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            heartbeat_interval: SimDuration::from_secs(1),
            heartbeat_timeout: SimDuration::from_millis(3500),
            backoff: BackoffPolicy::default(),
            seed: 0x5eed_4ea1,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HostHealth {
    Up,
    Down,
}

#[derive(Clone, Copy, Debug)]
struct HostState {
    last_heartbeat: SimTime,
    health: HostHealth,
}

/// One open capacity-restoration effort: a lost node being replaced.
#[derive(Clone, Copy, Debug)]
struct Episode {
    /// Epoch-stamped id: a Master resurrected under a later epoch can
    /// never collide with (or accidentally resume) a pre-crash episode.
    id: EpisodeId,
    service: ServiceId,
    /// Machine instances to restore.
    capacity: u32,
    lost_at: SimTime,
    /// The dead node, still in the service record (drained) until a
    /// replacement commits — so a false alarm can roll back.
    dead_vsn: Option<VsnId>,
    origin_host: Option<HostId>,
    attempt: u32,
    /// The replacement currently priming (or the dead node itself when
    /// re-priming in place).
    replacement: Option<VsnId>,
    /// Whether an in-place re-prime is worth trying first.
    try_reprime: bool,
    /// A shed has already been performed for this episode.
    shed_done: bool,
    /// The episode has already been counted (and announced) as a
    /// degradation — park/poll cycles must not re-count it.
    degraded: bool,
    /// Parked: retry when the clock passes this.
    parked_until: Option<SimTime>,
}

/// Counters and timelines accumulated by the loop.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// `(host, when)` — each host-down declaration.
    pub detections: Vec<(u64, SimTime)>,
    /// `(episode, lost → restored latency)` per completed episode.
    pub recoveries: Vec<(EpisodeId, SimDuration)>,
    /// Placement retries scheduled.
    pub retries: u64,
    /// Episodes that exhausted their backoff budget.
    pub degradations: u64,
    /// Lower-priority services shed to reclaim capacity.
    pub sheds: u64,
    /// Down declarations rolled back by a later heartbeat.
    pub false_alarms: u64,
    /// Routing-invariant violations observed (see [`check_invariants`]).
    pub invariant_violations: u64,
}

/// The Master-side state of the self-healing loop.
#[derive(Debug)]
pub struct RecoveryManager {
    enabled: bool,
    /// The loop's tunables.
    pub cfg: RecoveryConfig,
    rng: SimRng,
    hosts: BTreeMap<HostId, HostState>,
    episodes: Vec<Episode>,
    /// Master epoch stamped onto new episode ids.
    epoch: u64,
    next_seq: u64,
    degraded_since: BTreeMap<ServiceId, SimTime>,
    degraded_total: BTreeMap<ServiceId, SimDuration>,
    priorities: BTreeMap<ServiceId, i32>,
    /// Accumulated counters and timelines.
    pub stats: RecoveryStats,
}

impl Default for RecoveryManager {
    fn default() -> Self {
        RecoveryManager::new(RecoveryConfig::default())
    }
}

impl RecoveryManager {
    /// A disabled manager (armed by [`start_self_healing`]).
    pub fn new(cfg: RecoveryConfig) -> Self {
        RecoveryManager {
            enabled: false,
            cfg,
            rng: SimRng::new(cfg.seed),
            hosts: BTreeMap::new(),
            episodes: Vec::new(),
            epoch: 1,
            next_seq: 1,
            degraded_since: BTreeMap::new(),
            degraded_total: BTreeMap::new(),
            priorities: BTreeMap::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Whether the loop is armed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Set a service's priority (higher = shed last; default 0).
    /// Degradation only sheds victims with *strictly lower* priority
    /// than the service being restored.
    pub fn set_priority(&mut self, service: ServiceId, priority: i32) {
        self.priorities.insert(service, priority);
    }

    fn priority(&self, service: ServiceId) -> i32 {
        self.priorities.get(&service).copied().unwrap_or(0)
    }

    /// Episodes still open (capacity not yet restored).
    pub fn open_episodes(&self) -> usize {
        self.episodes.len()
    }

    /// Total time any service has spent at degraded capacity up to
    /// `now`, including still-open windows.
    pub fn degraded_time(&self, now: SimTime) -> SimDuration {
        let closed: u64 = self.degraded_total.values().map(|d| d.as_nanos()).sum();
        let open: u64 = self
            .degraded_since
            .values()
            .map(|s| now.saturating_since(*s).as_nanos())
            .sum();
        SimDuration::from_nanos(closed + open)
    }

    /// Master epoch new episode ids are stamped with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn new_episode_id(&mut self) -> EpisodeId {
        let id = EpisodeId {
            epoch: self.epoch,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        id
    }

    /// The Master process died: its in-memory control state — host
    /// table, open episodes, the jitter RNG position — is gone. The
    /// accumulated [`RecoveryStats`] and degraded-time ledgers survive:
    /// they model external measurement, not Master memory.
    pub(crate) fn crash(&mut self) {
        self.enabled = false;
        self.hosts.clear();
        self.episodes.clear();
    }

    /// A warm standby took over as `epoch`: re-arm with a fresh seq
    /// stream and a deterministically re-seeded jitter RNG (the crashed
    /// Master's RNG position is unrecoverable by design — it was never
    /// journaled, so the standby must not pretend to resume it).
    pub(crate) fn rearm(&mut self, epoch: u64, now: SimTime, hosts: &[HostId]) {
        self.enabled = true;
        self.epoch = epoch;
        self.next_seq = 1;
        self.rng = SimRng::new(self.cfg.seed ^ epoch);
        self.hosts.clear();
        for &h in hosts {
            self.hosts.insert(
                h,
                HostState {
                    last_heartbeat: now,
                    health: HostHealth::Up,
                },
            );
        }
    }

    /// Full state capture for [`crate::journal::WorldSnapshot`].
    pub fn snapshot(&self) -> RecoverySnapshot {
        RecoverySnapshot {
            enabled: self.enabled,
            episode_epoch: self.epoch,
            next_seq: self.next_seq,
            rng: self.rng.state(),
            hosts: self
                .hosts
                .iter()
                .map(|(h, st)| HostSnapshot {
                    host: u64::from(h.0),
                    last_heartbeat_ns: st.last_heartbeat.as_nanos(),
                    up: st.health == HostHealth::Up,
                })
                .collect(),
            episodes: self
                .episodes
                .iter()
                .map(|e| EpisodeSnapshot {
                    epoch: e.id.epoch,
                    seq: e.id.seq,
                    service: e.service.0,
                    capacity: e.capacity,
                    lost_at_ns: e.lost_at.as_nanos(),
                    dead_vsn: e.dead_vsn.map(|v| v.0),
                    origin_host: e.origin_host.map(|h| u64::from(h.0)),
                    attempt: e.attempt,
                    replacement: e.replacement.map(|v| v.0),
                    try_reprime: e.try_reprime,
                    shed_done: e.shed_done,
                    degraded: e.degraded,
                    parked_until_ns: e.parked_until.map(SimTime::as_nanos),
                })
                .collect(),
            degraded_since: self
                .degraded_since
                .iter()
                .map(|(s, t)| (s.0, t.as_nanos()))
                .collect(),
            degraded_total: self
                .degraded_total
                .iter()
                .map(|(s, d)| (s.0, d.as_nanos()))
                .collect(),
            priorities: self
                .priorities
                .iter()
                .map(|(s, p)| (s.0, (i64::from(*p) + PRIORITY_BIAS as i64) as u64))
                .collect(),
            stats: StatsSnapshot {
                detections: self
                    .stats
                    .detections
                    .iter()
                    .map(|&(h, t)| (h, t.as_nanos()))
                    .collect(),
                recoveries: self
                    .stats
                    .recoveries
                    .iter()
                    .map(|&(id, d)| (id.epoch, id.seq, d.as_nanos()))
                    .collect(),
                retries: self.stats.retries,
                degradations: self.stats.degradations,
                sheds: self.stats.sheds,
                false_alarms: self.stats.false_alarms,
                invariant_violations: self.stats.invariant_violations,
            },
        }
    }

    /// Rebuild a manager from a parsed snapshot; the inverse of
    /// [`RecoveryManager::snapshot`] down to the RNG word, so a
    /// restored run continues bit-identically.
    pub fn restore(cfg: RecoveryConfig, snap: &RecoverySnapshot) -> Self {
        let host_id = |raw: u64| HostId(raw as u32);
        RecoveryManager {
            enabled: snap.enabled,
            cfg,
            rng: SimRng::from_state(snap.rng),
            hosts: snap
                .hosts
                .iter()
                .map(|h| {
                    (
                        host_id(h.host),
                        HostState {
                            last_heartbeat: SimTime::from_nanos(h.last_heartbeat_ns),
                            health: if h.up {
                                HostHealth::Up
                            } else {
                                HostHealth::Down
                            },
                        },
                    )
                })
                .collect(),
            episodes: snap
                .episodes
                .iter()
                .map(|e| Episode {
                    id: EpisodeId {
                        epoch: e.epoch,
                        seq: e.seq,
                    },
                    service: ServiceId(e.service),
                    capacity: e.capacity,
                    lost_at: SimTime::from_nanos(e.lost_at_ns),
                    dead_vsn: e.dead_vsn.map(VsnId),
                    origin_host: e.origin_host.map(host_id),
                    attempt: e.attempt,
                    replacement: e.replacement.map(VsnId),
                    try_reprime: e.try_reprime,
                    shed_done: e.shed_done,
                    degraded: e.degraded,
                    parked_until: e.parked_until_ns.map(SimTime::from_nanos),
                })
                .collect(),
            epoch: snap.episode_epoch,
            next_seq: snap.next_seq,
            degraded_since: snap
                .degraded_since
                .iter()
                .map(|&(s, t)| (ServiceId(s), SimTime::from_nanos(t)))
                .collect(),
            degraded_total: snap
                .degraded_total
                .iter()
                .map(|&(s, d)| (ServiceId(s), SimDuration::from_nanos(d)))
                .collect(),
            priorities: snap
                .priorities
                .iter()
                .map(|&(s, p)| (ServiceId(s), (p as i64 - PRIORITY_BIAS as i64) as i32))
                .collect(),
            stats: RecoveryStats {
                detections: snap
                    .stats
                    .detections
                    .iter()
                    .map(|&(h, t)| (h, SimTime::from_nanos(t)))
                    .collect(),
                recoveries: snap
                    .stats
                    .recoveries
                    .iter()
                    .map(|&(epoch, seq, d)| (EpisodeId { epoch, seq }, SimDuration::from_nanos(d)))
                    .collect(),
                retries: snap.stats.retries,
                degradations: snap.stats.degradations,
                sheds: snap.stats.sheds,
                false_alarms: snap.stats.false_alarms,
                invariant_violations: snap.stats.invariant_violations,
            },
        }
    }
}

/// Arm the self-healing loop: heartbeats every
/// `cfg.heartbeat_interval`, detection, recovery and degradation run
/// autonomously until `until`.
pub fn start_self_healing(engine: &mut Engine<SodaWorld>, cfg: RecoveryConfig, until: SimTime) {
    let interval = cfg.heartbeat_interval;
    let now = engine.now();
    {
        let world = engine.state_mut();
        // One manager per cell: beliefs about a host live only in its
        // own cell, and each cell's jitter RNG gets a salted seed
        // (`shard_salt(0) == 0`, so the monolith stream is unchanged).
        for shard in 0..world.shard_count() {
            let shard = ShardId(shard);
            let range = world.cell_range(shard);
            let cell_hosts: Vec<HostId> = world.daemons[range].iter().map(|d| d.host.id).collect();
            let mut scfg = cfg;
            scfg.seed ^= shard_salt(shard.0);
            let mut mgr = RecoveryManager::new(scfg);
            mgr.enabled = true;
            mgr.epoch = world.journal_of(shard).epoch();
            // Seed the table now so a host that never heartbeats still
            // times out.
            for h in cell_hosts {
                mgr.hosts.insert(
                    h,
                    HostState {
                        last_heartbeat: now,
                        health: HostHealth::Up,
                    },
                );
            }
            *world.recovery_of_mut(shard) = mgr;
        }
    }
    engine.schedule_periodic(now + interval, interval, until, |w, ctx| {
        heartbeat_tick(w, ctx);
        true
    });
}

/// One heartbeat round: gather reports, detect silence, drive retries.
pub fn heartbeat_tick(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
    if !world.recovery.enabled {
        return;
    }
    let now = ctx.now();
    // Gather delivered heartbeats (the control plane may eat them).
    let mut hosts: Vec<HostId> = Vec::new();
    let mut reports: Vec<(HostId, Vec<VsnId>)> = Vec::new();
    for i in 0..world.daemons.len() {
        let host = world.daemons[i].host.id;
        hosts.push(host);
        let Some(running) = world.daemons[i].heartbeat() else {
            continue;
        };
        let delivered = world
            .control
            .delivers(u64::from(host.0), now, || ctx.rng().f64());
        if delivered {
            reports.push((host, running));
        }
    }
    for (host, running) in reports {
        process_heartbeat(world, ctx, host, running);
    }
    // Silence detection, against the host's own cell's beliefs.
    let timeout = world.recovery.cfg.heartbeat_timeout;
    for host in hosts {
        let cell = world.shard_of_host(host);
        let mgr = world.recovery_of_mut(cell);
        let Some(st) = mgr.hosts.get(&host).copied() else {
            mgr.hosts.insert(
                host,
                HostState {
                    last_heartbeat: now,
                    health: HostHealth::Up,
                },
            );
            continue;
        };
        if st.health == HostHealth::Up && now.saturating_since(st.last_heartbeat) > timeout {
            declare_host_down(world, ctx, host);
        }
    }
    // Parked episodes poll for capacity at the backoff ceiling. Episode
    // sequences are per-cell, so episodes are addressed (shard, id).
    let mut due: Vec<(ShardId, EpisodeId)> = Vec::new();
    for shard in 0..world.shard_count() {
        let shard = ShardId(shard);
        due.extend(
            world
                .recovery_of(shard)
                .episodes
                .iter()
                .filter(|e| e.replacement.is_none() && e.parked_until.is_some_and(|t| now >= t))
                .map(|e| (shard, e.id)),
        );
    }
    for (shard, id) in due {
        attempt_recovery(world, ctx, shard, id);
    }
}

fn process_heartbeat(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    host: HostId,
    running: Vec<VsnId>,
) {
    let now = ctx.now();
    let cell = world.shard_of_host(host);
    let prev = world.recovery_of_mut(cell).hosts.insert(
        host,
        HostState {
            last_heartbeat: now,
            health: HostHealth::Up,
        },
    );
    if prev.is_some_and(|p| p.health == HostHealth::Down) {
        host_flapped_up(world, ctx, host, &running);
    }
    // A heartbeat that omits a recorded node while its daemon marks it
    // Crashed is a node-level failure report. Every cell's records are
    // scanned: a spilled node lives on this host but is homed elsewhere.
    let recorded: Vec<(ServiceId, VsnId, u32)> = world
        .services_all()
        .filter(|r| r.state != ServiceState::TornDown)
        .flat_map(|r| {
            r.nodes
                .iter()
                .filter(|n| n.host == host)
                .map(move |n| (r.id, n.vsn, n.capacity))
        })
        .collect();
    for (svc, vsn, cap) in recorded {
        if running.contains(&vsn) {
            continue;
        }
        let crashed = soda_hup::daemon::daemon_for(&world.daemons, host)
            .and_then(|d| d.vsn(vsn))
            .is_some_and(|v| matches!(v.state(), VsnState::Crashed));
        if !crashed {
            continue; // priming or mid-transition: not a failure
        }
        let home = world.shard_of_service(svc);
        if world
            .recovery_of(home)
            .episodes
            .iter()
            .any(|e| e.dead_vsn == Some(vsn) || e.replacement == Some(vsn))
        {
            continue;
        }
        if home != cell {
            // The dead node is homed in another cell: tell that cell's
            // Master over the inter-shard message layer.
            send_shard_msg(
                world,
                ctx,
                cell,
                home,
                ShardMsg::NodeDown {
                    service: svc,
                    vsn,
                    capacity: cap,
                    origin_host: Some(host),
                    try_reprime: true,
                },
            );
            continue;
        }
        handle_node_down(world, ctx, svc, vsn, cap, Some(host), true);
    }
}

/// A host declared down heartbeats again: false alarms roll back, and
/// leftovers of committed recoveries are torn down to reclaim slices.
fn host_flapped_up(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    host: HostId,
    running: &[VsnId],
) {
    let now = ctx.now();
    world.obs.record(
        now,
        Event::HostUp {
            host: u64::from(host.0),
        },
    );
    // False-alarm episodes can live in any cell: a foreign-homed node
    // spilled onto this host is tracked by its home shard's manager.
    let mut cancelable: Vec<(ShardId, EpisodeId, ServiceId, VsnId)> = Vec::new();
    for shard in 0..world.shard_count() {
        let shard = ShardId(shard);
        cancelable.extend(
            world
                .recovery_of(shard)
                .episodes
                .iter()
                .filter(|e| e.origin_host == Some(host) && e.replacement.is_none())
                .filter_map(|e| e.dead_vsn.map(|v| (shard, e.id, e.service, v)))
                .filter(|(_, _, _, v)| running.contains(v)),
        );
    }
    for (shard, id, svc, vsn) in cancelable {
        world.master_of_mut(shard).node_recovered(svc, vsn);
        let _ = world.install_runtime(svc, vsn, ExecutionMode::GuestIsolated);
        let mgr = world.recovery_of_mut(shard);
        mgr.episodes.retain(|e| e.id != id);
        mgr.stats.false_alarms += 1;
        world.journal_episode(now, JournalOp::EpisodeClose, svc, id);
        clear_degraded_if_recovered(world, shard, svc, now);
    }
    // VSNs on the daemon that no service record references any more
    // (their capacity was re-placed while the host was out) are stale.
    let referenced: Vec<VsnId> = world
        .services_all()
        .flat_map(|r| r.nodes.iter().map(|n| n.vsn))
        .collect();
    if let Some(d) = soda_hup::daemon::daemon_for_mut(&mut world.daemons, host) {
        let stale: Vec<VsnId> = d
            .vsns()
            .filter(|v| !referenced.contains(&v.id) && !matches!(v.state(), VsnState::TornDown))
            .map(|v| v.id)
            .collect();
        let scrubbed = !stale.is_empty();
        for v in stale {
            let _ = d.teardown_vsn(v);
        }
        if scrubbed {
            world.invalidate_admission_indexes();
        }
    }
}

/// The host has been silent past the timeout: drain and open episodes.
fn declare_host_down(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, host: HostId) {
    let now = ctx.now();
    let h = u64::from(host.0);
    world.obs.record(now, Event::HeartbeatMissed { host: h });
    world.obs.record(now, Event::HostDown { host: h });
    let cell = world.shard_of_host(host);
    {
        let mgr = world.recovery_of_mut(cell);
        if let Some(st) = mgr.hosts.get_mut(&host) {
            st.health = HostHealth::Down;
        }
        mgr.stats.detections.push((h, now));
    }
    // Every cell's Master drains its own nodes on the dead host, in
    // shard order (a spilled node is recorded by its home cell).
    let mut affected: Vec<(ServiceId, VsnId, u32)> = Vec::new();
    for shard in 0..world.shard_count() {
        affected.extend(world.master_of_mut(ShardId(shard)).host_failed(host));
    }
    for (svc, vsn, cap) in affected {
        let home = world.shard_of_service(svc);
        // A replacement that was priming on this very host: release it
        // and send its episode back to placement. This reconciliation
        // stays synchronous — it is part of the host-down broadcast,
        // not a belief exchange.
        if let Some(ep) = world
            .recovery_of_mut(home)
            .episodes
            .iter_mut()
            .find(|e| e.replacement == Some(vsn))
        {
            ep.replacement = None;
            ep.try_reprime = false;
            let id = ep.id;
            let mut daemons = std::mem::take(&mut world.daemons);
            let removed = world
                .master_of_mut(home)
                .remove_node(svc, vsn, &mut daemons, now);
            world.daemons = daemons;
            world.invalidate_admission_indexes();
            if let Some((_, Some(reply))) = removed {
                world::complete_creation_record(world, now, svc, reply);
            }
            world.remove_runtime(vsn);
            world.journal_op(now, JournalOp::Recovery, svc);
            schedule_retry(world, ctx, home, id);
            continue;
        }
        if world
            .recovery_of(home)
            .episodes
            .iter()
            .any(|e| e.dead_vsn == Some(vsn))
        {
            continue;
        }
        if home != cell {
            send_shard_msg(
                world,
                ctx,
                cell,
                home,
                ShardMsg::NodeDown {
                    service: svc,
                    vsn,
                    capacity: cap,
                    origin_host: Some(host),
                    try_reprime: false,
                },
            );
            continue;
        }
        handle_node_down(world, ctx, svc, vsn, cap, Some(host), false);
    }
}

/// Drain one dead node and open (and immediately drive) its episode.
pub(crate) fn handle_node_down(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
    capacity: u32,
    origin_host: Option<HostId>,
    try_reprime: bool,
) {
    let now = ctx.now();
    let home = world.shard_of_service(service);
    world.master_of_mut(home).node_crashed(service, vsn);
    world.obs.record(
        now,
        Event::BackendDrained {
            service: service.0,
            vsn: vsn.0,
        },
    );
    world.remove_runtime(vsn);
    world::drop_inflight_on_vsn(world, ctx, vsn);
    let mgr = world.recovery_of_mut(home);
    mgr.degraded_since.entry(service).or_insert(now);
    let id = mgr.new_episode_id();
    mgr.episodes.push(Episode {
        id,
        service,
        capacity,
        lost_at: now,
        dead_vsn: Some(vsn),
        origin_host,
        attempt: 0,
        replacement: None,
        try_reprime,
        shed_done: false,
        degraded: false,
        parked_until: None,
    });
    world.journal_episode(now, JournalOp::EpisodeOpen, service, id);
    attempt_recovery(world, ctx, home, id);
}

/// A [`ShardMsg::NodeDown`] landed at the home shard: the reported node
/// may have been scrubbed, recovered, or re-reported while the message
/// was in flight, so re-validate before opening an episode.
pub(crate) fn deliver_node_down(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
    capacity: u32,
    origin_host: Option<HostId>,
    try_reprime: bool,
) {
    if !world.recovery.enabled {
        return;
    }
    let home = world.shard_of_service(service);
    let still_recorded = world
        .service_record(service)
        .is_some_and(|r| r.state != ServiceState::TornDown && r.node(vsn).is_some());
    if !still_recorded {
        return;
    }
    if world
        .recovery_of(home)
        .episodes
        .iter()
        .any(|e| e.dead_vsn == Some(vsn) || e.replacement == Some(vsn))
    {
        return;
    }
    handle_node_down(world, ctx, service, vsn, capacity, origin_host, try_reprime);
}

/// Drive one episode: re-prime in place if possible, else place a
/// replacement; on failure, back off / degrade / shed.
fn attempt_recovery(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    shard: ShardId,
    id: EpisodeId,
) {
    let now = ctx.now();
    let Some(ep) = world
        .recovery_of_mut(shard)
        .episodes
        .iter_mut()
        .find(|e| e.id == id)
    else {
        return;
    };
    if ep.replacement.is_some() {
        return;
    }
    ep.parked_until = None;
    ep.attempt += 1;
    let (svc, capacity, attempt) = (ep.service, ep.capacity, ep.attempt);
    let (dead, origin, try_reprime) = (ep.dead_vsn, ep.origin_host, ep.try_reprime);
    world.obs.record(
        now,
        Event::RecoveryAttempt {
            service: svc.0,
            attempt,
        },
    );

    // In-place re-prime: cheapest path when the host itself survived.
    if try_reprime {
        if let (Some(vsn), Some(host)) = (dead, origin) {
            let host_alive =
                soda_hup::daemon::daemon_for(&world.daemons, host).is_some_and(|d| !d.is_failed());
            if host_alive {
                if let Ok(timing) = world.daemon_mut(host).begin_repriming(vsn) {
                    if let Some(ep) = world
                        .recovery_of_mut(shard)
                        .episodes
                        .iter_mut()
                        .find(|e| e.id == id)
                    {
                        ep.replacement = Some(vsn);
                    }
                    world.obs.record(
                        now,
                        Event::RecoveryPlaced {
                            service: svc.0,
                            vsn: vsn.0,
                            host: u64::from(host.0),
                        },
                    );
                    ctx.schedule_in_as("reprime", timing.total(), move |w: &mut SodaWorld, ctx| {
                        finish_reprime(w, ctx, shard, id, svc, vsn, host);
                    });
                    return;
                }
            }
            // Host gone or blueprint lost: fall through to placement.
            if let Some(ep) = world
                .recovery_of_mut(shard)
                .episodes
                .iter_mut()
                .find(|e| e.id == id)
            {
                ep.try_reprime = false;
            }
        }
    }

    // Replacement placement, steering clear of every host the monitor
    // currently believes is down (a partitioned host is not `failed`,
    // but placing there would strand the replacement). Down beliefs are
    // gathered across every cell in shard order: the home cell tries
    // its own hosts first, then spills fleet-wide if the cell is full.
    let mut down: Vec<HostId> = Vec::new();
    for s in 0..world.shard_count() {
        down.extend(
            world
                .recovery_of(ShardId(s))
                .hosts
                .iter()
                .filter(|(_, s)| s.health == HostHealth::Down)
                .map(|(&h, _)| h),
        );
    }
    let n = world.shard_count();
    let cell = world.cell_range(shard);
    let mut daemons = std::mem::take(&mut world.daemons);
    world
        .master_of_mut(shard)
        .prune_inventory_to(&daemons[cell.clone()]);
    let mut placed = world.master_of_mut(shard).place_recovery_node(
        svc,
        capacity,
        &down,
        &mut daemons[cell],
        now,
    );
    let mut spilled = false;
    if n > 1 && placed.is_err() {
        // Cross-shard spill: the home cell has no room for the
        // replacement, so place it anywhere in the fleet.
        placed =
            world
                .master_of_mut(shard)
                .place_recovery_node(svc, capacity, &down, &mut daemons, now);
        spilled = placed.is_ok();
    }
    world.daemons = daemons;
    // Recovery priming reserved on some cell's host (possibly spilled).
    world.invalidate_admission_indexes();
    if spilled {
        world.shards.spills += 1;
        world.obs.record(
            now,
            Event::ShardSpill {
                service: svc.0,
                from: shard.0,
            },
        );
    }
    match placed {
        Ok((target, ticket)) => {
            let new_vsn = ticket.vsn;
            world.obs.record(
                now,
                Event::RecoveryPlaced {
                    service: svc.0,
                    vsn: new_vsn.0,
                    host: u64::from(target.0),
                },
            );
            // Commit: the successor exists, scrub the dead node.
            if let Some(vsn) = dead {
                let mut daemons = std::mem::take(&mut world.daemons);
                let removed = world
                    .master_of_mut(shard)
                    .remove_node(svc, vsn, &mut daemons, now);
                world.daemons = daemons;
                world.invalidate_admission_indexes();
                if let Some((_, Some(reply))) = removed {
                    world::complete_creation_record(world, now, svc, reply);
                }
            }
            if let Some(ep) = world
                .recovery_of_mut(shard)
                .episodes
                .iter_mut()
                .find(|e| e.id == id)
            {
                ep.dead_vsn = None;
                ep.replacement = Some(new_vsn);
            }
            world.journal_op(now, JournalOp::Recovery, svc);
            world::start_download(world, ctx, target, svc, &ticket);
        }
        Err(_) => schedule_retry(world, ctx, shard, id),
    }
}

/// Back off before the next attempt — or, with the budget exhausted,
/// degrade (and shed) instead.
fn schedule_retry(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, shard: ShardId, id: EpisodeId) {
    let now = ctx.now();
    let Some(ep) = world
        .recovery_of(shard)
        .episodes
        .iter()
        .find(|e| e.id == id)
    else {
        return;
    };
    let (svc, attempt) = (ep.service, ep.attempt);
    let policy = world.recovery_of(shard).cfg.backoff;
    if policy.exhausted(attempt) {
        degrade_or_shed(world, ctx, shard, id);
        return;
    }
    let mgr = world.recovery_of_mut(shard);
    mgr.stats.retries += 1;
    let delay = policy.delay_jittered(attempt.max(1), &mut mgr.rng);
    world.obs.record(
        now,
        Event::RecoveryRetry {
            service: svc.0,
            attempt,
            delay_ms: delay.as_millis(),
        },
    );
    ctx.schedule_in_as("retry", delay, move |w: &mut SodaWorld, ctx| {
        // Generation guard: only fire if the episode is still waiting
        // on this very attempt.
        let live = w
            .recovery_of(shard)
            .episodes
            .iter()
            .any(|e| e.id == id && e.attempt == attempt && e.replacement.is_none());
        if live {
            attempt_recovery(w, ctx, shard, id);
        }
    });
}

/// The backoff budget ran out: declare degradation, shed the lowest
/// strictly-lower-priority service once, then park at the ceiling.
fn degrade_or_shed(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, shard: ShardId, id: EpisodeId) {
    let now = ctx.now();
    let Some(ep) = world
        .recovery_of(shard)
        .episodes
        .iter()
        .find(|e| e.id == id)
    else {
        return;
    };
    let (svc, capacity, shed_done, degraded) = (ep.service, ep.capacity, ep.shed_done, ep.degraded);
    if !degraded {
        if let Some(ep) = world
            .recovery_of_mut(shard)
            .episodes
            .iter_mut()
            .find(|e| e.id == id)
        {
            ep.degraded = true;
        }
        world.recovery_of_mut(shard).stats.degradations += 1;
        world.obs.record(
            now,
            Event::ServiceDegraded {
                service: svc.0,
                capacity: world.master_of(shard).healthy_capacity(svc),
            },
        );
    }
    if !shed_done {
        // Shed victims come from the home cell only: a cell Master has
        // no authority to tear down another cell's services.
        let my_prio = world.recovery_of(shard).priority(svc);
        let victim = world
            .master_of(shard)
            .services()
            .filter(|r| r.id != svc && r.state == ServiceState::Running)
            .filter(|r| r.placed_capacity() > 0)
            .filter(|r| world.recovery_of(shard).priority(r.id) < my_prio)
            .min_by_key(|r| (world.recovery_of(shard).priority(r.id), r.id.0))
            .map(|r| (r.id, r.placed_capacity()));
        if let Some((victim, vcap)) = victim {
            if let Some(ep) = world
                .recovery_of_mut(shard)
                .episodes
                .iter_mut()
                .find(|e| e.id == id)
            {
                ep.shed_done = true;
            }
            let mut daemons = std::mem::take(&mut world.daemons);
            let res = if vcap > capacity {
                world
                    .master_of_mut(shard)
                    .resize(victim, vcap - capacity, &mut daemons, now)
                    .map(|_| ())
            } else {
                world
                    .master_of_mut(shard)
                    .teardown(victim, &mut daemons)
                    .map(|_| ())
            };
            world.daemons = daemons;
            world.invalidate_admission_indexes();
            if res.is_ok() {
                world.recovery_of_mut(shard).stats.sheds += 1;
                world.obs.record(
                    now,
                    Event::ServiceShed {
                        service: svc.0,
                        victim: victim.0,
                    },
                );
                world.journal_op(now, JournalOp::Teardown, victim);
                world.prune_runtimes();
                attempt_recovery(world, ctx, shard, id);
                return;
            }
        }
    }
    // Park: poll again once per ceiling (driven by the heartbeat tick).
    let ceiling = world.recovery_of(shard).cfg.backoff.ceiling;
    if let Some(ep) = world
        .recovery_of_mut(shard)
        .episodes
        .iter_mut()
        .find(|e| e.id == id)
    {
        ep.parked_until = Some(now + ceiling);
    }
}

/// An in-place re-prime finished (or the host died underneath it).
fn finish_reprime(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    shard: ShardId,
    id: EpisodeId,
    svc: ServiceId,
    vsn: VsnId,
    host: HostId,
) {
    let now = ctx.now();
    let live = world
        .recovery_of(shard)
        .episodes
        .iter()
        .any(|e| e.id == id && e.replacement == Some(vsn));
    if !live {
        return;
    }
    let ok = soda_hup::daemon::daemon_for_mut(&mut world.daemons, host)
        .is_some_and(|d| d.complete_priming(vsn, now).is_ok());
    if ok {
        world.master_of_mut(shard).node_recovered(svc, vsn);
        let _ = world.install_runtime(svc, vsn, ExecutionMode::GuestIsolated);
        complete_episode(world, shard, id, svc, vsn, now);
    } else {
        if let Some(ep) = world
            .recovery_of_mut(shard)
            .episodes
            .iter_mut()
            .find(|e| e.id == id)
        {
            ep.replacement = None;
            ep.try_reprime = false;
        }
        schedule_retry(world, ctx, shard, id);
    }
}

fn complete_episode(
    world: &mut SodaWorld,
    shard: ShardId,
    id: EpisodeId,
    svc: ServiceId,
    vsn: VsnId,
    now: SimTime,
) {
    let mgr = world.recovery_of_mut(shard);
    let Some(pos) = mgr.episodes.iter().position(|e| e.id == id) else {
        return;
    };
    let ep = mgr.episodes.remove(pos);
    let latency = now.saturating_since(ep.lost_at);
    mgr.stats.recoveries.push((id, latency));
    world.obs.record(
        now,
        Event::RecoveryCompleted {
            service: svc.0,
            vsn: vsn.0,
            latency_ms: latency.as_millis(),
        },
    );
    world.journal_episode(now, JournalOp::EpisodeClose, svc, id);
    clear_degraded_if_recovered(world, shard, svc, now);
}

fn clear_degraded_if_recovered(
    world: &mut SodaWorld,
    shard: ShardId,
    svc: ServiceId,
    now: SimTime,
) {
    let mgr = world.recovery_of_mut(shard);
    if mgr.episodes.iter().any(|e| e.service == svc) {
        return;
    }
    if let Some(since) = mgr.degraded_since.remove(&svc) {
        let window = now.saturating_since(since);
        let total = mgr.degraded_total.entry(svc).or_insert(SimDuration::ZERO);
        *total = SimDuration::from_nanos(total.as_nanos() + window.as_nanos());
    }
}

/// Hook from the world: a node finished booting. Completes the episode
/// tracking it as a replacement; a no-op otherwise.
pub(crate) fn on_node_boot(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    svc: ServiceId,
    vsn: VsnId,
) {
    if !world.recovery.enabled {
        return;
    }
    let now = ctx.now();
    let shard = world.shard_of_service(svc);
    let Some(id) = world
        .recovery_of(shard)
        .episodes
        .iter()
        .find(|e| e.replacement == Some(vsn))
        .map(|e| e.id)
    else {
        return;
    };
    complete_episode(world, shard, id, svc, vsn, now);
}

/// Hook from the world: a node's priming failed. Requeues the episode
/// tracking it, or — for an ordinary creation/growth node — opens a
/// fresh episode to restore the lost capacity.
pub(crate) fn on_priming_failed(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    svc: ServiceId,
    vsn: VsnId,
    capacity: u32,
) {
    if !world.recovery.enabled {
        return;
    }
    let now = ctx.now();
    let shard = world.shard_of_service(svc);
    if let Some(ep) = world
        .recovery_of_mut(shard)
        .episodes
        .iter_mut()
        .find(|e| e.replacement == Some(vsn))
    {
        ep.replacement = None;
        ep.try_reprime = false;
        let id = ep.id;
        schedule_retry(world, ctx, shard, id);
        return;
    }
    if capacity == 0 {
        return;
    }
    let mgr = world.recovery_of_mut(shard);
    mgr.degraded_since.entry(svc).or_insert(now);
    let id = mgr.new_episode_id();
    mgr.episodes.push(Episode {
        id,
        service: svc,
        capacity,
        lost_at: now,
        dead_vsn: None,
        origin_host: None,
        attempt: 0,
        replacement: None,
        try_reprime: false,
        shed_done: false,
        degraded: false,
        parked_until: None,
    });
    world.journal_episode(now, JournalOp::EpisodeOpen, svc, id);
    attempt_recovery(world, ctx, shard, id);
}

/// The routing invariant: once the control loop *knows* a node is dead
/// (its host declared down, or an episode is open for it), the switch
/// must not keep it healthy. Counts (and records) violations; the
/// pre-detection window, where the switch cannot yet know, is exempt.
pub fn check_invariants(world: &mut SodaWorld) -> u64 {
    let services: Vec<ServiceId> = world.services_all().map(|r| r.id).collect();
    let mut violations = 0u64;
    for svc in services {
        let home = world.shard_of_service(svc);
        let Some(sw) = world.master_of(home).switch(svc) else {
            continue;
        };
        let healthy: Vec<VsnId> = sw
            .backends()
            .iter()
            .filter(|b| b.healthy)
            .map(|b| b.vsn)
            .collect();
        for vsn in healthy {
            let host = world
                .master_of(home)
                .service(svc)
                .and_then(|r| r.node(vsn))
                .map(|n| n.host);
            let alive = host.is_some_and(|h| {
                soda_hup::daemon::daemon_for(&world.daemons, h)
                    .is_some_and(|d| !d.is_failed() && d.vsn(vsn).is_some_and(|v| v.is_running()))
            });
            if alive {
                continue;
            }
            // Beliefs about the node's host live in the *host's* cell;
            // the episode (if any) lives in the service's home cell.
            let known_down = host.is_some_and(|h| {
                world
                    .recovery_of(world.shard_of_host(h))
                    .hosts
                    .get(&h)
                    .is_some_and(|s| s.health == HostHealth::Down)
            }) || world
                .recovery_of(home)
                .episodes
                .iter()
                .any(|e| e.dead_vsn == Some(vsn));
            if known_down {
                violations += 1;
            }
        }
    }
    world.recovery.stats.invariant_violations += violations;
    violations
}
