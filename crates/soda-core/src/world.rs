//! The composed simulation world.
//!
//! `SodaWorld` wires every substrate into one event-driven system: the
//! SODA Agent and Master, one SODA Daemon per HUP host, a
//! processor-sharing NIC per host, the per-VSN traffic shapers, and the
//! request pipeline the paper's client experiments exercise:
//!
//! ```text
//! client ──lan──▶ service switch ──▶ backend VSN
//!                                     │ CPU stage (FIFO, slice-rate,
//!                                     │            guest slowdown)
//!                                     │ traffic shaper (token bucket)
//!                                     ▼
//!                               host NIC (processor sharing) ──▶ client
//! ```
//!
//! Figures 4 and 6 are measurements of this pipeline; the DDoS and
//! attack-isolation experiments perturb it.

use std::collections::HashMap;

use soda_hup::daemon::{PrimingTicket, SodaDaemon};
use soda_hup::host::HostId;
use soda_net::control::ControlPlane;
use soda_net::http::HttpModel;
use soda_net::link::{FlowId, LinkSpec, ProcessorSharingLink};
use soda_sim::{
    CellPort, CellWorld, Ctx, Engine, Event, FaultSpec, Labels, MetricHandle, MetricKind, Obs,
    SimDuration, SimTime, TraceRef,
};
use soda_vmm::intercept::{InterceptCostModel, SlowdownFactors};
use soda_vmm::isolation::{Blast, ExecutionMode, FaultKind};
use soda_vmm::vsn::{VsnId, VsnState};

use crate::agent::SodaAgent;
use crate::api::CreationReply;
use crate::arena::{DenseId, IdMap, RequestTable, WorldStorageKind};
use crate::config::ShardId;
use crate::error::SodaError;
use crate::inflight::InflightTable;
use crate::journal::{EpisodeId, Journal, JournalOp, ServiceSnapshot, WorldSnapshot};
use crate::master::SodaMaster;
use crate::recovery::{self, RecoveryConfig, RecoveryManager};
use crate::service::{ServiceId, ServiceRecord, ServiceSpec};
use crate::shard::{shard_salt, ControlPlaneKind, ShardCell, ShardPlane};
use crate::switch::ServiceSwitch;

/// Per-request CPU work: fixed parsing/handling plus per-byte content
/// work (checksums, copies), in cycles.
const REQUEST_BASE_CYCLES: u64 = 2_500_000;
const REQUEST_CYCLES_PER_BYTE: f64 = 2.0;

/// Switch forwarding work per request, cycles (runs inside the switch's
/// own VSN, so it pays the guest slowdown too).
const SWITCH_FORWARD_CYCLES: u64 = 600_000;

/// How a node executes — VSN (SODA) or directly on the host OS (the
/// Figure 6 baselines).
#[derive(Clone, Copy, Debug)]
struct NodeRuntime {
    host: HostId,
    ip: soda_net::addr::Ipv4Addr,
    /// Effective host CPU rate in Hz (clock × micro-architectural
    /// efficiency). The CPU scheduler is work-conserving, so a node
    /// whose co-tenants are idle serves requests at full host speed —
    /// the condition of the Figure 4/6 experiments.
    host_hz: f64,
    mode: ExecutionMode,
    slowdown: SlowdownFactors,
    cpu_busy_until: SimTime,
}

/// Identifier of one client request within a world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl DenseId for RequestId {
    fn dense(self) -> u64 {
        self.0
    }
    fn from_dense(d: u64) -> Self {
        RequestId(d)
    }
}

/// Callback fired when a request finishes. `None` means the request was
/// dropped (no healthy backend / node crashed mid-flight) — closed-loop
/// clients use it to avoid deadlocking on a lost request.
pub type RequestCallback =
    Box<dyn FnOnce(&mut SodaWorld, &mut Ctx<SodaWorld>, Option<&RequestRecord>)>;

/// Why a flow is on a NIC.
enum FlowPurpose {
    /// A response travelling back to a client.
    Response {
        service: ServiceId,
        vsn: VsnId,
        /// Did this request pass through the service switch (and thus
        /// hold an outstanding slot there)? Direct-dispatch requests
        /// (the Figure 6 baselines) bypass the switch entirely.
        routed: bool,
        issued: SimTime,
        /// When the backend's CPU stage finished (the response span —
        /// shaper wait + NIC transfer — starts here).
        cpu_done: SimTime,
        /// When the shaper released the response onto the NIC (the
        /// `response_transfer` trace phase starts here).
        departed: SimTime,
        dataset: u64,
        request: RequestId,
    },
    /// A service image arriving at a daemon; bootstrap follows.
    Download {
        service: ServiceId,
        vsn: VsnId,
        bootstrap: SimDuration,
        started: SimTime,
    },
    /// DDoS garbage (no completion action).
    Flood,
}

/// Wakeup bookkeeping for one host NIC. Every scheduled pump event
/// carries the generation current at arming time; any mutation that
/// moves the NIC's next completion bumps the generation, so superseded
/// wakeups identify themselves on arrival and are dropped in O(1)
/// instead of re-walking the link (see DESIGN.md §10).
#[derive(Clone, Copy, Debug, Default)]
struct NicArm {
    /// Current wakeup generation; only an event stamped with this value
    /// is allowed to pump.
    gen: u64,
    /// The completion time the live wakeup (if any) is armed for. Lets
    /// re-arming skip scheduling when the target time is unchanged —
    /// the common case when a pump completes flows and the next
    /// completion was already known.
    armed_for: Option<SimTime>,
}

/// One finished client request — the raw material of Figures 4 and 6.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// The request (doubles as the causal-trace key on the `request`
    /// track, so sampled traces join back to their records exactly).
    pub request: RequestId,
    /// The service.
    pub service: ServiceId,
    /// The backend node that served it.
    pub vsn: VsnId,
    /// Client issue time.
    pub issued: SimTime,
    /// Response fully delivered.
    pub completed: SimTime,
    /// Dataset (response body) size.
    pub dataset: u64,
}

impl RequestRecord {
    /// The measured response time.
    pub fn response_time(&self) -> SimDuration {
        self.completed.saturating_since(self.issued)
    }
}

/// A service creation completed (recorded for the driver to inspect).
#[derive(Clone, Debug)]
pub struct CreationRecord {
    /// The reply the Agent would send to the ASP.
    pub reply: CreationReply,
    /// When the service went Running.
    pub at: SimTime,
}

/// How many journal entries accumulate before an inline compacted
/// checkpoint is taken (bounds standby replay length).
pub(crate) const JOURNAL_CHECKPOINT_EVERY: usize = 64;

/// One completed Master failover, recorded for drivers and benches.
#[derive(Clone, Copy, Debug)]
pub struct FailoverRecord {
    /// When the Master process died (first crash of the outage).
    pub crashed_at: SimTime,
    /// When the standby finished replay and reconciliation.
    pub recovered_at: SimTime,
    /// The Master epoch after takeover.
    pub epoch: u64,
    /// Journal entries replayed on top of the checkpoint.
    pub replayed: usize,
    /// Sequence number of the checkpoint replay started from.
    pub checkpoint_seq: u64,
    /// Service records rebuilt from checkpoint ⊕ journal.
    pub restored: usize,
    /// Running nodes adopted as-is from daemon re-registration.
    pub adopted: usize,
    /// Dead nodes scrubbed into fresh (epoch-stamped) episodes.
    pub scrubbed: usize,
    /// Daemon-side VSNs unknown to the rebuilt state, torn down.
    pub duplicates: usize,
    /// Node boots that landed while the Master was down and were
    /// re-driven at takeover.
    pub orphaned_boots: usize,
}

/// Control-plane failover state: whether the Master is currently dead,
/// the standby's timing knobs, and the ledger of past failovers.
#[derive(Debug)]
pub struct FailoverState {
    /// True between a `MasterCrash` fault and standby takeover. While
    /// down, control-plane API calls fail and nothing is journaled; the
    /// data plane (switches, NICs, shapers, daemons) keeps running.
    pub down: bool,
    /// When the current outage started.
    pub crashed_at: Option<SimTime>,
    /// Generation guard for the pending takeover event: a second crash
    /// while down kills the standby mid-replay, restarts its clock and
    /// invalidates the earlier takeover (stale-wakeup pattern).
    takeover_gen: u64,
    /// Boots that completed while the Master was down, re-driven in
    /// arrival order at takeover.
    orphaned_boots: Vec<(ServiceId, VsnId, SimTime)>,
    /// Completed failovers.
    pub records: Vec<FailoverRecord>,
    /// Standby watchdog: how long until the crash is detected.
    pub detection_delay: SimDuration,
    /// Fixed cost for the standby to load the checkpoint.
    pub checkpoint_load: SimDuration,
    /// Replay cost per journal entry on top of the checkpoint.
    pub per_entry_replay: SimDuration,
}

impl Default for FailoverState {
    fn default() -> Self {
        FailoverState {
            down: false,
            crashed_at: None,
            takeover_gen: 0,
            orphaned_boots: Vec::new(),
            records: Vec::new(),
            detection_delay: SimDuration::from_millis(2_000),
            checkpoint_load: SimDuration::from_millis(50),
            per_entry_replay: SimDuration::from_micros(200),
        }
    }
}

/// The composed world. All SODA entities plus the network fabric.
pub struct SodaWorld {
    /// The ASP-facing agent.
    pub agent: SodaAgent,
    /// The coordinator.
    pub master: SodaMaster,
    /// One daemon per HUP host.
    pub daemons: Vec<SodaDaemon>,
    /// Per-host NIC links (100 Mbps LAN ports).
    pub nics: IdMap<HostId, ProcessorSharingLink>,
    /// HTTP sizing model.
    pub http: HttpModel,
    /// Syscall interception model (drives the measured slowdown).
    pub intercept: InterceptCostModel,
    /// Completed client requests.
    pub completed: Vec<RequestRecord>,
    /// Completed service creations.
    pub creations: Vec<CreationRecord>,
    /// Requests that were dropped (no healthy backend).
    pub dropped: u64,
    /// Whether the outbound traffic shaper gates responses. The 2003
    /// prototype's shaper was still being implemented (§4.2), so the §5
    /// client experiments ran without it; set this to `false` to
    /// replicate that condition. Defaults to `true` (full SODA).
    pub shaping_enforced: bool,
    /// Observability handle shared by every entity in the world
    /// (disabled unless [`SodaWorld::enable_obs`] is called).
    pub obs: Obs,
    /// Self-healing control loop state (inert until
    /// [`crate::recovery::start_self_healing`] arms it).
    pub recovery: RecoveryManager,
    /// Write-ahead journal of control-plane state transitions — the
    /// durable medium a warm-standby Master rebuilds from.
    pub journal: Journal,
    /// Master-crash / warm-standby failover state.
    pub failover: FailoverState,
    /// Per-host link impairment windows (partitions, loss) that gate
    /// heartbeats and sever in-flight responses during chaos runs.
    pub control: ControlPlane,
    /// Sharded-control-plane state: the `Monolith`/`Sharded(n)` switch,
    /// the host→cell map, cells 1..n-1 (shard 0 reuses the fields
    /// above), and inter-shard message counters. Defaults to a one-cell
    /// monolith; [`SodaWorld::configure_shards`] re-partitions.
    pub shards: ShardPlane,
    /// Cross-cell endpoint for epoch-synchronized parallel runs
    /// ([`soda_sim::par`]): when this world is one cell of a
    /// multi-cell run, event handlers ship work to sibling cells
    /// through the port and the epoch barrier delivers it. Defaults to
    /// a solo port (single cell, never sends), which is inert in
    /// ordinary serial worlds. See
    /// [`SodaWorld::configure_parallel_cell`].
    pub port: CellPort<SodaWorld>,
    /// Which backend (dense arena or ordered-map oracle) the id-keyed
    /// tables below use. See [`SodaWorld::configure_storage`].
    storage: WorldStorageKind,
    node_runtimes: IdMap<VsnId, NodeRuntime>,
    /// In-flight flows, host-major keyed for deterministic iteration:
    /// faults that sever many flows at once must cancel them in a
    /// reproducible order or the event log diverges across runs of the
    /// same seed. VSN-indexed so node crashes cancel in
    /// O(flows-on-node), not O(all-inflight) — see DESIGN.md §8.
    inflight: InflightTable<FlowPurpose>,
    /// Host → position in `daemons`, built once at construction (hosts
    /// never join or leave a world). Keeps the per-request shaper-admit
    /// path O(1) instead of scanning the daemon list.
    daemon_slots: IdMap<HostId, usize>,
    ready_nodes: IdMap<ServiceId, usize>,
    next_request: u64,
    callbacks: RequestTable<RequestId, RequestCallback>,
    /// Per-host NIC wakeup generations (stale-event elimination).
    nic_arms: IdMap<HostId, NicArm>,
    /// Pool of drained-completion scratch buffers. A pool rather than a
    /// single buffer because a completion callback can start new flows
    /// and re-enter `pump_nic` while an outer pump still owns its
    /// buffer; steady-state depth is the maximum pump nesting, so the
    /// warm path never allocates.
    nic_scratch: Vec<Vec<(FlowId, SimTime)>>,
    /// Interned counter of dropped stale NIC wakeups (lazily interned on
    /// first drop so the obs-on hot path stays zero-alloc).
    stale_wakeup_h: Option<MetricHandle>,
    /// Interned counter of completed Master failovers (lazy, like
    /// `stale_wakeup_h`).
    master_failovers_h: Option<MetricHandle>,
    /// Transient CPU slowdown per host (the `SlowHost` fault): the
    /// factor and when it expires. Overlapping windows merge to the
    /// strongest factor and the latest expiry, and an expiry callback
    /// only clears the entry once its stored until-time has passed — so
    /// an earlier window ending cannot cancel a later one's slowdown.
    host_slow: IdMap<HostId, (f64, SimTime)>,
    /// Armed one-shot priming failures per host: the next `n` image
    /// downloads completing on the host fail instead of booting.
    armed_priming_failures: IdMap<HostId, u32>,
    /// Root trace refs of sampled in-flight requests (entries exist only
    /// while tracing is on and the request was sampled; removed at
    /// delivery or drop, so this never outgrows the in-flight set).
    request_traces: RequestTable<RequestId, TraceRef>,
    /// Root trace refs of sampled in-flight service creations.
    creation_traces: IdMap<ServiceId, TraceRef>,
    /// Open `priming` spans of sampled creations, keyed by node.
    priming_traces: IdMap<VsnId, TraceRef>,
    /// High-water mark of concurrent NIC flows across all hosts. Plain
    /// unconditional bookkeeping: tracked whether or not obs is on, so
    /// the bench trajectory never depends on observability settings.
    pub peak_live_flows: usize,
    /// Requests submitted but not yet delivered or dropped.
    open_requests: u64,
    /// High-water mark of `open_requests`.
    pub peak_open_requests: u64,
    /// Interned gauges for the backpressure signals (lazy, like
    /// `stale_wakeup_h`).
    live_flows_h: Option<MetricHandle>,
    open_requests_h: Option<MetricHandle>,
}

impl CellWorld for SodaWorld {
    fn port(&mut self) -> &mut CellPort<SodaWorld> {
        &mut self.port
    }
}

impl SodaWorld {
    /// A world over the given hosts' daemons, with a 100 Mbps NIC each.
    pub fn new(daemons: Vec<SodaDaemon>) -> Self {
        let storage = WorldStorageKind::default();
        let mut nics = IdMap::new(storage);
        let mut daemon_slots = IdMap::new(storage);
        for (i, d) in daemons.iter().enumerate() {
            nics.insert(
                d.host.id,
                ProcessorSharingLink::new(LinkSpec::lan_100mbps()),
            );
            daemon_slots.insert(d.host.id, i);
        }
        let master = SodaMaster::new();
        // The journal's genesis checkpoint is the empty control plane at
        // epoch 1; everything after is appended transitions.
        let journal = Journal::new(master.snapshot(1), JOURNAL_CHECKPOINT_EVERY);
        let shards = ShardPlane::new(
            ControlPlaneKind::Monolith,
            ShardPlane::DEFAULT_LATENCY,
            daemons.len(),
        );
        SodaWorld {
            agent: SodaAgent::new(1.0),
            master,
            daemons,
            nics,
            http: HttpModel::new(),
            intercept: InterceptCostModel::new(),
            completed: Vec::new(),
            creations: Vec::new(),
            dropped: 0,
            shaping_enforced: true,
            obs: Obs::disabled(),
            recovery: RecoveryManager::default(),
            journal,
            failover: FailoverState::default(),
            control: ControlPlane::new(),
            shards,
            port: CellPort::default(),
            storage,
            node_runtimes: IdMap::new(storage),
            inflight: InflightTable::new(),
            daemon_slots,
            ready_nodes: IdMap::new(storage),
            next_request: 1,
            callbacks: RequestTable::new(storage),
            nic_arms: IdMap::new(storage),
            nic_scratch: Vec::new(),
            stale_wakeup_h: None,
            master_failovers_h: None,
            host_slow: IdMap::new(storage),
            armed_priming_failures: IdMap::new(storage),
            request_traces: RequestTable::new(storage),
            creation_traces: IdMap::new(storage),
            priming_traces: IdMap::new(storage),
            peak_live_flows: 0,
            open_requests: 0,
            peak_open_requests: 0,
            live_flows_h: None,
            open_requests_h: None,
        }
    }

    /// The paper's testbed: *seattle* and *tacoma* on one LAN.
    pub fn testbed() -> Self {
        use soda_hup::host::HupHost;
        use soda_net::pool::IpPool;
        let daemons = vec![
            SodaDaemon::new(HupHost::seattle(
                HostId(1),
                IpPool::new("128.10.9.120".parse().expect("valid"), 8),
            )),
            SodaDaemon::new(HupHost::tacoma(
                HostId(2),
                IpPool::new("128.10.9.128".parse().expect("valid"), 8),
            )),
        ];
        SodaWorld::new(daemons)
    }

    /// Switch on structured observability for the whole world: one
    /// shared handle (ring buffer of `capacity` events, spans, metrics
    /// registry) is propagated to the Master, every switch, every daemon
    /// and every traffic shaper. Call any time; entities created later
    /// (new switches) inherit it. Recording never schedules engine
    /// events or draws randomness, so enabling it cannot perturb a
    /// simulation's trajectory.
    pub fn enable_obs(&mut self, capacity: usize) -> Obs {
        let obs = Obs::enabled(capacity);
        self.master.set_obs(obs.clone());
        for d in &mut self.daemons {
            d.set_obs(obs.clone());
        }
        self.obs = obs.clone();
        for cell in &mut self.shards.cells {
            cell.master.set_obs(obs.clone());
        }
        // Any previously interned handle points into the old registry.
        self.stale_wakeup_h = None;
        self.master_failovers_h = None;
        self.live_flows_h = None;
        self.open_requests_h = None;
        obs
    }

    /// Select the storage backend for the id-keyed hot state. `Arena`
    /// (the default) is the dense generational slab; `Map` keeps the
    /// ordered-map oracle the differential gates replay against. Both
    /// iterate in ascending id order, so the choice can never perturb a
    /// trajectory — the tier-1 gates hold `Arena` ≡ `Map` bit-identical
    /// on trajectory and event fingerprints. Callable at any time
    /// (entries migrate), though benches switch before driving load.
    pub fn configure_storage(&mut self, kind: WorldStorageKind) {
        self.storage = kind;
        self.nics.set_kind(kind);
        self.node_runtimes.set_kind(kind);
        self.daemon_slots.set_kind(kind);
        self.ready_nodes.set_kind(kind);
        self.callbacks.set_kind(kind);
        self.nic_arms.set_kind(kind);
        self.host_slow.set_kind(kind);
        self.armed_priming_failures.set_kind(kind);
        self.request_traces.set_kind(kind);
        self.creation_traces.set_kind(kind);
        self.priming_traces.set_kind(kind);
    }

    /// The active storage backend.
    pub fn storage(&self) -> WorldStorageKind {
        self.storage
    }

    /// Switch the control plane to `kind`, partitioning the host roster
    /// into balanced contiguous cells. Must run before any service is
    /// created: cell Masters start from empty genesis checkpoints and
    /// the id lanes are re-striped. With one cell (`Monolith` or
    /// `Sharded(1)`) this is a no-op and the world stays byte-for-byte
    /// the seed design.
    pub fn configure_shards(&mut self, kind: ControlPlaneKind) {
        self.configure_shards_with(kind, ShardPlane::DEFAULT_LATENCY);
    }

    /// [`SodaWorld::configure_shards`] with an explicit one-way
    /// inter-shard message latency.
    pub fn configure_shards_with(&mut self, kind: ControlPlaneKind, latency: SimDuration) {
        assert!(
            self.creations.is_empty() && self.master.services().next().is_none(),
            "configure_shards must run before any service is created"
        );
        let n = kind.shards();
        self.shards = ShardPlane::new(kind, latency, self.daemons.len());
        if n <= 1 {
            return;
        }
        // Shard 0 reuses the world's own master/journal/recovery fields,
        // re-striped onto id lane {1, 1+n, 1+2n, ...}; its journal is
        // re-seeded so the genesis checkpoint carries the lane counters.
        self.master.set_id_lane(1, n as u64);
        self.journal = Journal::new(self.master.snapshot(1), JOURNAL_CHECKPOINT_EVERY);
        for k in 1..n {
            let mut master = SodaMaster::new();
            master.set_id_lane(k as u64 + 1, n as u64);
            if self.obs.is_enabled() {
                master.set_obs(self.obs.clone());
            }
            let journal = Journal::new(master.snapshot(1), JOURNAL_CHECKPOINT_EVERY);
            let mut cfg = RecoveryConfig::default();
            cfg.seed ^= shard_salt(k);
            self.shards.cells.push(ShardCell {
                master,
                journal,
                recovery: RecoveryManager::new(cfg),
            });
        }
    }

    /// Configure this world as cell `cell` of a `cells`-cell
    /// epoch-synchronized parallel run ([`soda_sim::par`]). Each cell
    /// world holds only its own slice of the host roster; this call
    /// wires the cross-cell port and stripes the Master's id lanes so
    /// service/VSN ids stay globally unique across cell worlds (cell
    /// `k` allocates `{k+1, k+1+cells, ...}` — the same striping the
    /// sharded control plane uses, so ids agree between a `cells`-cell
    /// parallel run and a `Sharded(cells)` monolith run). Must run
    /// before any service is created, for the same reason
    /// [`SodaWorld::configure_shards`] must.
    pub fn configure_parallel_cell(&mut self, cell: u32, cells: u32, lookahead: SimDuration) {
        self.port
            .configure(cell as usize, cells.max(1) as usize, lookahead);
        if cells <= 1 {
            return;
        }
        assert!(
            self.creations.is_empty() && self.master.services().next().is_none(),
            "configure_parallel_cell must run before any service is created"
        );
        self.master.set_id_lane(cell as u64 + 1, cells as u64);
        self.journal = Journal::new(self.master.snapshot(1), JOURNAL_CHECKPOINT_EVERY);
        // This cell only ever sees ids on its own lane, so the
        // VSN/Service-keyed arenas stripe `(id - base) / cells` into
        // dense slots instead of leaving `cells - 1` of every `cells`
        // slots forever empty.
        let stride = cells as u64;
        self.node_runtimes.set_stride(stride);
        self.ready_nodes.set_stride(stride);
        self.creation_traces.set_stride(stride);
        self.priming_traces.set_stride(stride);
    }

    /// Number of placement cells (1 for the monolith).
    pub fn shard_count(&self) -> u32 {
        self.shards.map.count()
    }

    /// The active control-plane kind.
    pub fn control_kind(&self) -> ControlPlaneKind {
        self.shards.kind
    }

    /// Home shard of a service id. Ids are lane-striped — cell `k` of
    /// `n` allocates `{k+1, k+1+n, ...}` — so the home cell is recovered
    /// arithmetically, with no lookup traffic between cells.
    pub fn shard_of_service(&self, service: ServiceId) -> ShardId {
        let n = self.shard_count() as u64;
        if n <= 1 || service.0 == 0 {
            return ShardId(0);
        }
        ShardId(((service.0 - 1) % n) as u32)
    }

    /// Home shard of a VSN id (same lane striping as services).
    pub fn shard_of_vsn(&self, vsn: VsnId) -> ShardId {
        let n = self.shard_count() as u64;
        if n <= 1 || vsn.0 == 0 {
            return ShardId(0);
        }
        ShardId(((vsn.0 - 1) % n) as u32)
    }

    /// The cell owning a host (by roster position).
    pub fn shard_of_host(&self, host: HostId) -> ShardId {
        match self.daemon_slots.get(&host) {
            Some(&slot) => self.shards.map.shard_of_index(slot),
            None => ShardId(0),
        }
    }

    /// The roster index range a cell owns.
    pub fn cell_range(&self, shard: ShardId) -> std::ops::Range<usize> {
        self.shards.map.range(shard)
    }

    /// The Master of cell `shard` (shard 0 is the world's own field).
    pub fn master_of(&self, shard: ShardId) -> &SodaMaster {
        if shard.0 == 0 {
            &self.master
        } else {
            &self.shards.cells[shard.0 as usize - 1].master
        }
    }

    /// Mutable access to cell `shard`'s Master.
    pub fn master_of_mut(&mut self, shard: ShardId) -> &mut SodaMaster {
        if shard.0 == 0 {
            &mut self.master
        } else {
            &mut self.shards.cells[shard.0 as usize - 1].master
        }
    }

    /// Drop every Master's incremental admission index (shard 0 and all
    /// cells). Called wherever host availability changes without going
    /// through a Master — host failure/repair, direct daemon teardowns —
    /// so the next admission on any cell rebuilds from live reports.
    pub fn invalidate_admission_indexes(&mut self) {
        self.master.invalidate_admission_index();
        for cell in &mut self.shards.cells {
            cell.master.invalidate_admission_index();
        }
    }

    /// The Master owning `service`'s record.
    pub fn master_for(&self, service: ServiceId) -> &SodaMaster {
        self.master_of(self.shard_of_service(service))
    }

    /// Mutable access to the Master owning `service`'s record.
    pub fn master_for_mut(&mut self, service: ServiceId) -> &mut SodaMaster {
        self.master_of_mut(self.shard_of_service(service))
    }

    /// Cell `shard`'s journal.
    pub fn journal_of(&self, shard: ShardId) -> &Journal {
        if shard.0 == 0 {
            &self.journal
        } else {
            &self.shards.cells[shard.0 as usize - 1].journal
        }
    }

    /// Mutable access to cell `shard`'s journal.
    pub fn journal_of_mut(&mut self, shard: ShardId) -> &mut Journal {
        if shard.0 == 0 {
            &mut self.journal
        } else {
            &mut self.shards.cells[shard.0 as usize - 1].journal
        }
    }

    /// Cell `shard`'s recovery manager.
    pub fn recovery_of(&self, shard: ShardId) -> &RecoveryManager {
        if shard.0 == 0 {
            &self.recovery
        } else {
            &self.shards.cells[shard.0 as usize - 1].recovery
        }
    }

    /// Mutable access to cell `shard`'s recovery manager.
    pub fn recovery_of_mut(&mut self, shard: ShardId) -> &mut RecoveryManager {
        if shard.0 == 0 {
            &mut self.recovery
        } else {
            &mut self.shards.cells[shard.0 as usize - 1].recovery
        }
    }

    /// The recovery manager owning `service`'s episodes.
    pub fn recovery_for_mut(&mut self, service: ServiceId) -> &mut RecoveryManager {
        self.recovery_of_mut(self.shard_of_service(service))
    }

    /// `service`'s record, wherever it is homed.
    pub fn service_record(&self, service: ServiceId) -> Option<&ServiceRecord> {
        self.master_for(service).service(service)
    }

    /// `service`'s switch, wherever it is homed.
    pub fn switch_for(&self, service: ServiceId) -> Option<&ServiceSwitch> {
        self.master_for(service).switch(service)
    }

    /// Mutable access to `service`'s switch.
    pub fn switch_mut_for(&mut self, service: ServiceId) -> Option<&mut ServiceSwitch> {
        self.master_for_mut(service).switch_mut(service)
    }

    /// Every service record across every cell, in shard order (shard 0
    /// first) — the sharded replacement for `master.services()` scans.
    pub fn services_all(&self) -> impl Iterator<Item = &ServiceRecord> + '_ {
        (0..self.shard_count()).flat_map(move |s| self.master_of(ShardId(s)).services())
    }

    /// Pick the home cell for the next service creation (round-robin).
    /// With one cell the cursor never moves and this is always shard 0.
    pub(crate) fn pick_home_shard(&mut self) -> ShardId {
        let n = self.shard_count();
        if n <= 1 {
            return ShardId(0);
        }
        let s = ShardId(self.shards.next_home % n);
        self.shards.next_home = (self.shards.next_home + 1) % n;
        s
    }

    /// Refresh the backpressure gauges and their high-water marks:
    /// concurrent NIC flows across all hosts and submitted-but-unfinished
    /// requests. The peaks are plain fields (always tracked); the gauges
    /// are lazily interned and only touched when obs is on.
    fn note_backpressure(&mut self) {
        let flows = self.inflight.len();
        self.peak_live_flows = self.peak_live_flows.max(flows);
        self.peak_open_requests = self.peak_open_requests.max(self.open_requests);
        if !self.obs.is_enabled() {
            return;
        }
        if self.live_flows_h.is_none() {
            self.live_flows_h =
                self.obs
                    .intern("world", "live_flows", Labels::none(), MetricKind::Gauge);
            self.open_requests_h =
                self.obs
                    .intern("world", "open_requests", Labels::none(), MetricKind::Gauge);
        }
        if let Some(h) = self.live_flows_h {
            self.obs.gauge_set_h(h, flows as f64);
        }
        if let Some(h) = self.open_requests_h {
            self.obs.gauge_set_h(h, self.open_requests as f64);
        }
    }

    /// How many stale NIC wakeups have been dropped (0 when obs is off
    /// or none were dropped). Stale drops are pure event-queue hygiene:
    /// counting them must never perturb the trajectory.
    pub fn stale_nic_wakeups(&self) -> u64 {
        use soda_sim::MetricValue;
        match self.obs.snapshot().and_then(|s| {
            s.find("world.nic_stale_wakeups", &[])
                .map(|m| m.value.clone())
        }) {
            Some(MetricValue::Counter(n)) => n,
            _ => 0,
        }
    }

    /// True while the Master process is dead and the standby has not
    /// yet taken over. The data plane keeps running; control-plane API
    /// calls fail with [`SodaError::MasterUnavailable`].
    pub fn master_is_down(&self) -> bool {
        self.failover.down
    }

    /// Journal one state transition of `service`, capturing the full
    /// post-transition record (replay is last-writer-wins per service).
    /// No-ops while the Master is down: a dead process writes nothing.
    pub(crate) fn journal_op(&mut self, now: SimTime, op: JournalOp, service: ServiceId) {
        let shard = self.shard_of_service(service);
        if shard.0 == 0 && self.failover.down {
            return;
        }
        let master = self.master_of(shard);
        let record = master.service(service).map(ServiceSnapshot::capture);
        let counters = master.id_counters();
        self.journal_of_mut(shard)
            .append(now, op, service, None, record, counters);
    }

    /// Journal a recovery-episode lifecycle edge (open/close/cancel).
    /// Carries no record snapshot — episode edges never mutate records.
    pub(crate) fn journal_episode(
        &mut self,
        now: SimTime,
        op: JournalOp,
        service: ServiceId,
        id: EpisodeId,
    ) {
        let shard = self.shard_of_service(service);
        if shard.0 == 0 && self.failover.down {
            return;
        }
        let counters = self.master_of(shard).id_counters();
        self.journal_of_mut(shard)
            .append(now, op, service, Some(id), None, counters);
    }

    /// Capture the control-plane state as a serde round-trippable
    /// snapshot: Master records and id counters at the journal's
    /// current epoch, plus the recovery manager including its exact
    /// RNG position. Shard-0 scoped: under `Sharded(n>1)` this captures
    /// cell 0 only (each cell's durability story is its own journal).
    pub fn snapshot_world(&self, now: SimTime) -> WorldSnapshot {
        WorldSnapshot {
            at_ns: now.as_nanos(),
            master: self.master.snapshot(self.journal.epoch()),
            recovery: self.recovery.snapshot(),
        }
    }

    /// Restore control-plane state from a snapshot, making it the new
    /// journal genesis. Data-plane state (daemons, NICs, in-flight
    /// flows) is untouched: a restore models a standby picking up from
    /// durable state against live hardware, and a restored world must
    /// continue fingerprint-identically to one that never restored.
    pub fn restore_world(&mut self, snap: &WorldSnapshot) {
        self.master.restore_control(&snap.master);
        let cfg = self.recovery.cfg;
        self.recovery = RecoveryManager::restore(cfg, &snap.recovery);
        self.journal = Journal::new(snap.master.clone(), JOURNAL_CHECKPOINT_EVERY);
    }

    pub(crate) fn daemon_mut(&mut self, host: HostId) -> &mut SodaDaemon {
        let slot = *self.daemon_slots.get(&host).expect("host exists");
        &mut self.daemons[slot]
    }

    #[cfg(test)]
    fn daemon(&self, host: HostId) -> &SodaDaemon {
        self.daemons
            .iter()
            .find(|d| d.host.id == host)
            .expect("host exists")
    }

    /// Register runtime state for a node once it is running. `mode`
    /// selects VSN execution (measured slowdown from the interception
    /// model) or host-direct (no slowdown). Returns `false` (and records
    /// a failure event) when the service, node, or its address is gone —
    /// a chaos run can legitimately race a fault into this window.
    pub(crate) fn install_runtime(
        &mut self,
        service: ServiceId,
        vsn: VsnId,
        mode: ExecutionMode,
    ) -> bool {
        let placed = match self.service_record(service).and_then(|r| r.node(vsn)) {
            Some(p) => *p,
            None => return false,
        };
        let Some(d) = soda_hup::daemon::daemon_for(&self.daemons, placed.host) else {
            return false;
        };
        let Some(ip) = d.vsn(vsn).and_then(|v| v.ip) else {
            return false;
        };
        let host_hz = d.host.profile.cpu.freq_hz() as f64 * d.host.profile.cpu_efficiency;
        let slowdown = match mode {
            ExecutionMode::GuestIsolated => SlowdownFactors::measured_web(&self.intercept),
            ExecutionMode::HostDirect => SlowdownFactors::NONE,
        };
        self.node_runtimes.insert(
            vsn,
            NodeRuntime {
                host: placed.host,
                ip,
                host_hz,
                mode,
                slowdown,
                cpu_busy_until: SimTime::ZERO,
            },
        );
        true
    }

    /// Force a node to host-direct execution (the Figure 6 baselines).
    pub fn set_execution_mode(&mut self, service: ServiceId, vsn: VsnId, mode: ExecutionMode) {
        let _ = self.install_runtime(service, vsn, mode);
    }

    /// Forget a node's runtime (it can no longer serve requests).
    pub(crate) fn remove_runtime(&mut self, vsn: VsnId) {
        self.node_runtimes.remove(&vsn);
    }

    /// Drop runtimes whose node no longer appears in any service record
    /// (e.g. after a shed tears a victim service down).
    pub(crate) fn prune_runtimes(&mut self) {
        let keep: std::collections::HashSet<VsnId> = self
            .services_all()
            .flat_map(|r| r.nodes.iter().map(|n| n.vsn))
            .collect();
        self.node_runtimes.retain(|v, _| keep.contains(&v));
    }

    /// CPU service time for one request of `dataset` bytes on `vsn`.
    /// Work-conserving: with co-tenants idle (the measured condition),
    /// the node runs at full host speed; the reserved slice is a floor,
    /// not a ceiling.
    fn cpu_time(&self, vsn: VsnId, dataset: u64) -> SimDuration {
        let rt = &self.node_runtimes[&vsn];
        let cycles = REQUEST_BASE_CYCLES + (dataset as f64 * REQUEST_CYCLES_PER_BYTE) as u64;
        let base = SimDuration::from_secs_f64(cycles as f64 / rt.host_hz);
        let slow = self.host_slow.get(&rt.host).map_or(1.0, |&(f, _)| f);
        rt.slowdown.inflate_cpu(base).mul_f64(slow)
    }

    /// Response-time records for one backend, after a warm-up cutoff.
    pub fn records_for(&self, vsn: VsnId, after: SimTime) -> Vec<&RequestRecord> {
        self.completed
            .iter()
            .filter(|r| r.vsn == vsn && r.issued >= after)
            .collect()
    }

    /// Mean response time (seconds) for one backend after `after`.
    pub fn mean_response(&self, vsn: VsnId, after: SimTime) -> f64 {
        let recs = self.records_for(vsn, after);
        if recs.is_empty() {
            return 0.0;
        }
        recs.iter()
            .map(|r| r.response_time().as_secs_f64())
            .sum::<f64>()
            / recs.len() as f64
    }
}

// ---------------------------------------------------------------------
// Engine-driven operations. These are free functions over the engine so
// event closures can re-enter them.
// ---------------------------------------------------------------------

/// The scheduled half of the NIC pump: runs at a completion time armed
/// by [`rearm_nic`], carrying the generation current when it was armed.
/// A stale generation means the NIC's schedule moved after this event
/// was queued (new flow arrived, earlier pump already handled the
/// completion) — the event drops itself in O(1), touching nothing but a
/// metrics counter, instead of re-walking the link.
fn pump_nic_event(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, host: HostId, gen: u64) {
    let live = world.nic_arms.get(&host).map_or(0, |a| a.gen);
    if live != gen {
        if world.stale_wakeup_h.is_none() {
            world.stale_wakeup_h = world.obs.intern(
                "world",
                "nic_stale_wakeups",
                Labels::none(),
                MetricKind::Counter,
            );
        }
        if let Some(h) = world.stale_wakeup_h {
            world.obs.counter_add_h(h, 1);
        }
        return;
    }
    if let Some(arm) = world.nic_arms.get_mut(&host) {
        arm.armed_for = None;
    }
    pump_nic(world, ctx, host);
}

/// Re-arm the wakeup for `host`'s next flow completion, bumping the
/// generation so any wakeup armed earlier is dead on arrival. Arming is
/// skipped when a live wakeup already targets the same instant — the
/// common case when a pump drains one completion and the following
/// completion time was already armed.
fn rearm_nic(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, host: HostId) {
    let next = world.nics[&host].next_completion();
    let arm = world.nic_arms.entry(host).or_default();
    match next {
        Some(t) => {
            if arm.armed_for == Some(t) {
                return;
            }
            arm.gen += 1;
            arm.armed_for = Some(t);
            let gen = arm.gen;
            ctx.schedule_at_as("nic_pump", t, move |w: &mut SodaWorld, ctx| {
                pump_nic_event(w, ctx, host, gen);
            });
        }
        None => {
            // Idle link: invalidate whatever wakeup may be in flight.
            if arm.armed_for.take().is_some() {
                arm.gen += 1;
            }
        }
    }
}

/// Kick the NIC of `host`: advance the fluid state, finalise any flows
/// that completed, and re-arm a wakeup for the next completion.
fn pump_nic(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, host: HostId) {
    let now = ctx.now();
    let latency = {
        let nic = world.nics.get_mut(&host).expect("nic exists");
        nic.advance(now);
        nic.spec().latency
    };
    // Completion callbacks can start flows and re-enter this function,
    // so the scratch buffer comes from a pool rather than a single slot.
    let mut completed = world.nic_scratch.pop().unwrap_or_default();
    world
        .nics
        .get_mut(&host)
        .expect("nic exists")
        .drain_completed_into(&mut completed);
    for (flow, finish) in completed.drain(..) {
        let Some(purpose) = world.inflight.remove(host, flow) else {
            continue;
        };
        match purpose {
            FlowPurpose::Response {
                service,
                vsn,
                routed,
                issued,
                cpu_done,
                departed,
                dataset,
                request,
            } => {
                let delivered = finish + latency;
                let record = RequestRecord {
                    request,
                    service,
                    vsn,
                    issued,
                    completed: delivered,
                    dataset,
                };
                world.completed.push(record);
                world.obs.span_record(
                    "request",
                    "response",
                    Labels::two("service", service.0, "vsn", vsn.0),
                    cpu_done,
                    delivered,
                );
                if let Some(tr) = world.request_traces.remove(&request) {
                    world
                        .obs
                        .trace_child(Some(tr), "response_transfer", departed, delivered);
                    world.obs.trace_close(Some(tr), delivered);
                }
                world.open_requests = world.open_requests.saturating_sub(1);
                if routed {
                    if let Some(sw) = world.switch_mut_for(service) {
                        sw.complete(vsn, delivered.saturating_since(issued), delivered);
                    }
                }
                if let Some(cb) = world.callbacks.remove(&request) {
                    cb(world, ctx, Some(&record));
                }
            }
            FlowPurpose::Download {
                service,
                vsn,
                bootstrap,
                started,
            } => {
                // An armed priming fault corrupts the image as it lands:
                // the boot never starts and the node is scrubbed.
                let armed = world
                    .armed_priming_failures
                    .get(&host)
                    .copied()
                    .unwrap_or(0);
                if armed > 0 {
                    world.armed_priming_failures.insert(host, armed - 1);
                    fail_priming(world, ctx, service, vsn, host);
                } else {
                    // Image is on local disk; bootstrap now runs.
                    let now = ctx.now();
                    let ptr = world.priming_traces.get(&vsn).copied();
                    world.obs.trace_child(ptr, "image_download", started, now);
                    world
                        .obs
                        .trace_child(ptr, "bootstrap", now, now + bootstrap);
                    ctx.schedule_in_as("node_boot", bootstrap, move |w: &mut SodaWorld, ctx| {
                        finish_node_boot(w, ctx, service, vsn, started);
                    });
                }
            }
            FlowPurpose::Flood => {}
        }
    }
    world.nic_scratch.push(completed);
    world.note_backpressure();
    rearm_nic(world, ctx, host);
}

/// Put a flow on a host NIC and arm the pump.
fn start_flow(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    host: HostId,
    bytes: u64,
    purpose: FlowPurpose,
) {
    let now = ctx.now();
    let flow = world
        .nics
        .get_mut(&host)
        .expect("nic exists")
        .add_flow(bytes, now);
    // Only response flows are indexed by VSN: a node crash cancels its
    // responses, while downloads and floods die with their host.
    let vsn_tag = match &purpose {
        FlowPurpose::Response { vsn, .. } => Some(*vsn),
        FlowPurpose::Download { .. } | FlowPurpose::Flood => None,
    };
    world.inflight.insert(host, flow, vsn_tag, purpose);
    world.note_backpressure();
    // Zero-byte flows complete instantly; pump right away. Otherwise arm
    // at the (possibly moved) next completion.
    pump_nic(world, ctx, host);
}

fn finish_node_boot(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
    started: SimTime,
) {
    let now = ctx.now();
    // The Master is dead: nobody is listening for node-ready. Buffer
    // the boot (priming trace stays open) and re-drive it at takeover.
    // Only shard 0's Master participates in failover drills; a foreign
    // cell's boots are never blocked by shard 0 being down.
    if world.failover.down && world.shard_of_service(service).0 == 0 {
        world.failover.orphaned_boots.push((service, vsn, started));
        return;
    }
    let elapsed = now.saturating_since(started);
    if let Some(p) = world.priming_traces.remove(&vsn) {
        world.obs.trace_close(Some(p), now);
    }
    // A node booting for a service that already has a switch is a
    // resize-growth or failover replacement: it joins the running
    // service instead of completing a creation.
    if world.switch_for(service).is_some() {
        let mut daemons = std::mem::take(&mut world.daemons);
        let r = world
            .master_for_mut(service)
            .resize_node_ready(service, vsn, &mut daemons, now);
        world.daemons = daemons;
        match r {
            Ok(()) => {
                let _ = world.install_runtime(service, vsn, ExecutionMode::GuestIsolated);
                world.journal_op(now, JournalOp::Priming, service);
                recovery::on_node_boot(world, ctx, service, vsn);
            }
            Err(_) => {
                world.obs.record(
                    now,
                    Event::MasterOpFailed {
                        service: service.0,
                        vsn: vsn.0,
                        op: "resize_node_ready",
                    },
                );
                recovery::on_priming_failed(world, ctx, service, vsn, 0);
            }
        }
        return;
    }
    // Split borrows: pull daemons out, call master, put back.
    let mut daemons = std::mem::take(&mut world.daemons);
    let reply = world
        .master_for_mut(service)
        .node_ready(service, vsn, &mut daemons, now, elapsed);
    world.daemons = daemons;
    match reply {
        Ok(Some(reply)) => {
            complete_creation_record(world, now, service, reply);
            world.journal_op(now, JournalOp::Priming, service);
            recovery::on_node_boot(world, ctx, service, vsn);
        }
        Ok(None) => {
            world
                .ready_nodes
                .entry(service)
                .and_modify(|n| *n += 1)
                .or_insert(1);
            world.journal_op(now, JournalOp::Priming, service);
            recovery::on_node_boot(world, ctx, service, vsn);
        }
        Err(_) => {
            world.obs.record(
                now,
                Event::MasterOpFailed {
                    service: service.0,
                    vsn: vsn.0,
                    op: "node_ready",
                },
            );
            recovery::on_priming_failed(world, ctx, service, vsn, 0);
        }
    }
}

/// Finalise a completed creation: install every node's runtime, start
/// billing, and record the reply for the driver.
pub(crate) fn complete_creation_record(
    world: &mut SodaWorld,
    now: SimTime,
    service: ServiceId,
    reply: CreationReply,
) {
    let Some(rec) = world.service_record(service) else {
        return;
    };
    let nodes: Vec<VsnId> = rec.nodes.iter().map(|n| n.vsn).collect();
    let asp = rec.asp.clone();
    let capacity = rec.placed_capacity();
    for n in nodes {
        let _ = world.install_runtime(service, n, ExecutionMode::GuestIsolated);
    }
    if let Some(tr) = world.creation_traces.remove(&service) {
        world.obs.trace_close(Some(tr), now);
    }
    world.agent.billing_start(service, &asp, capacity, now);
    world.creations.push(CreationRecord { reply, at: now });
}

/// Begin an engine-driven service creation: admission now, then per-node
/// image download (a flow on the node's host NIC) followed by the
/// bootstrap stages. Completion is visible in `world.creations`.
pub fn create_service_driven(
    engine: &mut Engine<SodaWorld>,
    spec: ServiceSpec,
    asp: &str,
) -> Result<ServiceId, SodaError> {
    let now = engine.now();
    let world = engine.state_mut();
    let home = world.pick_home_shard();
    // Failover drills target shard 0's Master; other cells stay up.
    if world.failover.down && home.0 == 0 {
        return Err(SodaError::MasterUnavailable);
    }
    let n = world.shard_count();
    let cell = world.cell_range(home);
    // Keep a copy for the fleet-wide retry if the home cell is full.
    let retry_spec = (n > 1).then(|| spec.clone());
    let mut daemons = std::mem::take(&mut world.daemons);
    // The home Master's inventory may hold stale reports for foreign
    // hosts from an earlier spill; prune so cell-restricted placement
    // can only choose hosts it was actually handed. No-op for n = 1.
    world
        .master_of_mut(home)
        .prune_inventory_to(&daemons[cell.clone()]);
    let mut outcome = world
        .master_of_mut(home)
        .admit(spec, asp, &mut daemons[cell], now);
    let mut spilled = false;
    if n > 1 {
        if let Err(SodaError::AdmissionRejected { .. }) = outcome {
            // Cross-shard spill: the home cell is full, so the home
            // Master re-places over the whole fleet.
            outcome = world.master_of_mut(home).admit(
                retry_spec.expect("cloned when n > 1"),
                asp,
                &mut daemons,
                now,
            );
            spilled = outcome.is_ok();
        }
    }
    world.daemons = daemons;
    let outcome = outcome?;
    let service = outcome.service;
    if spilled {
        world.shards.spills += 1;
        world.obs.record(
            now,
            Event::ShardSpill {
                service: service.0,
                from: home.0,
            },
        );
    }
    world.journal_op(now, JournalOp::Admission, service);
    // Admission and placement both resolved synchronously inside
    // `Master::admit`, so a sampled creation trace records them as
    // zero-width phases at `now`; each node then gets an open `priming`
    // phase closed when its bootstrap finishes (or its priming fails).
    let trace = world
        .obs
        .trace_begin("creation", "creation", service.0, now);
    if let Some(tr) = trace {
        world.obs.trace_child(Some(tr), "admission", now, now);
        world.obs.trace_child(Some(tr), "placement", now, now);
        world.creation_traces.insert(service, tr);
    }
    let downloads: Vec<(HostId, VsnId, SimDuration, u64)> = outcome
        .tickets
        .iter()
        .map(|(host, t)| {
            (
                *host,
                t.vsn,
                t.timing.total(),
                world.http.download_bytes(t.download_bytes),
            )
        })
        .collect();
    for &(_, vsn, _, _) in &downloads {
        if let Some(p) = world.obs.trace_open_child(trace, "priming", now) {
            world.priming_traces.insert(vsn, p);
        }
    }
    // A spilled creation pays one inter-shard reservation round trip
    // before its priming can start on foreign hosts.
    let start_at = if spilled {
        let world = engine.state_mut();
        now + world.shards.latency + world.shards.latency
    } else {
        now
    };
    for (host, vsn, bootstrap, bytes) in downloads {
        engine.schedule_at_as("start_download", start_at, move |w: &mut SodaWorld, ctx| {
            start_flow(
                w,
                ctx,
                host,
                bytes,
                FlowPurpose::Download {
                    service,
                    vsn,
                    bootstrap,
                    started: ctx.now(),
                },
            );
        });
    }
    Ok(service)
}

/// Drive a resize through the engine. In-place widenings and removals
/// from [`Master::resize`] take effect immediately; freshly placed
/// nodes pay their image download and bootstrap exactly like creation,
/// so a fault can land while the resize is still in flight.
pub fn resize_service_driven(
    engine: &mut Engine<SodaWorld>,
    service: ServiceId,
    new_instances: u32,
) -> Result<(), SodaError> {
    let now = engine.now();
    let world = engine.state_mut();
    if world.failover.down && world.shard_of_service(service).0 == 0 {
        return Err(SodaError::MasterUnavailable);
    }
    let mut daemons = std::mem::take(&mut world.daemons);
    // Resizes place fleet-wide: the service may already be spilled.
    let outcome = world
        .master_for_mut(service)
        .resize(service, new_instances, &mut daemons, now);
    world.daemons = daemons;
    // A spilled service's slices may sit on other cells' hosts.
    world.invalidate_admission_indexes();
    let outcome = outcome?;
    world.journal_op(now, JournalOp::Resize, service);
    // Shrinks may have removed nodes the data plane still references.
    world.prune_runtimes();
    for (host, ticket) in outcome.tickets {
        engine.schedule_at_as("start_download", now, move |w: &mut SodaWorld, ctx| {
            start_download(w, ctx, host, service, &ticket);
        });
    }
    Ok(())
}

/// Submit one client request to a service through its switch. The
/// response is recorded in `world.completed` when fully delivered.
pub fn submit_request(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    dataset: u64,
) {
    submit_request_with_callback(world, ctx, service, dataset, None);
}

/// Like [`submit_request`], but fires `callback` when the response is
/// delivered (`Some(record)`) or the request is lost (`None`). This is
/// the hook closed-loop (siege-style) clients use.
pub fn submit_request_with_callback(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    dataset: u64,
    callback: Option<RequestCallback>,
) {
    let issued = ctx.now();
    let request = RequestId(world.next_request);
    world.next_request += 1;
    if let Some(tr) = world
        .obs
        .trace_begin("request", "request", request.0, issued)
    {
        world.request_traces.insert(request, tr);
    }
    world.open_requests += 1;
    world.note_backpressure();
    if let Some(cb) = callback {
        world.callbacks.insert(request, cb);
    }
    // Client → switch hop.
    let lan_latency = SimDuration::from_micros(200);
    // Switch routes.
    let Some(sw) = world.switch_mut_for(service) else {
        drop_request(world, ctx, request);
        return;
    };
    let Some(idx) = sw.route(issued) else {
        drop_request(world, ctx, request);
        return;
    };
    let vsn = sw.backends()[idx].vsn;
    let colocated = sw.colocated_on;
    // Switch forwarding cost (runs in the switch's VSN: pays slowdown).
    let switch_rt = world.node_runtimes.get(&colocated);
    let switch_cycles_time = match switch_rt {
        Some(rt) => {
            let base = SimDuration::from_secs_f64(SWITCH_FORWARD_CYCLES as f64 / rt.host_hz);
            rt.slowdown.inflate_cpu(base)
        }
        None => SimDuration::from_micros(100),
    };
    let forward = lan_latency + switch_cycles_time + lan_latency;
    dispatch_to_backend(
        world, ctx, service, vsn, true, issued, forward, dataset, request,
    );
}

/// Submit one request directly to a node, bypassing the switch (the
/// Figure 6 scenario (3) baseline).
pub fn submit_request_direct(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
    dataset: u64,
) {
    let issued = ctx.now();
    let request = RequestId(world.next_request);
    world.next_request += 1;
    if let Some(tr) = world
        .obs
        .trace_begin("request", "request", request.0, issued)
    {
        world.request_traces.insert(request, tr);
    }
    world.open_requests += 1;
    world.note_backpressure();
    let forward = SimDuration::from_micros(200); // client → server, one hop
    dispatch_to_backend(
        world, ctx, service, vsn, false, issued, forward, dataset, request,
    );
}

/// Count a drop and fire the request's callback with `None`. Also the
/// single place a lost request's trace root is closed (at the drop
/// instant — its phases then legitimately do not span a full response).
fn drop_request(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, request: RequestId) {
    world.dropped += 1;
    world.open_requests = world.open_requests.saturating_sub(1);
    if let Some(tr) = world.request_traces.remove(&request) {
        world.obs.trace_close(Some(tr), ctx.now());
    }
    if let Some(cb) = world.callbacks.remove(&request) {
        cb(world, ctx, None);
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch_to_backend(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
    routed: bool,
    issued: SimTime,
    forward: SimDuration,
    dataset: u64,
    request: RequestId,
) {
    let now = ctx.now();
    let reachable = world
        .node_runtimes
        .get(&vsn)
        .is_some_and(|rt| !world.control.is_partitioned(u64::from(rt.host.0), now));
    if !reachable {
        // Node crashed, never installed, or unreachable: request lost.
        if routed {
            if let Some(sw) = world.switch_mut_for(service) {
                sw.abort(vsn, now);
            }
        }
        world.obs.record(
            now,
            Event::RequestFailed {
                service: service.0,
                vsn: vsn.0,
            },
        );
        drop_request(world, ctx, request);
        return;
    }
    let cpu_time = world.cpu_time(vsn, dataset);
    let rt = world.node_runtimes.get_mut(&vsn).expect("checked");
    let arrive = now + forward;
    let start = arrive.max(rt.cpu_busy_until);
    let done_cpu = start + cpu_time;
    rt.cpu_busy_until = done_cpu;
    let host = rt.host;
    let ip = rt.ip;
    let net_slow = rt.slowdown.network;
    if world.obs.is_enabled() {
        // The per-request lifecycle is fully determined here (the CPU
        // stage is FIFO), so the queue and service spans are recorded up
        // front rather than via extra engine events.
        let labels = Labels::two("service", service.0, "vsn", vsn.0);
        world
            .obs
            .span_record("request", "queue", labels, arrive, start);
        world
            .obs
            .span_record("request", "guest_service", labels, start, done_cpu);
        // Same for a sampled trace: the first three critical-path phases
        // (route spans switch forwarding, queue the CPU wait, service
        // the CPU stage) are contiguous from issue to CPU completion.
        let tr = world.request_traces.get(&request).copied();
        world.obs.trace_child(tr, "route", issued, arrive);
        world.obs.trace_child(tr, "queue", arrive, start);
        world.obs.trace_child(tr, "guest_service", start, done_cpu);
    }
    let wire_bytes = (world.http.response_bytes(dataset) as f64 * net_slow) as u64;
    ctx.schedule_at_as("cpu_done", done_cpu, move |w: &mut SodaWorld, ctx| {
        // The node may have died (or its link partitioned) while the
        // request was in its CPU stage: the response is lost, and the
        // drop is counted rather than silently vanishing.
        if !w.node_runtimes.contains_key(&vsn)
            || w.control.is_partitioned(u64::from(host.0), ctx.now())
        {
            if routed {
                if let Some(sw) = w.switch_mut_for(service) {
                    sw.abort(vsn, ctx.now());
                }
            }
            w.obs.record(
                ctx.now(),
                Event::RequestFailed {
                    service: service.0,
                    vsn: vsn.0,
                },
            );
            drop_request(w, ctx, request);
            return;
        }
        // Shaper gates the response's entry onto the NIC (unless the
        // world replicates the pre-shaper 2003 prototype).
        let depart = if w.shaping_enforced {
            w.daemon_mut(host)
                .host
                .shaper
                .admit(ip.as_u32(), wire_bytes, ctx.now())
        } else {
            ctx.now()
        };
        if depart == SimTime::MAX {
            // Zero-rate shaping: response never leaves.
            if routed {
                if let Some(sw) = w.switch_mut_for(service) {
                    sw.abort(vsn, ctx.now());
                }
            }
            drop_request(w, ctx, request);
            return;
        }
        let tr = w.request_traces.get(&request).copied();
        w.obs.trace_child(tr, "shaper_wait", done_cpu, depart);
        ctx.schedule_at_as("response_depart", depart, move |w: &mut SodaWorld, ctx| {
            start_flow(
                w,
                ctx,
                host,
                wire_bytes,
                FlowPurpose::Response {
                    service,
                    vsn,
                    routed,
                    issued,
                    cpu_done: done_cpu,
                    departed: ctx.now(),
                    dataset,
                    request,
                },
            );
        });
    });
}

/// Launch a remote attack against a node of `service`. The blast radius
/// follows the node's execution mode (§2.1's ghttpd scenario).
pub fn attack_node(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
    fault: FaultKind,
) -> Blast {
    let Some(rt) = world.node_runtimes.get(&vsn) else {
        return Blast::of(ExecutionMode::GuestIsolated, fault);
    };
    let mode = rt.mode;
    let host = rt.host;
    let blast = Blast::of(mode, fault);
    if blast.service_down {
        crash_one(world, ctx, service, vsn);
    }
    if blast.cohosted_down {
        // Host-level compromise: every node on the host falls.
        let victims: Vec<(ServiceId, VsnId)> = world
            .services_all()
            .flat_map(|rec| {
                rec.nodes
                    .iter()
                    .filter(|n| n.host == host && n.vsn != vsn)
                    .map(move |n| (rec.id, n.vsn))
            })
            .collect();
        for (svc, victim) in victims {
            crash_one(world, ctx, svc, victim);
        }
    }
    blast
}

fn crash_one(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, service: ServiceId, vsn: VsnId) {
    let now = ctx.now();
    let Some(rec) = world.service_record(service) else {
        return;
    };
    let Some(host) = rec.node(vsn).map(|n| n.host) else {
        return;
    };
    let _ = world.daemon_mut(host).crash_vsn(vsn, now);
    world.master_for_mut(service).node_crashed(service, vsn);
    world.node_runtimes.remove(&vsn);
    drop_inflight_on_vsn(world, ctx, vsn);
}

/// Cancel a set of in-flight flows, accounting honestly for what they
/// carried: responses count as dropped requests (callback fired with
/// `None`, switch slot released, `RequestFailed` recorded); downloads
/// fail the node's priming outright — the node is scrubbed and the
/// recovery loop (when armed) re-places the lost capacity, so a severed
/// download can never leave a node stuck in `Priming`; floods just
/// vanish.
fn cancel_flows(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    victims: Vec<((HostId, FlowId), FlowPurpose)>,
) {
    let now = ctx.now();
    for ((host, _), purpose) in victims {
        match purpose {
            FlowPurpose::Response {
                service,
                vsn,
                routed,
                request,
                ..
            } => {
                if routed {
                    if let Some(sw) = world.switch_mut_for(service) {
                        sw.abort(vsn, now);
                    }
                }
                world.obs.record(
                    now,
                    Event::RequestFailed {
                        service: service.0,
                        vsn: vsn.0,
                    },
                );
                drop_request(world, ctx, request);
            }
            FlowPurpose::Download { service, vsn, .. } => {
                fail_priming(world, ctx, service, vsn, host);
            }
            FlowPurpose::Flood => {}
        }
    }
}

/// Sever every in-flight flow on a host (the host crashed or its link
/// was partitioned). The NIC's fluid state keeps draining the bytes;
/// only the completion action is cancelled.
pub(crate) fn drop_inflight_on_host(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, host: HostId) {
    let victims = world.inflight.drain_host(host);
    cancel_flows(world, ctx, victims);
}

/// Sever in-flight responses originating from one VSN. O(flows-on-node)
/// via the VSN index; cancellation order is the same ascending
/// `(host, flow)` order the pre-index full scan produced.
pub(crate) fn drop_inflight_on_vsn(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, vsn: VsnId) {
    let victims = world.inflight.drain_vsn(vsn);
    cancel_flows(world, ctx, victims);
}

/// Begin an image download for a freshly placed node: a flow on the
/// target host's NIC, bootstrap scheduled when it lands.
pub(crate) fn start_download(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    target: HostId,
    service: ServiceId,
    ticket: &PrimingTicket,
) {
    let bootstrap = ticket.timing.total();
    let bytes = world.http.download_bytes(ticket.download_bytes);
    let vsn = ticket.vsn;
    let started = ctx.now();
    start_flow(
        world,
        ctx,
        target,
        bytes,
        FlowPurpose::Download {
            service,
            vsn,
            bootstrap,
            started,
        },
    );
}

/// A node's priming failed mid-flight (corrupted image, repository
/// error): scrub it from its service and let the recovery loop restore
/// the lost capacity.
fn fail_priming(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
    host: HostId,
) {
    let now = ctx.now();
    world.obs.record(
        now,
        Event::PrimingFailed {
            service: service.0,
            vsn: vsn.0,
            host: u64::from(host.0),
        },
    );
    if let Some(p) = world.priming_traces.remove(&vsn) {
        world.obs.trace_close(Some(p), now);
    }
    let mut daemons = std::mem::take(&mut world.daemons);
    let removed = world
        .master_for_mut(service)
        .remove_node(service, vsn, &mut daemons, now);
    world.daemons = daemons;
    world.invalidate_admission_indexes();
    if let Some((capacity, reply)) = removed {
        if let Some(reply) = reply {
            complete_creation_record(world, now, service, reply);
        }
        world.journal_op(now, JournalOp::Recovery, service);
        recovery::on_priming_failed(world, ctx, service, vsn, capacity);
    }
}

/// Fail-stop crash of a whole host with honest accounting: the daemon
/// dies (every VSN on it crashes), in-flight work is dropped and
/// counted — but the Master is NOT told. Detection is the self-healing
/// loop's job; without it the switch keeps routing to the dead backends
/// and those requests count as dropped.
pub fn crash_host(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, host: HostId) {
    let now = ctx.now();
    match soda_hup::daemon::daemon_for_mut(&mut world.daemons, host) {
        Some(d) if !d.is_failed() => {
            let _ = d.fail_host(now);
        }
        _ => return,
    }
    world.invalidate_admission_indexes();
    let dead: Vec<VsnId> = world
        .node_runtimes
        .iter()
        .filter(|(_, rt)| rt.host == host)
        .map(|(v, _)| v)
        .collect();
    for v in &dead {
        world.node_runtimes.remove(v);
    }
    drop_inflight_on_host(world, ctx, host);
}

/// Bring a crashed host back (rebooted, empty). Its capacity is
/// placeable again; VSNs that died with it stay dead until torn down.
pub fn repair_host(world: &mut SodaWorld, host: HostId) {
    if let Some(d) = soda_hup::daemon::daemon_for_mut(&mut world.daemons, host) {
        d.repair_host();
        world.invalidate_admission_indexes();
    }
}

/// Fail-stop crash of the Master process (the `MasterCrash` fault):
/// every record it held in memory is gone, the self-healing loop dies
/// with it, and nothing is journaled until takeover. The per-service
/// switches are colocated but separate data-plane processes — they
/// keep routing (stale) — and the daemons keep serving and priming. A
/// warm standby detects the silence and takes over by rebuilding from
/// the journal's checkpoint ⊕ tail, then reconciling against live
/// daemon reality.
pub fn crash_master(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
    let now = ctx.now();
    world.obs.record(
        now,
        Event::MasterDown {
            epoch: world.journal.epoch(),
        },
    );
    if !world.failover.down {
        world.failover.down = true;
        world.failover.crashed_at = Some(now);
        world.master.crash_control();
        world.recovery.crash();
    }
    // A crash while already down kills the standby mid-replay: restart
    // the detection + replay clock and invalidate the pending takeover.
    world.failover.takeover_gen += 1;
    let gen = world.failover.takeover_gen;
    let delay = world.failover.detection_delay
        + world.failover.checkpoint_load
        + world.failover.per_entry_replay * world.journal.replay_len();
    ctx.schedule_in_as("master_takeover", delay, move |w: &mut SodaWorld, ctx| {
        if w.failover.takeover_gen != gen || !w.failover.down {
            return;
        }
        master_takeover(w, ctx);
    });
}

/// Warm-standby takeover: rebuild the control plane from the journal,
/// bump the Master epoch, re-arm self-healing, and reconcile the
/// rebuilt picture against what the daemons actually hold.
/// One daemon's re-registration report: `None` when the host is dead.
type ReRegistration = Option<Vec<(VsnId, VsnState)>>;

fn master_takeover(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>) {
    let now = ctx.now();
    let replayed = world.journal.replay_len() as usize;
    let checkpoint_seq = world.journal.checkpoint_seq();
    let rebuilt = world.journal.rebuild();
    let restored = world.master.restore_control(&rebuilt);
    world.failover.down = false;
    let epoch = world.journal.bump_epoch(now, world.master.id_counters());
    world.obs.record(
        now,
        Event::JournalReplayed {
            epoch,
            entries: replayed as u64,
            checkpoint_seq,
        },
    );

    // Every daemon re-registers its VSNs; the journal's picture is a
    // lower bound on reality and is corrected against the reports.
    // Failed hosts answer nothing — the re-armed heartbeat loop will
    // declare them down through the normal detection path.
    // Under a sharded plane only cell 0's hosts re-register with the
    // recovering shard-0 Master (each cell owns its own roster).
    let cell = world.cell_range(ShardId(0));
    let reports: Vec<(HostId, ReRegistration)> = world.daemons[cell.clone()]
        .iter()
        .map(|d| (d.host.id, d.re_register()))
        .collect();
    let hosts: Vec<HostId> = reports.iter().map(|(h, _)| *h).collect();
    world.master.collect_resources(&world.daemons[cell], now);
    world.recovery.rearm(epoch, now, &hosts);

    // vsn → (service, capacity) over every cell's records: a foreign
    // service spilled onto a shard-0 host must not be torn down as a
    // duplicate just because shard 0's own journal never heard of it.
    let known: HashMap<VsnId, (ServiceId, u32)> = world
        .services_all()
        .flat_map(|rec| rec.nodes.iter().map(move |n| (n.vsn, (rec.id, n.capacity))))
        .collect();
    let mut adopted = 0usize;
    let mut scrubbed = 0usize;
    let mut duplicates = 0usize;
    for (host, report) in &reports {
        let Some(vsns) = report else { continue };
        for &(vsn, state) in vsns {
            match known.get(&vsn) {
                Some(&(svc, cap)) => match state {
                    // Journaled and actually running: adopt as-is (its
                    // switch kept routing through the outage).
                    VsnState::Running => adopted += 1,
                    // In-flight priming finishes via the (buffered)
                    // boot path below.
                    VsnState::Allocated | VsnState::Priming => {}
                    // Journaled but dead: scrub it into a fresh
                    // epoch-stamped recovery episode.
                    VsnState::Crashed => {
                        recovery::handle_node_down(world, ctx, svc, vsn, cap, Some(*host), false);
                        scrubbed += 1;
                    }
                    VsnState::TornDown => {}
                },
                // The daemon holds a VSN the rebuilt state does not
                // know — a duplicate or leaked placement. Tear it down.
                None => {
                    let _ = world.daemon_mut(*host).teardown_vsn(vsn);
                    world.invalidate_admission_indexes();
                    world.remove_runtime(vsn);
                    drop_inflight_on_vsn(world, ctx, vsn);
                    duplicates += 1;
                }
            }
        }
    }

    // Boots that landed while the Master was down, re-driven in arrival
    // order. Their records were rebuilt from the journal, so the normal
    // node-ready path completes them (elapsed honestly spans the outage).
    let orphans = std::mem::take(&mut world.failover.orphaned_boots);
    let orphaned_boots = orphans.len();
    for (svc, vsn, started) in orphans {
        finish_node_boot(world, ctx, svc, vsn, started);
    }

    world.obs.record(
        now,
        Event::MasterRecovered {
            epoch,
            replayed: replayed as u64,
        },
    );
    if world.obs.is_enabled() {
        if world.master_failovers_h.is_none() {
            world.master_failovers_h = world.obs.intern(
                "world",
                "master_failovers",
                Labels::none(),
                MetricKind::Counter,
            );
        }
        if let Some(h) = world.master_failovers_h {
            world.obs.counter_add_h(h, 1);
        }
    }
    let crashed_at = world.failover.crashed_at.take().unwrap_or(now);
    world.failover.records.push(FailoverRecord {
        crashed_at,
        recovered_at: now,
        epoch,
        replayed,
        checkpoint_seq,
        restored,
        adopted,
        scrubbed,
        duplicates,
        orphaned_boots,
    });
}

/// Apply one injected fault to the world — the bridge a
/// [`soda_sim::FaultPlan`] is scheduled through:
/// `plan.schedule(&mut engine, apply_fault)`.
pub fn apply_fault(world: &mut SodaWorld, ctx: &mut Ctx<SodaWorld>, fault: FaultSpec) {
    let now = ctx.now();
    world.obs.record(
        now,
        Event::FaultInjected {
            kind: fault.kind(),
            host: fault.host().unwrap_or(0),
            vsn: fault.vsn().unwrap_or(0),
        },
    );
    match fault {
        FaultSpec::HostCrash { host } => crash_host(world, ctx, HostId(host as u32)),
        FaultSpec::HostRepair { host } => repair_host(world, HostId(host as u32)),
        FaultSpec::VsnCrash { vsn } => {
            let vsn = VsnId(vsn);
            let owner = world
                .services_all()
                .find_map(|rec| rec.node(vsn).map(|n| (rec.id, n.host)));
            if let Some((_, host)) = owner {
                // The VSN dies but the Master is not told — the next
                // heartbeat carries the bad news.
                let _ = world.daemon_mut(host).crash_vsn(vsn, now);
                world.node_runtimes.remove(&vsn);
                drop_inflight_on_vsn(world, ctx, vsn);
            }
        }
        FaultSpec::PrimingFailure { host } => {
            *world
                .armed_priming_failures
                .entry(HostId(host as u32))
                .or_insert(0) += 1;
        }
        FaultSpec::SlowHost {
            host,
            factor,
            duration,
        } => {
            let h = HostId(host as u32);
            let until = now + duration;
            let entry = world.host_slow.entry(h).or_insert((1.0, until));
            entry.0 = entry.0.max(factor.max(1.0));
            entry.1 = entry.1.max(until);
            ctx.schedule_in_as("fault_expiry", duration, move |w: &mut SodaWorld, ctx| {
                if w.host_slow.get(&h).is_some_and(|&(_, t)| ctx.now() >= t) {
                    w.host_slow.remove(&h);
                }
            });
        }
        FaultSpec::LinkLoss {
            host,
            loss,
            duration,
        } => {
            world.control.set_loss(host, loss, now + duration);
        }
        FaultSpec::MasterCrash => crash_master(world, ctx),
        FaultSpec::LinkPartition { host, duration } => {
            world.control.partition(host, now + duration);
            world.obs.record(now, Event::LinkPartitioned { host });
            drop_inflight_on_host(world, ctx, HostId(host as u32));
            ctx.schedule_in_as("fault_expiry", duration, move |w: &mut SodaWorld, ctx| {
                w.obs.record(ctx.now(), Event::LinkRestored { host });
            });
        }
    }
}

/// Revive a crashed node: re-prime from the daemon's blueprint, then
/// bring it back into the switch rotation.
pub fn revive_node(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
) -> Result<(), SodaError> {
    let rec = world
        .service_record(service)
        .ok_or(SodaError::UnknownService(service))?;
    let host = rec.node(vsn).ok_or(SodaError::UnknownVsn(vsn))?.host;
    let timing = world.daemon_mut(host).begin_repriming(vsn)?;
    ctx.schedule_in_as("reprime", timing.total(), move |w: &mut SodaWorld, ctx| {
        let now = ctx.now();
        if w.daemon_mut(host).complete_priming(vsn, now).is_ok() {
            w.master_for_mut(service).node_recovered(service, vsn);
            w.install_runtime(service, vsn, ExecutionMode::GuestIsolated);
            w.journal_op(now, JournalOp::Recovery, service);
        }
    });
    Ok(())
}

/// Fail a whole HUP host (power loss): every VSN on it crashes, its
/// capacity disappears, affected backends leave rotation. Returns the
/// affected `(service, vsn, capacity)` triples.
pub fn fail_host(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    host: HostId,
) -> Vec<(ServiceId, VsnId, u32)> {
    crash_host(world, ctx, host);
    let mut affected = Vec::new();
    for s in 0..world.shard_count() {
        affected.extend(world.master_of_mut(ShardId(s)).host_failed(host));
    }
    affected
}

/// Fail over one dead node onto a surviving host: re-place, bootstrap
/// (the image must be re-fetched from the repository — a NIC flow on the
/// target), and rejoin the switch. Returns the chosen target host.
pub fn failover_node(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    vsn: VsnId,
) -> Result<HostId, SodaError> {
    let now = ctx.now();
    let mut daemons = std::mem::take(&mut world.daemons);
    let result = world
        .master_for_mut(service)
        .replace_node(service, vsn, &mut daemons, now);
    world.daemons = daemons;
    world.invalidate_admission_indexes();
    let (target, ticket) = result?;
    world.journal_op(now, JournalOp::Recovery, service);
    start_download(world, ctx, target, service, &ticket);
    Ok(target)
}

/// Start a DDoS flood against the host carrying `service`'s switch:
/// `flows` concurrent elephant flows of `bytes_each`. They share the
/// victim host's NIC with every co-hosted node — the §3.5 isolation
/// violation.
pub fn ddos_switch_host(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    service: ServiceId,
    flows: u32,
    bytes_each: u64,
) -> Option<HostId> {
    let sw = world.switch_for(service)?;
    let colo = sw.colocated_on;
    let host = world.service_record(service)?.node(colo)?.host;
    for _ in 0..flows {
        start_flow(world, ctx, host, bytes_each, FlowPurpose::Flood);
    }
    Some(host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_hostos::resources::ResourceVector;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn web_spec(n: u32) -> ServiceSpec {
        ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: n,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        }
    }

    fn engine_with_web(n: u32) -> (Engine<SodaWorld>, ServiceId) {
        let mut engine = Engine::new(SodaWorld::testbed());
        let svc = create_service_driven(&mut engine, web_spec(n), "webco").unwrap();
        engine.run_until(SimTime::from_secs(120));
        assert_eq!(engine.state().creations.len(), 1, "creation must complete");
        (engine, svc)
    }

    #[test]
    fn driven_creation_downloads_then_boots() {
        let (engine, svc) = engine_with_web(3);
        let w = engine.state();
        let created = &w.creations[0];
        assert_eq!(created.reply.service, svc);
        assert_eq!(created.reply.nodes.len(), 2);
        // Download of 29.3 MB at ~100 Mbps ≈ 2.4 s, plus bootstrap
        // seconds: creation lands in a plausible band.
        let t = created.at.as_secs_f64();
        assert!((3.0..30.0).contains(&t), "created at {t}s");
        // Billing started at the capacity.
        assert!(w.agent.usage(svc, SimTime::from_secs(120)) > 0.0);
    }

    #[test]
    fn requests_flow_end_to_end() {
        let (mut engine, svc) = engine_with_web(3);
        let t0 = engine.now();
        for i in 0..30u64 {
            engine.schedule_at(
                t0 + SimDuration::from_millis(100 * i),
                move |w: &mut SodaWorld, ctx| {
                    submit_request(w, ctx, svc, 50_000);
                },
            );
        }
        engine.run_until(SimTime::from_secs(300));
        let w = engine.state();
        assert_eq!(w.completed.len(), 30, "dropped {}", w.dropped);
        for r in &w.completed {
            let rt = r.response_time().as_secs_f64();
            assert!(rt > 0.0 && rt < 5.0, "response time {rt}");
        }
        // WRR 2:1 split.
        let sw = w.master.switch(svc).unwrap();
        let counts = sw.served_counts();
        assert_eq!(counts.iter().sum::<u64>(), 30);
        assert_eq!(counts[0], 20);
        assert_eq!(counts[1], 10);
    }

    #[test]
    fn guest_mode_is_slower_than_host_direct() {
        let (mut engine, svc) = engine_with_web(1);
        let vsn = engine.state().master.service(svc).unwrap().nodes[0].vsn;
        // One request in guest mode.
        engine.schedule_in(SimDuration::from_secs(1), move |w: &mut SodaWorld, ctx| {
            submit_request_direct(w, ctx, svc, vsn, 100_000);
        });
        engine.run_until(engine.now() + SimDuration::from_secs(60));
        let guest_rt = engine.state().completed[0].response_time();
        // Same request in host-direct mode.
        engine
            .state_mut()
            .set_execution_mode(svc, vsn, ExecutionMode::HostDirect);
        engine.schedule_in(SimDuration::from_secs(1), move |w: &mut SodaWorld, ctx| {
            submit_request_direct(w, ctx, svc, vsn, 100_000);
        });
        engine.run_until(engine.now() + SimDuration::from_secs(60));
        let host_rt = engine.state().completed[1].response_time();
        assert!(guest_rt > host_rt, "guest {guest_rt} !> host {host_rt}");
        // But modest: well under 2× (Figure 6's claim).
        let factor = guest_rt.as_secs_f64() / host_rt.as_secs_f64();
        assert!(factor < 2.0, "slowdown factor {factor}");
    }

    #[test]
    fn attack_on_guest_isolated_node_spares_cohosted() {
        let mut engine = Engine::new(SodaWorld::testbed());
        let web = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
        let hp_spec = ServiceSpec {
            name: "honeypot".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 80,
        };
        let hp = create_service_driven(&mut engine, hp_spec, "seclab").unwrap();
        engine.run_until(SimTime::from_secs(120));
        assert_eq!(engine.state().creations.len(), 2);
        let hp_vsn = engine.state().master.service(hp).unwrap().nodes[0].vsn;
        // Attack the honeypot.
        engine.schedule_in(SimDuration::from_secs(1), move |w: &mut SodaWorld, ctx| {
            let blast = attack_node(w, ctx, hp, hp_vsn, FaultKind::RootCompromise);
            assert!(blast.service_down);
            assert!(!blast.cohosted_down);
        });
        // Web requests still succeed afterwards.
        let t = engine.now() + SimDuration::from_secs(2);
        for i in 0..10u64 {
            engine.schedule_at(
                t + SimDuration::from_millis(200 * i),
                move |w: &mut SodaWorld, ctx| {
                    submit_request(w, ctx, web, 10_000);
                },
            );
        }
        engine.run_until(engine.now() + SimDuration::from_secs(120));
        let w = engine.state();
        assert_eq!(
            w.completed.len(),
            10,
            "web unaffected; dropped {}",
            w.dropped
        );
        // The honeypot node is crashed.
        let hp_rec = w.master.service(hp).unwrap();
        let d = w.daemon(hp_rec.nodes[0].host);
        assert_eq!(d.vsn(hp_vsn).unwrap().crash_count, 1);
    }

    #[test]
    fn host_direct_attack_takes_down_cohosted() {
        let mut engine = Engine::new(SodaWorld::testbed());
        let web = create_service_driven(&mut engine, web_spec(3), "webco").unwrap();
        let hp_spec = ServiceSpec {
            name: "honeypot".into(),
            image: RootFsCatalog::new().tomsrtbt(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: 1,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 80,
        };
        let hp = create_service_driven(&mut engine, hp_spec, "seclab").unwrap();
        engine.run_until(SimTime::from_secs(120));
        let hp_vsn = engine.state_mut().master.service(hp).unwrap().nodes[0].vsn;
        // The counterfactual: honeypot runs directly on the host OS.
        engine
            .state_mut()
            .set_execution_mode(hp, hp_vsn, ExecutionMode::HostDirect);
        engine.schedule_in(SimDuration::from_secs(1), move |w: &mut SodaWorld, ctx| {
            let blast = attack_node(w, ctx, hp, hp_vsn, FaultKind::RootCompromise);
            assert!(blast.cohosted_down);
        });
        engine.run_until(engine.now() + SimDuration::from_secs(5));
        // The web node sharing seattle crashed with it.
        let w = engine.state();
        let web_rec = w.master.service(web).unwrap();
        let seattle_node = web_rec.nodes.iter().find(|n| n.host == HostId(1)).unwrap();
        let d = w.daemon(HostId(1));
        assert_eq!(d.vsn(seattle_node.vsn).unwrap().crash_count, 1);
    }

    #[test]
    fn revive_restores_service() {
        let (mut engine, svc) = engine_with_web(1);
        let vsn = engine.state().master.service(svc).unwrap().nodes[0].vsn;
        engine.schedule_in(SimDuration::from_secs(1), move |w: &mut SodaWorld, ctx| {
            attack_node(w, ctx, svc, vsn, FaultKind::Crash);
            revive_node(w, ctx, svc, vsn).unwrap();
        });
        engine.run_until(engine.now() + SimDuration::from_secs(60));
        let t = engine.now();
        engine.schedule_in(SimDuration::from_secs(1), move |w: &mut SodaWorld, ctx| {
            submit_request(w, ctx, svc, 10_000);
        });
        engine.run_until(t + SimDuration::from_secs(60));
        assert_eq!(
            engine.state().completed.len(),
            1,
            "revived node serves again"
        );
    }

    #[test]
    fn ddos_degrades_cohosted_service() {
        // Two services on seattle; flood the web switch's host and watch
        // the *other* service's response times degrade. First-fit
        // placement packs both onto seattle.
        let mut engine = Engine::new(SodaWorld::testbed());
        engine
            .state_mut()
            .master
            .set_placement(Box::new(crate::placement::FirstFit));
        let web = create_service_driven(&mut engine, web_spec(2), "webco").unwrap();
        let other = create_service_driven(
            &mut engine,
            ServiceSpec {
                name: "other".into(),
                ..web_spec(1)
            },
            "otherco",
        )
        .unwrap();
        engine.run_until(SimTime::from_secs(120));
        assert_eq!(engine.state().creations.len(), 2);
        // Baseline response time for `other`.
        let t0 = engine.now();
        engine.schedule_at(t0, move |w: &mut SodaWorld, ctx| {
            submit_request(w, ctx, other, 200_000);
        });
        engine.run_until(t0 + SimDuration::from_secs(60));
        let baseline = engine.state().completed.last().unwrap().response_time();
        // Flood, then repeat the request.
        let t1 = engine.now();
        engine.schedule_at(t1, move |w: &mut SodaWorld, ctx| {
            ddos_switch_host(w, ctx, web, 20, 50_000_000).unwrap();
            submit_request(w, ctx, other, 200_000);
        });
        engine.run_until(t1 + SimDuration::from_secs(600));
        let under_attack = engine.state().completed.last().unwrap().response_time();
        assert!(
            under_attack > baseline * 2,
            "DDoS must violate isolation: {under_attack} vs {baseline}"
        );
    }
}
