//! Dense id-indexed arenas for the data-plane hot state.
//!
//! PRs 1–9 kept every per-host / per-VSN / per-request table in the
//! world as a `HashMap` or `BTreeMap`. Correct — the iteration guard
//! audits every site — but at the 100k-host / 1M-VSN / 10M-request
//! target the hashing and pointer-chasing on the route/complete path
//! dominate, and the key sets are *dense by construction*: hosts are
//! numbered `1..=N`, the Master allocates `ServiceId`/`VsnId` from
//! per-lane counters (PR 8's id-lane striping: cell `k` of `n` owns ids
//! `{k+1, k+1+n, ...}`), and `RequestId` is a per-world monotonic
//! counter. A dense id deserves a dense slot.
//!
//! Two containers exploit that:
//!
//! * [`IdMap`] — a slab keyed by any [`DenseId`]. Slot index is
//!   `(id - base) / stride`: `base` latches to the first id inserted
//!   (rebasing when a smaller in-lane id appears), `stride` is the
//!   id-lane width (1 for a monolith world, `cells` inside one parallel
//!   cell). Lookup is a bounds check and a vector index — zero hashing,
//!   zero tree descent. Each slot carries a generation counter bumped
//!   on insert, so a stale [`SlotHandle`] from before a slot was freed
//!   and reused can never alias the new occupant.
//! * [`RequestTable`] — a ring for monotonically allocated ids
//!   (`RequestId`): insert always lands at the tail, remove pops
//!   leading empties, so the ring's footprint is the *open-request
//!   window*, not the total ids ever issued.
//!
//! Both follow the house differential-oracle pattern
//! (`QueueKind::{Wheel, Heap}`, `ControlPlaneKind::{Monolith,
//! Sharded}`): [`WorldStorageKind::Map`] keeps a `BTreeMap` backend
//! selectable at run time, and the tier-1 + CI gates hold `Arena` ≡
//! `Map` bit-identical on trajectory and event fingerprints
//! (`tests/scale_oracle.rs`, `tests/determinism.rs`, `tests/chaos.rs`).
//! `BTreeMap` — not `HashMap` — is the oracle so both backends iterate
//! in ascending id order and the iteration-guard contract holds by
//! construction.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Index;

use soda_hup::host::HostId;
use soda_vmm::vsn::VsnId;

use crate::service::ServiceId;

/// Which backend the world's id-keyed hot state uses. Mirrors
/// `QueueKind` / `ControlPlaneKind` / `EngineKind`: the non-default
/// variant is the differential oracle the gates replay against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WorldStorageKind {
    /// Ordered-map oracle (`BTreeMap` per table).
    Map,
    /// Dense generational slab per table (the default data plane).
    #[default]
    Arena,
}

impl WorldStorageKind {
    /// Stable label for bench records and logs.
    pub fn label(&self) -> &'static str {
        match self {
            WorldStorageKind::Map => "map",
            WorldStorageKind::Arena => "arena",
        }
    }
}

/// An id type that is dense within its allocation lane and therefore
/// usable as an arena slot index.
pub trait DenseId: Copy + Ord + Debug {
    /// The id as a slot-addressable integer.
    fn dense(self) -> u64;
    /// Rebuild the id from its integer (inverse of [`DenseId::dense`]).
    fn from_dense(d: u64) -> Self;
}

impl DenseId for HostId {
    fn dense(self) -> u64 {
        u64::from(self.0)
    }
    fn from_dense(d: u64) -> Self {
        HostId(u32::try_from(d).expect("host id fits u32"))
    }
}

impl DenseId for VsnId {
    fn dense(self) -> u64 {
        self.0
    }
    fn from_dense(d: u64) -> Self {
        VsnId(d)
    }
}

impl DenseId for ServiceId {
    fn dense(self) -> u64 {
        self.0
    }
    fn from_dense(d: u64) -> Self {
        ServiceId(d)
    }
}

/// A generation-stamped reference to an [`IdMap`] slot. Holding one
/// across a remove+reinsert of the same id is safe: the generation
/// moved, so [`IdMap::get_by_handle`] returns `None` instead of the
/// slot's new occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotHandle {
    slot: u32,
    gen: u32,
}

/// Id-keyed table with a dense-slab backend and a `BTreeMap` oracle.
///
/// The API mirrors the std map surface the world already uses (`get`,
/// `insert`, `remove`, `entry`, `retain`, `iter`, `Index<&K>`), so a
/// converted call site reads exactly as before. Iteration is ascending
/// id order in *both* backends.
#[derive(Debug, Clone)]
pub struct IdMap<K: DenseId, V> {
    kind: WorldStorageKind,
    /// Id-lane width: ids in this table are congruent modulo `stride`.
    stride: u64,
    /// `Map` backend.
    map: BTreeMap<K, V>,
    /// `Arena` backend: id of slot 0 (latched on first insert).
    base: Option<u64>,
    slots: Vec<Option<V>>,
    gens: Vec<u32>,
    len: usize,
    _k: PhantomData<K>,
}

impl<K: DenseId, V> Default for IdMap<K, V> {
    fn default() -> Self {
        Self::new(WorldStorageKind::default())
    }
}

impl<K: DenseId, V> IdMap<K, V> {
    /// An empty table on the given backend, stride 1.
    pub fn new(kind: WorldStorageKind) -> Self {
        IdMap {
            kind,
            stride: 1,
            map: BTreeMap::new(),
            base: None,
            slots: Vec::new(),
            gens: Vec::new(),
            len: 0,
            _k: PhantomData,
        }
    }

    /// The active backend.
    pub fn kind(&self) -> WorldStorageKind {
        self.kind
    }

    /// Switch backends, migrating any current entries (ascending id
    /// order, so a `Map → Arena → Map` round trip is the identity).
    pub fn set_kind(&mut self, kind: WorldStorageKind) {
        if kind == self.kind {
            return;
        }
        let entries: Vec<(K, V)> = match self.kind {
            WorldStorageKind::Map => std::mem::take(&mut self.map).into_iter().collect(),
            WorldStorageKind::Arena => {
                let base = self.base.unwrap_or(0);
                let stride = self.stride;
                std::mem::take(&mut self.slots)
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.map(|v| (K::from_dense(base + i as u64 * stride), v)))
                    .collect()
            }
        };
        self.base = None;
        self.slots.clear();
        self.gens.clear();
        self.len = 0;
        self.kind = kind;
        for (k, v) in entries {
            self.insert(k, v);
        }
    }

    /// Declare the id-lane width (`(id - base)` must be a multiple of
    /// `stride` for every id this table will see). Must be set before
    /// the first insert.
    pub fn set_stride(&mut self, stride: u64) {
        assert!(stride > 0, "stride must be positive");
        assert!(
            self.len == 0 && self.base.is_none(),
            "stride must be set before the table is populated"
        );
        self.stride = stride;
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        match self.kind {
            WorldStorageKind::Map => self.map.len(),
            WorldStorageKind::Arena => self.len,
        }
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot index for `id` under the current base/stride, or `None`
    /// when the id lies below the base or off the lane.
    fn slot_of(&self, id: u64) -> Option<usize> {
        let base = self.base?;
        let off = id.checked_sub(base)?;
        if off % self.stride != 0 {
            return None;
        }
        Some((off / self.stride) as usize)
    }

    /// Shift the arena so `new_base` becomes slot 0 (an in-lane id
    /// below the current base appeared).
    fn rebase(&mut self, new_base: u64) {
        let base = self.base.expect("rebase with a latched base");
        let off = base - new_base;
        assert!(
            off.is_multiple_of(self.stride),
            "id lane violation: new base {new_base} not congruent to {base} mod {}",
            self.stride
        );
        let shift = (off / self.stride) as usize;
        let mut slots = Vec::with_capacity(self.slots.len() + shift);
        slots.resize_with(shift, || None);
        slots.append(&mut self.slots);
        self.slots = slots;
        let mut gens = vec![0u32; shift];
        gens.append(&mut self.gens);
        self.gens = gens;
        self.base = Some(new_base);
    }

    /// Look up by id.
    pub fn get(&self, k: &K) -> Option<&V> {
        match self.kind {
            WorldStorageKind::Map => self.map.get(k),
            WorldStorageKind::Arena => {
                let slot = self.slot_of(k.dense())?;
                self.slots.get(slot)?.as_ref()
            }
        }
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        match self.kind {
            WorldStorageKind::Map => self.map.get_mut(k),
            WorldStorageKind::Arena => {
                let slot = self.slot_of(k.dense())?;
                self.slots.get_mut(slot)?.as_mut()
            }
        }
    }

    /// True when `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Insert, returning the displaced value if the id was present.
    /// In `Arena` mode an off-lane id panics — lane discipline is an
    /// invariant, not a recoverable condition.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        match self.kind {
            WorldStorageKind::Map => self.map.insert(k, v),
            WorldStorageKind::Arena => {
                let d = k.dense();
                match self.base {
                    None => self.base = Some(d),
                    Some(base) if d < base => self.rebase(d),
                    Some(_) => {}
                }
                let base = self.base.expect("base latched");
                let off = d - base;
                assert!(
                    off.is_multiple_of(self.stride),
                    "id lane violation: {k:?} is off the stride-{} lane based at {base}",
                    self.stride
                );
                let slot = (off / self.stride) as usize;
                if slot >= self.slots.len() {
                    self.slots.resize_with(slot + 1, || None);
                    self.gens.resize(slot + 1, 0);
                }
                let old = self.slots[slot].replace(v);
                self.gens[slot] = self.gens[slot].wrapping_add(1);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    /// Remove by id, returning the value if present. The slot's
    /// generation survives, so handles taken before the remove go
    /// stale instead of dangling.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        match self.kind {
            WorldStorageKind::Map => self.map.remove(k),
            WorldStorageKind::Arena => {
                let slot = self.slot_of(k.dense())?;
                let v = self.slots.get_mut(slot)?.take()?;
                self.len -= 1;
                Some(v)
            }
        }
    }

    /// Keep only entries for which `f` returns true. Visits ascending
    /// id order in both backends.
    pub fn retain(&mut self, mut f: impl FnMut(K, &mut V) -> bool) {
        match self.kind {
            WorldStorageKind::Map => self.map.retain(|k, v| f(*k, v)),
            WorldStorageKind::Arena => {
                let base = self.base.unwrap_or(0);
                for (i, s) in self.slots.iter_mut().enumerate() {
                    let keep = match s.as_mut() {
                        Some(v) => f(K::from_dense(base + i as u64 * self.stride), v),
                        None => continue,
                    };
                    if !keep {
                        *s = None;
                        self.len -= 1;
                    }
                }
            }
        }
    }

    /// Iterate `(id, &value)` in ascending id order (both backends).
    pub fn iter(&self) -> IdMapIter<'_, K, V> {
        match self.kind {
            WorldStorageKind::Map => IdMapIter::Map(self.map.iter()),
            WorldStorageKind::Arena => IdMapIter::Arena {
                base: self.base.unwrap_or(0),
                stride: self.stride,
                inner: self.slots.iter().enumerate(),
                _k: PhantomData,
            },
        }
    }

    /// A generation-stamped handle to `k`'s slot (`Arena` backend
    /// only — the map oracle has no slots to alias).
    pub fn handle(&self, k: &K) -> Option<SlotHandle> {
        match self.kind {
            WorldStorageKind::Map => None,
            WorldStorageKind::Arena => {
                let slot = self.slot_of(k.dense())?;
                self.slots.get(slot)?.as_ref()?;
                Some(SlotHandle {
                    slot: u32::try_from(slot).expect("slot fits u32"),
                    gen: self.gens[slot],
                })
            }
        }
    }

    /// Resolve a handle, returning `None` when the slot was freed or
    /// reused since the handle was taken.
    pub fn get_by_handle(&self, h: SlotHandle) -> Option<&V> {
        let slot = h.slot as usize;
        if self.gens.get(slot) != Some(&h.gen) {
            return None;
        }
        self.slots.get(slot)?.as_ref()
    }

    /// `entry`-style accessor mirroring the std map API subset the
    /// world uses (`or_insert`, `or_default`, `and_modify`).
    pub fn entry(&mut self, k: K) -> IdMapEntry<'_, K, V> {
        IdMapEntry {
            table: self,
            key: k,
        }
    }
}

impl<K: DenseId, V> Index<&K> for IdMap<K, V> {
    type Output = V;
    fn index(&self, k: &K) -> &V {
        self.get(k)
            .unwrap_or_else(|| panic!("no entry for id {k:?}"))
    }
}

/// Ascending-id iterator over an [`IdMap`].
pub enum IdMapIter<'a, K: DenseId, V> {
    /// Oracle backend.
    Map(std::collections::btree_map::Iter<'a, K, V>),
    /// Slab backend.
    Arena {
        /// Id of slot 0.
        base: u64,
        /// Id-lane width.
        stride: u64,
        /// Underlying slot walk.
        inner: std::iter::Enumerate<std::slice::Iter<'a, Option<V>>>,
        /// Key type carrier.
        _k: PhantomData<K>,
    },
}

impl<'a, K: DenseId, V> Iterator for IdMapIter<'a, K, V> {
    type Item = (K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            IdMapIter::Map(it) => it.next().map(|(k, v)| (*k, v)),
            IdMapIter::Arena {
                base,
                stride,
                inner,
                ..
            } => {
                for (i, s) in inner.by_ref() {
                    if let Some(v) = s.as_ref() {
                        return Some((K::from_dense(*base + i as u64 * *stride), v));
                    }
                }
                None
            }
        }
    }
}

/// Entry accessor returned by [`IdMap::entry`].
pub struct IdMapEntry<'a, K: DenseId, V> {
    table: &'a mut IdMap<K, V>,
    key: K,
}

impl<'a, K: DenseId, V> IdMapEntry<'a, K, V> {
    /// Insert `default` when vacant; return the occupant either way.
    pub fn or_insert(self, default: V) -> &'a mut V {
        if !self.table.contains_key(&self.key) {
            self.table.insert(self.key, default);
        }
        self.table.get_mut(&self.key).expect("entry just ensured")
    }

    /// Insert `V::default()` when vacant; return the occupant.
    pub fn or_default(self) -> &'a mut V
    where
        V: Default,
    {
        self.or_insert(V::default())
    }

    /// Run `f` on the occupant when present, then return the entry for
    /// chaining.
    pub fn and_modify(self, f: impl FnOnce(&mut V)) -> Self {
        if let Some(v) = self.table.get_mut(&self.key) {
            f(v);
        }
        self
    }
}

/// Table for *monotonically allocated* ids (the world's `RequestId`
/// counter): a ring whose occupancy is the open-id window. Insert
/// always extends the tail; remove pops leading empties, so memory
/// tracks the number of ids simultaneously open, not the total ever
/// issued — the property that keeps 10M requests from pinning 10M
/// callback slots.
#[derive(Debug)]
pub struct RequestTable<K: DenseId, V> {
    kind: WorldStorageKind,
    map: BTreeMap<K, V>,
    /// Id of `ring[0]` (meaningful while the ring is non-empty).
    base: u64,
    ring: VecDeque<Option<V>>,
    len: usize,
    _k: PhantomData<K>,
}

impl<K: DenseId, V> Default for RequestTable<K, V> {
    fn default() -> Self {
        Self::new(WorldStorageKind::default())
    }
}

impl<K: DenseId, V> RequestTable<K, V> {
    /// An empty table on the given backend.
    pub fn new(kind: WorldStorageKind) -> Self {
        RequestTable {
            kind,
            map: BTreeMap::new(),
            base: 0,
            ring: VecDeque::new(),
            len: 0,
            _k: PhantomData,
        }
    }

    /// Switch backends, migrating current entries.
    pub fn set_kind(&mut self, kind: WorldStorageKind) {
        if kind == self.kind {
            return;
        }
        let entries: Vec<(K, V)> = match self.kind {
            WorldStorageKind::Map => std::mem::take(&mut self.map).into_iter().collect(),
            WorldStorageKind::Arena => {
                let base = self.base;
                std::mem::take(&mut self.ring)
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.map(|v| (K::from_dense(base + i as u64), v)))
                    .collect()
            }
        };
        self.base = 0;
        self.ring.clear();
        self.len = 0;
        self.kind = kind;
        for (k, v) in entries {
            self.insert(k, v);
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        match self.kind {
            WorldStorageKind::Map => self.map.len(),
            WorldStorageKind::Arena => self.len,
        }
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert under a monotonic id (never below an id already retired
    /// off the front of the ring).
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        match self.kind {
            WorldStorageKind::Map => self.map.insert(k, v),
            WorldStorageKind::Arena => {
                let d = k.dense();
                if self.ring.is_empty() {
                    self.base = d;
                }
                assert!(
                    d >= self.base,
                    "request ids are allocated monotonically; {k:?} is below base {}",
                    self.base
                );
                let idx = (d - self.base) as usize;
                if idx >= self.ring.len() {
                    // Monotonic allocation: the common case is exactly
                    // one tail slot.
                    for _ in self.ring.len()..=idx {
                        self.ring.push_back(None);
                    }
                }
                let old = self.ring[idx].replace(v);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    /// Look up by id.
    pub fn get(&self, k: &K) -> Option<&V> {
        match self.kind {
            WorldStorageKind::Map => self.map.get(k),
            WorldStorageKind::Arena => {
                let idx = k.dense().checked_sub(self.base)? as usize;
                self.ring.get(idx)?.as_ref()
            }
        }
    }

    /// Remove by id, popping any leading empties so the window's base
    /// chases the oldest still-open id.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        match self.kind {
            WorldStorageKind::Map => self.map.remove(k),
            WorldStorageKind::Arena => {
                let idx = k.dense().checked_sub(self.base)? as usize;
                let v = self.ring.get_mut(idx)?.take()?;
                self.len -= 1;
                while let Some(None) = self.ring.front() {
                    self.ring.pop_front();
                    self.base += 1;
                }
                if self.ring.is_empty() {
                    self.base = 0;
                }
                Some(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds() -> [WorldStorageKind; 2] {
        [WorldStorageKind::Map, WorldStorageKind::Arena]
    }

    #[test]
    fn idmap_basic_ops_match_across_backends() {
        for kind in both_kinds() {
            let mut m: IdMap<HostId, &'static str> = IdMap::new(kind);
            assert!(m.is_empty());
            assert_eq!(m.insert(HostId(3), "c"), None);
            assert_eq!(m.insert(HostId(1), "a"), None);
            assert_eq!(m.insert(HostId(2), "b"), None);
            assert_eq!(m.insert(HostId(2), "B"), Some("b"));
            assert_eq!(m.len(), 3);
            assert_eq!(m.get(&HostId(2)), Some(&"B"));
            assert_eq!(m[&HostId(1)], "a");
            assert!(m.contains_key(&HostId(3)));
            assert!(!m.contains_key(&HostId(9)));
            assert_eq!(m.remove(&HostId(1)), Some("a"));
            assert_eq!(m.remove(&HostId(1)), None);
            let seen: Vec<(HostId, &str)> = m.iter().map(|(k, v)| (k, *v)).collect();
            assert_eq!(seen, vec![(HostId(2), "B"), (HostId(3), "c")]);
        }
    }

    #[test]
    fn idmap_entry_mirrors_std() {
        for kind in both_kinds() {
            let mut m: IdMap<ServiceId, usize> = IdMap::new(kind);
            *m.entry(ServiceId(5)).or_insert(0) += 1;
            m.entry(ServiceId(5)).and_modify(|n| *n += 1).or_insert(9);
            assert_eq!(m.get(&ServiceId(5)), Some(&2));
            assert_eq!(*m.entry(ServiceId(6)).or_default(), 0);
        }
    }

    #[test]
    fn idmap_retain_visits_ascending_and_drops() {
        for kind in both_kinds() {
            let mut m: IdMap<VsnId, u32> = IdMap::new(kind);
            for i in 1..=6 {
                m.insert(VsnId(i), i as u32 * 10);
            }
            let mut visited = Vec::new();
            m.retain(|k, v| {
                visited.push(k.0);
                *v % 20 == 0
            });
            assert_eq!(visited, vec![1, 2, 3, 4, 5, 6]);
            assert_eq!(m.len(), 3);
            assert_eq!(m.get(&VsnId(4)), Some(&40));
            assert_eq!(m.get(&VsnId(3)), None);
        }
    }

    #[test]
    fn idmap_stride_lanes_map_to_dense_slots() {
        // Cell 2 of 4 owns ids {3, 7, 11, ...}.
        let mut m: IdMap<VsnId, &'static str> = IdMap::new(WorldStorageKind::Arena);
        m.set_stride(4);
        m.insert(VsnId(7), "b");
        m.insert(VsnId(3), "a"); // rebases
        m.insert(VsnId(11), "c");
        assert_eq!(m.get(&VsnId(3)), Some(&"a"));
        assert_eq!(m.get(&VsnId(7)), Some(&"b"));
        assert_eq!(m.get(&VsnId(11)), Some(&"c"));
        // Off-lane gets miss instead of aliasing a neighbour's slot.
        assert_eq!(m.get(&VsnId(4)), None);
        assert_eq!(m.get(&VsnId(5)), None);
        let keys: Vec<u64> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![3, 7, 11]);
    }

    #[test]
    #[should_panic(expected = "id lane violation")]
    fn idmap_off_lane_insert_panics() {
        let mut m: IdMap<VsnId, ()> = IdMap::new(WorldStorageKind::Arena);
        m.set_stride(4);
        m.insert(VsnId(3), ());
        m.insert(VsnId(4), ());
    }

    #[test]
    fn idmap_handles_go_stale_on_slot_reuse() {
        let mut m: IdMap<HostId, &'static str> = IdMap::new(WorldStorageKind::Arena);
        m.insert(HostId(1), "first");
        let h = m.handle(&HostId(1)).expect("live handle");
        assert_eq!(m.get_by_handle(h), Some(&"first"));
        m.remove(&HostId(1));
        assert_eq!(m.get_by_handle(h), None, "freed slot");
        m.insert(HostId(1), "second");
        assert_eq!(m.get_by_handle(h), None, "reused slot, new generation");
        let h2 = m.handle(&HostId(1)).expect("fresh handle");
        assert_eq!(m.get_by_handle(h2), Some(&"second"));
    }

    #[test]
    fn idmap_set_kind_round_trips() {
        let mut m: IdMap<HostId, u32> = IdMap::new(WorldStorageKind::Arena);
        for i in [5u32, 2, 9] {
            m.insert(HostId(i), i * 100);
        }
        m.set_kind(WorldStorageKind::Map);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&HostId(9)), Some(&900));
        m.set_kind(WorldStorageKind::Arena);
        assert_eq!(m.len(), 3);
        let keys: Vec<u32> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![2, 5, 9]);
    }

    #[test]
    fn request_table_window_tracks_open_span() {
        for kind in both_kinds() {
            let mut t: RequestTable<VsnId, u64> = RequestTable::new(kind);
            for i in 1..=100u64 {
                t.insert(VsnId(i), i * 2);
            }
            assert_eq!(t.len(), 100);
            // Complete all but the stragglers 50 and 100.
            for i in 1..=100u64 {
                if i != 50 && i != 100 {
                    assert_eq!(t.remove(&VsnId(i)), Some(i * 2));
                }
            }
            assert_eq!(t.len(), 2);
            assert_eq!(t.get(&VsnId(50)), Some(&100));
            assert_eq!(t.remove(&VsnId(50)), Some(100));
            assert_eq!(t.remove(&VsnId(50)), None);
            assert_eq!(t.remove(&VsnId(100)), Some(200));
            assert!(t.is_empty());
        }
    }

    #[test]
    fn request_table_ring_footprint_is_the_open_window() {
        let mut t: RequestTable<VsnId, u64> = RequestTable::new(WorldStorageKind::Arena);
        // Issue/complete in lock-step: the ring must never grow past
        // the open window (1 here), however many ids pass through.
        for i in 1..=10_000u64 {
            t.insert(VsnId(i), i);
            assert_eq!(t.remove(&VsnId(i)), Some(i));
            assert!(t.ring.len() <= 1, "ring grew to {}", t.ring.len());
        }
    }
}
