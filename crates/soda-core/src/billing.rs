//! Usage metering and billing.
//!
//! The SODA Agent "performs other administrative tasks such as billing"
//! (§2.2). The natural utility metric is machine-instance-time: a service
//! holding `k` instances of `M` for `t` seconds owes `k × t` instance-
//! seconds, priced per hour. The meter is driven by the Master's
//! lifecycle events (node ready, resize, teardown).

use std::collections::BTreeMap;

use soda_sim::SimTime;

use crate::service::ServiceId;

/// One service's running meter.
#[derive(Clone, Debug)]
struct Meter {
    asp: String,
    /// Current total capacity (machine instances) accruing charges.
    instances: u32,
    /// When the current rate started.
    since: SimTime,
    /// Accumulated instance-seconds.
    accrued: f64,
    closed: bool,
}

impl Meter {
    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.since).as_secs_f64();
        self.accrued += dt * self.instances as f64;
        self.since = now;
    }
}

/// The Agent's billing ledger.
#[derive(Clone, Debug)]
pub struct BillingLedger {
    /// Price per machine-instance-hour (arbitrary currency units).
    pub rate_per_instance_hour: f64,
    meters: BTreeMap<ServiceId, Meter>,
}

impl BillingLedger {
    /// A ledger with the given hourly rate.
    pub fn new(rate_per_instance_hour: f64) -> Self {
        BillingLedger {
            rate_per_instance_hour,
            meters: BTreeMap::new(),
        }
    }

    /// Start metering a service at `instances × M` from `now`.
    pub fn start(&mut self, service: ServiceId, asp: &str, instances: u32, now: SimTime) {
        self.meters.insert(
            service,
            Meter {
                asp: asp.to_string(),
                instances,
                since: now,
                accrued: 0.0,
                closed: false,
            },
        );
    }

    /// The service's capacity changed (resize) at `now`.
    pub fn set_instances(&mut self, service: ServiceId, instances: u32, now: SimTime) {
        if let Some(m) = self.meters.get_mut(&service) {
            if !m.closed {
                m.accrue(now);
                m.instances = instances;
            }
        }
    }

    /// Stop metering (teardown) at `now`.
    pub fn stop(&mut self, service: ServiceId, now: SimTime) {
        if let Some(m) = self.meters.get_mut(&service) {
            if !m.closed {
                m.accrue(now);
                m.closed = true;
            }
        }
    }

    /// Instance-seconds accrued by a service as of `now`.
    pub fn usage_instance_seconds(&self, service: ServiceId, now: SimTime) -> f64 {
        match self.meters.get(&service) {
            None => 0.0,
            Some(m) => {
                let mut total = m.accrued;
                if !m.closed {
                    total += now.saturating_since(m.since).as_secs_f64() * m.instances as f64;
                }
                total
            }
        }
    }

    /// Total amount owed by one ASP across its services as of `now`.
    pub fn invoice(&self, asp: &str, now: SimTime) -> f64 {
        self.meters
            .iter()
            .filter(|(_, m)| m.asp == asp)
            .map(|(&id, _)| self.usage_instance_seconds(id, now))
            .sum::<f64>()
            / 3600.0
            * self.rate_per_instance_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metering_accrues_instance_seconds() {
        let mut b = BillingLedger::new(10.0);
        b.start(ServiceId(1), "biolab", 3, SimTime::from_secs(100));
        let used = b.usage_instance_seconds(ServiceId(1), SimTime::from_secs(160));
        assert!((used - 180.0).abs() < 1e-9, "{used}");
    }

    #[test]
    fn resize_changes_rate() {
        let mut b = BillingLedger::new(10.0);
        b.start(ServiceId(1), "a", 2, SimTime::ZERO);
        b.set_instances(ServiceId(1), 4, SimTime::from_secs(100)); // 200 so far
        let used = b.usage_instance_seconds(ServiceId(1), SimTime::from_secs(150));
        assert!((used - 400.0).abs() < 1e-9, "{used}");
    }

    #[test]
    fn stop_freezes_the_meter() {
        let mut b = BillingLedger::new(10.0);
        b.start(ServiceId(1), "a", 1, SimTime::ZERO);
        b.stop(ServiceId(1), SimTime::from_secs(50));
        let used = b.usage_instance_seconds(ServiceId(1), SimTime::from_secs(500));
        assert!((used - 50.0).abs() < 1e-9);
        // Resize after stop is ignored.
        b.set_instances(ServiceId(1), 100, SimTime::from_secs(600));
        assert!(
            (b.usage_instance_seconds(ServiceId(1), SimTime::from_secs(700)) - 50.0).abs() < 1e-9
        );
    }

    #[test]
    fn invoice_sums_per_asp() {
        let mut b = BillingLedger::new(3600.0); // 1 unit per instance-second
        b.start(ServiceId(1), "a", 1, SimTime::ZERO);
        b.start(ServiceId(2), "a", 2, SimTime::ZERO);
        b.start(ServiceId(3), "other", 5, SimTime::ZERO);
        let now = SimTime::from_secs(10);
        assert!((b.invoice("a", now) - 30.0).abs() < 1e-9);
        assert!((b.invoice("other", now) - 50.0).abs() < 1e-9);
        assert_eq!(b.invoice("nobody", now), 0.0);
    }

    #[test]
    fn unknown_service_has_zero_usage() {
        let b = BillingLedger::new(1.0);
        assert_eq!(
            b.usage_instance_seconds(ServiceId(9), SimTime::from_secs(10)),
            0.0
        );
    }
}
