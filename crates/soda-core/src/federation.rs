//! Wide-area HUP federation — the §3.5 extension.
//!
//! "One way to construct a wide-area HUP is to *federate* multiple local
//! HUPs, each having its own SODA Agent and Master." This module builds
//! exactly that: a set of sites, each a complete local HUP
//! (Agent + Master + Daemons), joined by WAN links. A federated creation
//! request tries the preferred site first and falls over to peers in
//! ascending WAN-distance order; the chosen site's Master handles
//! everything else locally. Image downloads that cross the WAN pay the
//! WAN link's bandwidth and latency.

use soda_hup::daemon::SodaDaemon;
use soda_net::link::LinkSpec;
use soda_sim::{SimDuration, SimTime};

use crate::api::CreationReply;
use crate::error::SodaError;
use crate::master::SodaMaster;
use crate::service::{ServiceId, ServiceSpec};

/// Identifier of a federation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// One local HUP in the federation.
pub struct Site {
    /// Site id.
    pub id: SiteId,
    /// Site name, e.g. `"purdue"`.
    pub name: String,
    /// The site's own Master.
    pub master: SodaMaster,
    /// The site's hosts.
    pub daemons: Vec<SodaDaemon>,
}

/// Where a federated service ended up.
#[derive(Debug)]
pub struct FederatedReply {
    /// The site that admitted the service.
    pub site: SiteId,
    /// The local reply.
    pub reply: CreationReply,
    /// Extra WAN transfer time paid for the image (zero when placed at
    /// the preferred site).
    pub wan_transfer: SimDuration,
}

/// A federation of local HUPs.
pub struct Federation {
    sites: Vec<Site>,
    /// `wan[i][j]` = link between site i and site j (by index).
    wan: Vec<Vec<Option<LinkSpec>>>,
}

impl Federation {
    /// A federation over the given sites, initially with no WAN links.
    pub fn new(sites: Vec<Site>) -> Self {
        let n = sites.len();
        Federation {
            sites,
            wan: vec![vec![None; n]; n],
        }
    }

    /// Connect two sites with a symmetric WAN link.
    pub fn connect(&mut self, a: SiteId, b: SiteId, link: LinkSpec) {
        let ia = self.index_of(a).expect("site a exists");
        let ib = self.index_of(b).expect("site b exists");
        self.wan[ia][ib] = Some(link);
        self.wan[ib][ia] = Some(link);
    }

    fn index_of(&self, id: SiteId) -> Option<usize> {
        self.sites.iter().position(|s| s.id == id)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True iff the federation has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Access a site.
    pub fn site(&self, id: SiteId) -> Option<&Site> {
        self.sites.iter().find(|s| s.id == id)
    }

    /// Mutable site access.
    pub fn site_mut(&mut self, id: SiteId) -> Option<&mut Site> {
        self.sites.iter_mut().find(|s| s.id == id)
    }

    /// Candidate sites for a request preferring `preferred`: the
    /// preferred site first, then connected peers by ascending WAN
    /// latency. Unconnected sites are not candidates (autonomous
    /// management: no route, no placement).
    pub fn candidate_sites(&self, preferred: SiteId) -> Vec<SiteId> {
        let Some(pi) = self.index_of(preferred) else {
            return Vec::new();
        };
        let mut peers: Vec<(SimDuration, SiteId)> = self.wan[pi]
            .iter()
            .enumerate()
            .filter_map(|(j, link)| link.map(|l| (l.latency, self.sites[j].id)))
            .collect();
        peers.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut out = vec![preferred];
        out.extend(peers.into_iter().map(|(_, id)| id));
        out
    }

    /// Create a service somewhere in the federation, preferring
    /// `preferred`. Placement falls over site-by-site on admission
    /// rejection; other errors abort. The `wan_transfer` in the reply
    /// accounts the extra image-shipping time to a remote site.
    pub fn create_service(
        &mut self,
        spec: ServiceSpec,
        asp: &str,
        preferred: SiteId,
        now: SimTime,
    ) -> Result<FederatedReply, SodaError> {
        let candidates = self.candidate_sites(preferred);
        if candidates.is_empty() {
            return Err(SodaError::BadRequest(format!("unknown site {preferred:?}")));
        }
        let image_bytes = spec.image.total_bytes();
        let pi = self.index_of(preferred).expect("checked");
        let mut last_err = None;
        for site_id in candidates {
            let si = self.index_of(site_id).expect("candidate exists");
            let wan_transfer = if si == pi {
                SimDuration::ZERO
            } else {
                self.wan[pi][si]
                    .expect("candidates are connected")
                    .transfer_time(image_bytes)
            };
            let site = &mut self.sites[si];
            match site
                .master
                .create_service_now(spec.clone(), asp, &mut site.daemons, now)
            {
                Ok(mut reply) => {
                    reply.creation_time += wan_transfer;
                    return Ok(FederatedReply {
                        site: site_id,
                        reply,
                        wan_transfer,
                    });
                }
                Err(e @ SodaError::AdmissionRejected { .. }) => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| SodaError::BadRequest("no candidate site".into())))
    }

    /// Tear down a federated service at its site.
    pub fn teardown(&mut self, site: SiteId, service: ServiceId) -> Result<(), SodaError> {
        let s = self
            .site_mut(site)
            .ok_or_else(|| SodaError::BadRequest(format!("unknown site {site:?}")))?;
        let mut daemons = std::mem::take(&mut s.daemons);
        let r = s.master.teardown(service, &mut daemons);
        s.daemons = daemons;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_hostos::resources::ResourceVector;
    use soda_hup::host::{HostId, HupHost};
    use soda_net::pool::IpPool;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn site(id: u32, name: &str, hosts: u32) -> Site {
        let daemons = (0..hosts)
            .map(|i| {
                let base = 10 + id * 50 + i * 10;
                SodaDaemon::new(HupHost::seattle(
                    HostId(id * 100 + i),
                    IpPool::new(format!("10.{id}.{base}.0").parse().unwrap(), 8),
                ))
            })
            .collect();
        Site {
            id: SiteId(id),
            name: name.into(),
            master: SodaMaster::new(),
            daemons,
        }
    }

    fn spec(n: u32) -> ServiceSpec {
        ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: n,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        }
    }

    fn federation() -> Federation {
        let mut f = Federation::new(vec![
            site(1, "purdue", 1),
            site(2, "wisconsin", 2),
            site(3, "berkeley", 2),
        ]);
        f.connect(
            SiteId(1),
            SiteId(2),
            LinkSpec::wan(10.0, soda_sim::SimDuration::from_millis(20)),
        );
        f.connect(
            SiteId(1),
            SiteId(3),
            LinkSpec::wan(10.0, soda_sim::SimDuration::from_millis(60)),
        );
        f
    }

    #[test]
    fn preferred_site_wins_when_it_fits() {
        let mut f = federation();
        let r = f
            .create_service(spec(2), "asp", SiteId(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(r.site, SiteId(1));
        assert_eq!(r.wan_transfer, SimDuration::ZERO);
    }

    #[test]
    fn failover_prefers_nearest_peer() {
        let mut f = federation();
        // Site 1 has one seattle host: 3 inflated instances fit, 4 don't.
        let r = f
            .create_service(spec(4), "asp", SiteId(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(r.site, SiteId(2), "wisconsin is 20 ms away, berkeley 60 ms");
        // The WAN shipping time for 29.3 MB at 10 Mbps ≈ 24 s.
        let secs = r.wan_transfer.as_secs_f64();
        assert!((20.0..30.0).contains(&secs), "wan transfer {secs}");
    }

    #[test]
    fn unconnected_site_is_not_a_candidate() {
        let mut f = Federation::new(vec![site(1, "a", 1), site(2, "b", 2)]);
        // No WAN links: only the preferred site is tried.
        assert_eq!(f.candidate_sites(SiteId(1)), vec![SiteId(1)]);
        let err = f
            .create_service(spec(4), "asp", SiteId(1), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, SodaError::AdmissionRejected { .. }));
    }

    #[test]
    fn federation_wide_rejection_when_nothing_fits() {
        let mut f = federation();
        let err = f
            .create_service(spec(60), "asp", SiteId(1), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, SodaError::AdmissionRejected { .. }));
    }

    #[test]
    fn teardown_routes_to_owning_site() {
        let mut f = federation();
        let r = f
            .create_service(spec(4), "asp", SiteId(1), SimTime::ZERO)
            .unwrap();
        f.teardown(r.site, r.reply.service).unwrap();
        // Torn down: capacity back, a second teardown errors.
        assert!(f.teardown(r.site, r.reply.service).is_err());
        assert!(f.teardown(SiteId(9), r.reply.service).is_err());
    }

    #[test]
    fn candidate_order_by_latency() {
        let f = federation();
        assert_eq!(
            f.candidate_sites(SiteId(1)),
            vec![SiteId(1), SiteId(2), SiteId(3)]
        );
        assert_eq!(f.candidate_sites(SiteId(2)), vec![SiteId(2), SiteId(1)]);
        assert!(f.candidate_sites(SiteId(99)).is_empty());
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }
}
