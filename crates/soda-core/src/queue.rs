//! Admission backlog queue — X-QUEUE.
//!
//! §3.2: "If the resource requirement cannot be satisfied, a request
//! failure will be reported." That is the paper's behaviour (and the
//! Master's default). A hosting *utility*, though, naturally wants a
//! backlog: park the request and admit it when capacity frees. This
//! wrapper adds exactly that, without touching the Master: rejected
//! creations queue up, and `retry` drains the queue after teardowns or
//! shrinks.

use std::collections::VecDeque;
use std::fmt;

use soda_hup::daemon::SodaDaemon;
use soda_sim::{BackoffPolicy, SimDuration, SimTime};

use crate::api::CreationReply;
use crate::error::SodaError;
use crate::master::SodaMaster;
use crate::service::ServiceSpec;

/// Handle for a queued request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueueTicket(pub u64);

impl fmt::Display for QueueTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queued-{}", self.0)
    }
}

/// How the backlog is drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Strictly in arrival order; a stuck head blocks the queue
    /// (no starvation of large requests).
    Fifo,
    /// Admit whatever fits, smallest total demand first (better
    /// utilisation, can starve large requests).
    SmallestFirst,
}

/// Outcome of a submission through the queue.
#[derive(Debug)]
pub enum Submission {
    /// Admitted immediately.
    Admitted(CreationReply),
    /// Parked in the backlog.
    Queued(QueueTicket),
    /// Rejected outright (malformed, or the backlog is full).
    Rejected(SodaError),
}

struct Pending {
    ticket: QueueTicket,
    spec: ServiceSpec,
    asp: String,
    queued_at: SimTime,
    /// Failed admission attempts so far.
    attempts: u32,
    /// Not retried before this (exponential backoff with ceiling).
    next_eligible: SimTime,
}

/// What one [`AdmissionQueue::retry`] pass did.
#[derive(Debug, Default)]
pub struct RetryOutcome {
    /// Requests admitted this pass, in admission order.
    pub admitted: Vec<(QueueTicket, CreationReply)>,
    /// Requests evicted after exhausting their attempt budget.
    pub rejected: Vec<QueueTicket>,
}

/// The backlog in front of a Master.
pub struct AdmissionQueue {
    pending: VecDeque<Pending>,
    policy: QueuePolicy,
    max_len: usize,
    next_ticket: u64,
    backoff: BackoffPolicy,
}

impl AdmissionQueue {
    /// A queue with the given drain policy and capacity bound.
    pub fn new(policy: QueuePolicy, max_len: usize) -> Self {
        AdmissionQueue {
            pending: VecDeque::new(),
            policy,
            max_len,
            next_ticket: 1,
            // A parked creation retries patiently: 1 s doubling to a
            // 60 s ceiling, evicted after 6 failed passes.
            backoff: BackoffPolicy {
                base: SimDuration::from_secs(1),
                ceiling: SimDuration::from_secs(60),
                max_attempts: 6,
                jitter: 0.0,
            },
        }
    }

    /// Replace the retry backoff policy.
    pub fn set_backoff(&mut self, backoff: BackoffPolicy) {
        self.backoff = backoff;
    }

    /// Number of parked requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True iff nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Submit a creation request: admit now if possible, otherwise park.
    pub fn submit(
        &mut self,
        master: &mut SodaMaster,
        daemons: &mut [SodaDaemon],
        spec: ServiceSpec,
        asp: &str,
        now: SimTime,
    ) -> Submission {
        match master.create_service_now(spec.clone(), asp, daemons, now) {
            Ok(reply) => Submission::Admitted(reply),
            Err(SodaError::AdmissionRejected { .. }) => {
                if self.pending.len() >= self.max_len {
                    return Submission::Rejected(SodaError::BadRequest(
                        "admission backlog full".into(),
                    ));
                }
                let ticket = QueueTicket(self.next_ticket);
                self.next_ticket += 1;
                self.pending.push_back(Pending {
                    ticket,
                    spec,
                    asp: asp.to_string(),
                    queued_at: now,
                    attempts: 0,
                    next_eligible: now,
                });
                Submission::Queued(ticket)
            }
            Err(e) => Submission::Rejected(e),
        }
    }

    /// Cancel a parked request. Returns whether it was present.
    pub fn cancel(&mut self, ticket: QueueTicket) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.ticket != ticket);
        self.pending.len() != before
    }

    /// Waiting time of a parked request.
    pub fn waiting_since(&self, ticket: QueueTicket) -> Option<SimTime> {
        self.pending
            .iter()
            .find(|p| p.ticket == ticket)
            .map(|p| p.queued_at)
    }

    /// Try to admit parked requests (call after capacity frees, or
    /// periodically). Each parked request is attempted at most once per
    /// pass, and only once its backoff window has elapsed; a failed
    /// attempt doubles the window (up to the policy ceiling), and a
    /// request that exhausts its attempt budget is evicted into
    /// [`RetryOutcome::rejected`].
    pub fn retry(
        &mut self,
        master: &mut SodaMaster,
        daemons: &mut [SodaDaemon],
        now: SimTime,
    ) -> RetryOutcome {
        let mut out = RetryOutcome::default();
        match self.policy {
            QueuePolicy::Fifo => {
                // Admit from the head; the first that still doesn't fit
                // (or isn't yet eligible) blocks the rest.
                while let Some(head) = self.pending.front() {
                    if now < head.next_eligible {
                        break;
                    }
                    match master.create_service_now(head.spec.clone(), &head.asp, daemons, now) {
                        Ok(reply) => {
                            let p = self.pending.pop_front().expect("head exists");
                            out.admitted.push((p.ticket, reply));
                        }
                        Err(_) => {
                            // An evicted head unblocks the next entry,
                            // which may be eligible and fit right now; a
                            // head that stays queued (backing off) still
                            // blocks the rest.
                            if self.note_failure(0, now, &mut out) {
                                continue;
                            }
                            break;
                        }
                    }
                }
            }
            QueuePolicy::SmallestFirst => {
                // One pass in smallest-demand order. Capacity only
                // shrinks within a pass, so an entry that failed cannot
                // fit later in the same pass — one attempt each is
                // exact, not an approximation.
                let mut order: Vec<QueueTicket> = {
                    let mut idx: Vec<usize> = (0..self.pending.len()).collect();
                    idx.sort_by_key(|&i| {
                        let d = self.pending[i].spec.total_demand();
                        (d.cpu_mhz, self.pending[i].ticket.0)
                    });
                    idx.into_iter().map(|i| self.pending[i].ticket).collect()
                };
                for ticket in order.drain(..) {
                    let Some(i) = self.pending.iter().position(|p| p.ticket == ticket) else {
                        continue;
                    };
                    if now < self.pending[i].next_eligible {
                        continue;
                    }
                    let (spec, asp) = (self.pending[i].spec.clone(), self.pending[i].asp.clone());
                    match master.create_service_now(spec, &asp, daemons, now) {
                        Ok(reply) => {
                            let p = self.pending.remove(i).expect("index valid");
                            out.admitted.push((p.ticket, reply));
                        }
                        Err(_) => {
                            self.note_failure(i, now, &mut out);
                        }
                    }
                }
            }
        }
        out
    }

    /// Record a failed attempt on `pending[i]`: back off, or evict when
    /// the attempt budget is spent. Returns whether the entry was
    /// evicted.
    fn note_failure(&mut self, i: usize, now: SimTime, out: &mut RetryOutcome) -> bool {
        let p = &mut self.pending[i];
        p.attempts += 1;
        if self.backoff.exhausted(p.attempts) {
            let p = self.pending.remove(i).expect("index valid");
            out.rejected.push(p.ticket);
            true
        } else {
            p.next_eligible = now + self.backoff.delay(p.attempts);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_hostos::resources::ResourceVector;
    use soda_hup::host::{HostId, HupHost};
    use soda_net::pool::IpPool;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn setup() -> (SodaMaster, Vec<SodaDaemon>) {
        let master = SodaMaster::new();
        let daemons = vec![SodaDaemon::new(HupHost::seattle(
            HostId(1),
            IpPool::new("10.0.0.0".parse().unwrap(), 16),
        ))];
        (master, daemons)
    }

    fn spec(n: u32, name: &str) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network"],
            app_class: StartupClass::Light,
            instances: n,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        }
    }

    #[test]
    fn admits_when_capacity_exists() {
        let (mut master, mut daemons) = setup();
        let mut q = AdmissionQueue::new(QueuePolicy::Fifo, 8);
        match q.submit(
            &mut master,
            &mut daemons,
            spec(1, "a"),
            "asp",
            SimTime::ZERO,
        ) {
            Submission::Admitted(_) => {}
            other => panic!("expected admission, got {other:?}"),
        }
        assert!(q.is_empty());
    }

    #[test]
    fn queues_then_drains_fifo_after_teardown() {
        let (mut master, mut daemons) = setup();
        let mut q = AdmissionQueue::new(QueuePolicy::Fifo, 8);
        // Fill the host (seattle fits 3 inflated instances).
        let first = match q.submit(
            &mut master,
            &mut daemons,
            spec(3, "big"),
            "asp",
            SimTime::ZERO,
        ) {
            Submission::Admitted(r) => r.service,
            other => panic!("{other:?}"),
        };
        // These two park.
        let t1 = match q.submit(
            &mut master,
            &mut daemons,
            spec(2, "b"),
            "asp",
            SimTime::from_secs(1),
        ) {
            Submission::Queued(t) => t,
            other => panic!("{other:?}"),
        };
        let t2 = match q.submit(
            &mut master,
            &mut daemons,
            spec(1, "c"),
            "asp",
            SimTime::from_secs(2),
        ) {
            Submission::Queued(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(q.len(), 2);
        assert_eq!(q.waiting_since(t1), Some(SimTime::from_secs(1)));
        // Nothing drains while full.
        let pass = q.retry(&mut master, &mut daemons, SimTime::from_secs(3));
        assert!(pass.admitted.is_empty());
        assert!(pass.rejected.is_empty());
        // Free the capacity: both drain, FIFO order.
        master.teardown(first, &mut daemons).unwrap();
        let pass = q.retry(&mut master, &mut daemons, SimTime::from_secs(4));
        assert_eq!(pass.admitted.len(), 2);
        assert_eq!(pass.admitted[0].0, t1);
        assert_eq!(pass.admitted[1].0, t2);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_head_blocks_but_smallest_first_leapfrogs() {
        // Fill the host completely; queue a 3-instance then a 1-instance
        // request; then shrink the filler to free exactly one instance.
        let build = |policy| {
            let (mut master, mut daemons) = setup();
            let mut q = AdmissionQueue::new(policy, 8);
            let filler = match q.submit(
                &mut master,
                &mut daemons,
                spec(3, "filler"),
                "asp",
                SimTime::ZERO,
            ) {
                Submission::Admitted(r) => r.service,
                other => panic!("{other:?}"),
            };
            let Submission::Queued(big) = q.submit(
                &mut master,
                &mut daemons,
                spec(3, "big"),
                "asp",
                SimTime::ZERO,
            ) else {
                panic!("big must queue")
            };
            let Submission::Queued(small) = q.submit(
                &mut master,
                &mut daemons,
                spec(1, "small"),
                "asp",
                SimTime::ZERO,
            ) else {
                panic!("small must queue")
            };
            master
                .resize(filler, 2, &mut daemons, SimTime::from_secs(1))
                .unwrap();
            let pass = q.retry(&mut master, &mut daemons, SimTime::from_secs(1));
            (pass.admitted, big, small, q.len())
        };
        // FIFO: the 3-instance head cannot fit (only 1 free) → nothing
        // admits, even though the small one would fit.
        let (fifo_admits, _, _, fifo_left) = build(QueuePolicy::Fifo);
        assert!(fifo_admits.is_empty());
        assert_eq!(fifo_left, 2);
        // SmallestFirst: the 1-instance request leapfrogs.
        let (sf_admits, _big, small, sf_left) = build(QueuePolicy::SmallestFirst);
        assert_eq!(sf_admits.len(), 1);
        assert_eq!(sf_admits[0].0, small);
        assert_eq!(sf_left, 1);
    }

    #[test]
    fn backlog_bound_and_cancel() {
        let (mut master, mut daemons) = setup();
        let mut q = AdmissionQueue::new(QueuePolicy::Fifo, 1);
        q.submit(
            &mut master,
            &mut daemons,
            spec(3, "fill"),
            "asp",
            SimTime::ZERO,
        );
        let Submission::Queued(t) = q.submit(
            &mut master,
            &mut daemons,
            spec(1, "a"),
            "asp",
            SimTime::ZERO,
        ) else {
            panic!("must queue")
        };
        match q.submit(
            &mut master,
            &mut daemons,
            spec(1, "b"),
            "asp",
            SimTime::ZERO,
        ) {
            Submission::Rejected(SodaError::BadRequest(msg)) => {
                assert!(msg.contains("backlog full"))
            }
            other => panic!("{other:?}"),
        }
        assert!(q.cancel(t));
        assert!(!q.cancel(t));
        assert!(q.is_empty());
    }

    #[test]
    fn retry_backs_off_then_rejects_after_max_attempts() {
        let (mut master, mut daemons) = setup();
        let mut q = AdmissionQueue::new(QueuePolicy::Fifo, 8);
        q.set_backoff(BackoffPolicy {
            base: SimDuration::from_secs(1),
            ceiling: SimDuration::from_secs(4),
            max_attempts: 3,
            jitter: 0.0,
        });
        // Fill the host so the parked request can never fit.
        q.submit(
            &mut master,
            &mut daemons,
            spec(3, "fill"),
            "asp",
            SimTime::ZERO,
        );
        let Submission::Queued(t) = q.submit(
            &mut master,
            &mut daemons,
            spec(2, "stuck"),
            "asp",
            SimTime::ZERO,
        ) else {
            panic!("must queue")
        };
        // Attempt 1 at t=0 fails → next eligible at t=1 (base delay).
        let pass = q.retry(&mut master, &mut daemons, SimTime::ZERO);
        assert!(pass.admitted.is_empty() && pass.rejected.is_empty());
        // Before the backoff window elapses, the entry is not retried
        // (its attempt count must not burn down).
        let pass = q.retry(&mut master, &mut daemons, SimTime::from_millis(500));
        assert!(pass.admitted.is_empty() && pass.rejected.is_empty());
        assert_eq!(q.len(), 1);
        // Attempt 2 at t=1 fails → delay doubles to 2 s.
        let pass = q.retry(&mut master, &mut daemons, SimTime::from_secs(1));
        assert!(pass.rejected.is_empty());
        let pass = q.retry(&mut master, &mut daemons, SimTime::from_secs(2));
        assert!(pass.rejected.is_empty());
        // Attempt 3 at t=3 exhausts the budget: evicted, not retried.
        let pass = q.retry(&mut master, &mut daemons, SimTime::from_secs(3));
        assert_eq!(pass.rejected, vec![t]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_eviction_unblocks_next_entry_in_same_pass() {
        let (mut master, mut daemons) = setup();
        let mut q = AdmissionQueue::new(QueuePolicy::Fifo, 8);
        q.set_backoff(BackoffPolicy {
            base: SimDuration::from_secs(1),
            ceiling: SimDuration::from_secs(4),
            max_attempts: 2,
            jitter: 0.0,
        });
        // Fill the host (seattle fits 3 inflated instances).
        let filler = match q.submit(
            &mut master,
            &mut daemons,
            spec(3, "fill"),
            "asp",
            SimTime::ZERO,
        ) {
            Submission::Admitted(r) => r.service,
            other => panic!("{other:?}"),
        };
        let Submission::Queued(doomed) = q.submit(
            &mut master,
            &mut daemons,
            spec(2, "doomed"),
            "asp",
            SimTime::ZERO,
        ) else {
            panic!("must queue")
        };
        let Submission::Queued(small) = q.submit(
            &mut master,
            &mut daemons,
            spec(1, "small"),
            "asp",
            SimTime::ZERO,
        ) else {
            panic!("must queue")
        };
        // Attempt 1: head fails, backs off, blocks the rest.
        let pass = q.retry(&mut master, &mut daemons, SimTime::ZERO);
        assert!(pass.admitted.is_empty() && pass.rejected.is_empty());
        // Free exactly one instance: the head still cannot fit, but the
        // entry behind it can.
        master
            .resize(filler, 2, &mut daemons, SimTime::from_millis(500))
            .unwrap();
        // Attempt 2 exhausts the budget: the head is evicted and the
        // now-unblocked entry admits in the SAME pass.
        let pass = q.retry(&mut master, &mut daemons, SimTime::from_secs(1));
        assert_eq!(pass.rejected, vec![doomed]);
        assert_eq!(pass.admitted.len(), 1);
        assert_eq!(pass.admitted[0].0, small);
        assert!(q.is_empty());
    }

    #[test]
    fn malformed_requests_reject_immediately() {
        let (mut master, mut daemons) = setup();
        let mut q = AdmissionQueue::new(QueuePolicy::Fifo, 8);
        match q.submit(
            &mut master,
            &mut daemons,
            spec(0, "zero"),
            "asp",
            SimTime::ZERO,
        ) {
            Submission::Rejected(SodaError::BadRequest(_)) => {}
            other => panic!("{other:?}"),
        }
        assert!(q.is_empty());
    }
}
