//! Sharded control plane: placement cells with per-cell Masters.
//!
//! The monolithic `SodaWorld` funnels every admission, placement, and
//! recovery decision through one Master. To scale past that ceiling the
//! host roster is partitioned into *placement cells* ([`ShardMap`] in
//! `config`), and each cell gets its own full Master stack: service
//! records, placement index, admission path, recovery episodes, and a
//! write-ahead [`Journal`]. Cells coordinate only through explicit,
//! epoch-stamped messages that ride the engine event queue with a
//! configurable inter-shard latency — never through shared memory.
//!
//! Key properties:
//!
//! - **n = 1 is the monolith.** Every sharded code path degenerates
//!   exactly when there is a single cell: the cell slice is the whole
//!   roster, the round-robin home cursor never moves, spill retries are
//!   gated on `n > 1`, the id lane is `base 1, stride 1`, and
//!   `shard_salt(0) == 0` leaves the recovery RNG seed untouched. A
//!   tier-1 differential gate holds `Sharded(1)` bit-identical to
//!   `Monolith` (trajectory + event-log fingerprints).
//! - **Global ids without coordination.** Cell `k` of `n` allocates
//!   service/VSN ids from the lane `{k+1, k+1+n, k+1+2n, ...}`
//!   ([`SodaMaster::set_id_lane`]), so `(id - 1) % n` recovers the home
//!   shard of any id with no inter-cell id traffic.
//! - **Cross-shard spill.** Admission and recovery placement first try
//!   the home cell's hosts; if the cell is full, the home Master
//!   re-places over the whole fleet (one simulated reservation
//!   round-trip of extra latency on the spilled creation's priming).
//! - **Shard-local beliefs, messaged conclusions.** Heartbeat beliefs
//!   about a host live only in that host's cell. When a cell detects a
//!   dead node whose service is homed elsewhere (a spilled placement),
//!   it sends a [`ShardMsg::NodeDown`] stamped with the destination
//!   journal's epoch; deliveries whose epoch no longer matches (the home
//!   Master failed over in flight) are dropped as stale — the same
//!   generation-guard idiom the NIC wakeups use.

use soda_hup::host::HostId;
use soda_sim::{Ctx, Event, SimDuration};
use soda_vmm::vsn::VsnId;

use crate::config::{ShardId, ShardMap};
use crate::journal::Journal;
use crate::master::SodaMaster;
use crate::recovery::{self, RecoveryManager};
use crate::service::ServiceId;
use crate::world::SodaWorld;

/// Which control plane drives a world: the single shared-state Master
/// (the oracle), or `n` placement cells coordinated by messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ControlPlaneKind {
    /// One Master owns every host and every service (the seed design).
    #[default]
    Monolith,
    /// `n` cells, each with its own Master/journal/recovery stack.
    /// `Sharded(0)` and `Sharded(1)` both mean a single cell.
    Sharded(u32),
}

impl ControlPlaneKind {
    /// Number of cells this kind implies (always at least 1).
    pub fn shards(&self) -> u32 {
        match self {
            ControlPlaneKind::Monolith => 1,
            ControlPlaneKind::Sharded(n) => (*n).max(1),
        }
    }

    /// Stable label for bench records and logs.
    pub fn label(&self) -> String {
        match self {
            ControlPlaneKind::Monolith => "monolith".to_string(),
            ControlPlaneKind::Sharded(n) => format!("sharded-{}", (*n).max(1)),
        }
    }
}

/// Seed salt for cell `k`'s recovery RNG, so cells draw independent
/// backoff jitter. `shard_salt(0) == 0`: shard 0 keeps the monolith's
/// exact RNG stream, which the n=1 differential gate depends on.
pub fn shard_salt(k: u32) -> u64 {
    (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// One placement cell's control-plane stack, for shards 1..n. Shard 0
/// reuses the world's original `master`/`journal`/`recovery` fields so
/// the monolith path stays byte-for-byte the seed code.
pub struct ShardCell {
    /// The cell's Master: service records, placement, inventory.
    pub master: SodaMaster,
    /// The cell's write-ahead journal (admission through teardown).
    pub journal: Journal,
    /// The cell's recovery manager: episodes, backoff RNG, and beliefs
    /// about the cell's own hosts.
    pub recovery: RecoveryManager,
}

/// The world's sharding state: the kind switch, the host→cell map, the
/// extra cells, and message-layer counters.
pub struct ShardPlane {
    /// Monolith vs Sharded(n).
    pub kind: ControlPlaneKind,
    /// One-way latency of an inter-shard message.
    pub latency: SimDuration,
    /// Contiguous balanced host→cell partition.
    pub map: ShardMap,
    /// Cells 1..n-1 (shard 0 lives on the world itself).
    pub cells: Vec<ShardCell>,
    /// Round-robin cursor choosing each new service's home cell.
    pub next_home: u32,
    /// Creations that could not fit in their home cell and were
    /// re-placed over the whole fleet.
    pub spills: u64,
    /// Inter-shard messages sent.
    pub msgs_sent: u64,
    /// Inter-shard messages dropped because the destination epoch moved.
    pub msgs_stale: u64,
}

impl ShardPlane {
    /// Default one-way inter-shard latency: cells live in one facility,
    /// so a control message costs about a LAN round trip.
    pub const DEFAULT_LATENCY: SimDuration = SimDuration::from_micros(500);

    /// A plane with no extra cells yet (monolith, or pre-`configure_shards`).
    pub fn new(kind: ControlPlaneKind, latency: SimDuration, hosts: usize) -> Self {
        Self {
            kind,
            latency,
            map: ShardMap::new(kind.shards(), hosts),
            cells: Vec::new(),
            next_home: 0,
            spills: 0,
            msgs_sent: 0,
            msgs_stale: 0,
        }
    }

    /// Number of cells (1 for the monolith).
    pub fn count(&self) -> u32 {
        self.map.count()
    }
}

/// An inter-shard control message. Payloads are plain ids so messages
/// stay `Copy` and allocation-free on the event queue.
#[derive(Clone, Copy, Debug)]
pub enum ShardMsg {
    /// A cell observed (via its heartbeat beliefs) that `vsn` of the
    /// foreign-homed `service` is down; the home shard owns the episode.
    NodeDown {
        service: ServiceId,
        vsn: VsnId,
        capacity: u32,
        origin_host: Option<HostId>,
        try_reprime: bool,
    },
}

impl ShardMsg {
    /// Stable tag for observability events.
    pub fn kind(&self) -> &'static str {
        match self {
            ShardMsg::NodeDown { .. } => "node_down",
        }
    }
}

/// Send `msg` from cell `from` to cell `to`, stamped with `to`'s current
/// journal epoch. The message rides the engine queue for the configured
/// inter-shard latency; on delivery, a stale epoch (the destination
/// Master failed over in flight) drops the message.
pub(crate) fn send_shard_msg(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    from: ShardId,
    to: ShardId,
    msg: ShardMsg,
) {
    let epoch = world.journal_of(to).epoch();
    let latency = world.shards.latency;
    world.shards.msgs_sent += 1;
    ctx.schedule_in_as("shard_msg", latency, move |w: &mut SodaWorld, ctx| {
        deliver_shard_msg(w, ctx, from, to, epoch, msg);
    });
}

fn deliver_shard_msg(
    world: &mut SodaWorld,
    ctx: &mut Ctx<SodaWorld>,
    from: ShardId,
    to: ShardId,
    epoch: u64,
    msg: ShardMsg,
) {
    let now = ctx.now();
    if world.journal_of(to).epoch() != epoch {
        world.shards.msgs_stale += 1;
        world.obs.record(
            now,
            Event::ShardMsgStale {
                to: to.0,
                epoch,
                kind: msg.kind(),
            },
        );
        return;
    }
    world.obs.record(
        now,
        Event::ShardMsgDelivered {
            from: from.0,
            to: to.0,
            kind: msg.kind(),
        },
    );
    match msg {
        ShardMsg::NodeDown {
            service,
            vsn,
            capacity,
            origin_host,
            try_reprime,
        } => {
            recovery::deliver_node_down(
                world,
                ctx,
                service,
                vsn,
                capacity,
                origin_host,
                try_reprime,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_shard_counts_and_labels() {
        assert_eq!(ControlPlaneKind::Monolith.shards(), 1);
        assert_eq!(ControlPlaneKind::Sharded(0).shards(), 1);
        assert_eq!(ControlPlaneKind::Sharded(1).shards(), 1);
        assert_eq!(ControlPlaneKind::Sharded(4).shards(), 4);
        assert_eq!(ControlPlaneKind::Monolith.label(), "monolith");
        assert_eq!(ControlPlaneKind::Sharded(4).label(), "sharded-4");
        assert_eq!(ControlPlaneKind::Sharded(0).label(), "sharded-1");
    }

    #[test]
    fn salt_zero_preserves_monolith_seed() {
        assert_eq!(shard_salt(0), 0);
        assert_ne!(shard_salt(1), shard_salt(2));
    }

    #[test]
    fn plane_defaults_to_one_cell() {
        let p = ShardPlane::new(ControlPlaneKind::Monolith, ShardPlane::DEFAULT_LATENCY, 10);
        assert_eq!(p.count(), 1);
        assert!(p.cells.is_empty());
        assert_eq!(p.map.range(ShardId(0)), 0..10);
    }
}
