//! The SODA Agent.
//!
//! "SODA Agent is a middleware-level entity serving as the interface
//! between the ASPs and the HUP. It accepts service creation requests
//! and performs other administrative tasks such as billing." (§2.2)
//! "As the interface between ASPs and the HUP, the SODA Agent
//! authenticates the ASP and passes the request to the SODA Master."
//! (§3.1)

use std::collections::BTreeMap;

use soda_sim::SimTime;

use crate::api::Credential;
use crate::billing::BillingLedger;
use crate::error::SodaError;
use crate::service::ServiceId;

/// The ASP-facing front door of the HUP.
#[derive(Clone, Debug)]
pub struct SodaAgent {
    registered: BTreeMap<String, String>,
    billing: BillingLedger,
    authenticated_calls: u64,
    rejected_calls: u64,
}

impl SodaAgent {
    /// An agent with the given billing rate (per machine-instance-hour).
    pub fn new(rate_per_instance_hour: f64) -> Self {
        SodaAgent {
            registered: BTreeMap::new(),
            billing: BillingLedger::new(rate_per_instance_hour),
            authenticated_calls: 0,
            rejected_calls: 0,
        }
    }

    /// Register an ASP and its API key (out-of-band contract setup).
    pub fn register_asp(&mut self, asp: impl Into<String>, key: impl Into<String>) {
        self.registered.insert(asp.into(), key.into());
    }

    /// Remove an ASP (contract ended).
    pub fn unregister_asp(&mut self, asp: &str) -> bool {
        self.registered.remove(asp).is_some()
    }

    /// Authenticate a credential; every API call passes through here
    /// before reaching the Master. Constant-shape comparison (no early
    /// exit on the key) — a nod to timing-attack hygiene even in a
    /// simulator.
    pub fn authenticate(&mut self, cred: &Credential) -> Result<(), SodaError> {
        let ok = match self.registered.get(&cred.asp) {
            Some(expected) => {
                let a = expected.as_bytes();
                let b = cred.key.as_bytes();
                let mut diff = a.len() ^ b.len();
                for i in 0..a.len().min(b.len()) {
                    diff |= (a[i] ^ b[i]) as usize;
                }
                diff == 0
            }
            None => false,
        };
        if ok {
            self.authenticated_calls += 1;
            Ok(())
        } else {
            self.rejected_calls += 1;
            Err(SodaError::AuthenticationFailed {
                asp: cred.asp.clone(),
            })
        }
    }

    /// Billing hooks, driven by the Master's lifecycle notifications.
    pub fn billing_start(&mut self, service: ServiceId, asp: &str, instances: u32, now: SimTime) {
        self.billing.start(service, asp, instances, now);
    }

    /// Capacity change (resize) notification.
    pub fn billing_resize(&mut self, service: ServiceId, instances: u32, now: SimTime) {
        self.billing.set_instances(service, instances, now);
    }

    /// Teardown notification.
    pub fn billing_stop(&mut self, service: ServiceId, now: SimTime) {
        self.billing.stop(service, now);
    }

    /// The amount an ASP owes as of `now`.
    pub fn invoice(&self, asp: &str, now: SimTime) -> f64 {
        self.billing.invoice(asp, now)
    }

    /// Usage for one service, instance-seconds.
    pub fn usage(&self, service: ServiceId, now: SimTime) -> f64 {
        self.billing.usage_instance_seconds(service, now)
    }

    /// (authenticated, rejected) call counters.
    pub fn call_stats(&self) -> (u64, u64) {
        (self.authenticated_calls, self.rejected_calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(asp: &str, key: &str) -> Credential {
        Credential {
            asp: asp.into(),
            key: key.into(),
        }
    }

    #[test]
    fn authentication_accepts_registered_key() {
        let mut a = SodaAgent::new(1.0);
        a.register_asp("biolab", "s3cret");
        assert!(a.authenticate(&cred("biolab", "s3cret")).is_ok());
        assert_eq!(a.call_stats(), (1, 0));
    }

    #[test]
    fn authentication_rejects_bad_key_and_unknown_asp() {
        let mut a = SodaAgent::new(1.0);
        a.register_asp("biolab", "s3cret");
        assert!(matches!(
            a.authenticate(&cred("biolab", "wrong")),
            Err(SodaError::AuthenticationFailed { .. })
        ));
        assert!(
            a.authenticate(&cred("biolab", "s3cret0")).is_err(),
            "prefix key"
        );
        assert!(a.authenticate(&cred("biolab", "")).is_err());
        assert!(a.authenticate(&cred("ghost", "s3cret")).is_err());
        assert_eq!(a.call_stats(), (0, 4));
    }

    #[test]
    fn unregistering_revokes_access() {
        let mut a = SodaAgent::new(1.0);
        a.register_asp("biolab", "k");
        assert!(a.unregister_asp("biolab"));
        assert!(!a.unregister_asp("biolab"));
        assert!(a.authenticate(&cred("biolab", "k")).is_err());
    }

    #[test]
    fn billing_flows_through_agent() {
        let mut a = SodaAgent::new(3600.0); // 1 unit per instance-second
        a.billing_start(ServiceId(1), "biolab", 2, SimTime::ZERO);
        a.billing_resize(ServiceId(1), 4, SimTime::from_secs(10)); // 20 accrued
        a.billing_stop(ServiceId(1), SimTime::from_secs(20)); // +40
        let now = SimTime::from_secs(100);
        assert!((a.usage(ServiceId(1), now) - 60.0).abs() < 1e-9);
        assert!((a.invoice("biolab", now) - 60.0).abs() < 1e-9);
    }
}
