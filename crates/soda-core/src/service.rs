//! Service specifications and records.
//!
//! To host a service the ASP prepares "(1) the image of service S …
//! stored in a machine owned by the ASP; (2) the resource requirement of
//! S … specified as a tuple `<n, M>`" (§3). The spec below carries both,
//! plus what our bootstrap model needs (the system services the app
//! requires and the app's startup weight).

use std::fmt;

use soda_hostos::resources::ResourceVector;
use soda_hup::host::HostId;
use soda_vmm::rootfs::RootFsImage;
use soda_vmm::sysservices::StartupClass;
use soda_vmm::vsn::VsnId;

/// Identifier of a hosted service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(pub u64);

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc-{}", self.0)
    }
}

/// What the ASP submits with a creation request.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Service name (also used as guest hostname).
    pub name: String,
    /// The packaged image at the ASP's repository.
    pub image: RootFsImage,
    /// Guest system services the application requires (tailoring input).
    pub required_services: Vec<&'static str>,
    /// Startup weight of the application itself.
    pub app_class: StartupClass,
    /// Number of machine instances `n` of `<n, M>`.
    pub instances: u32,
    /// The machine configuration `M`.
    pub machine: ResourceVector,
    /// TCP port the service listens on in every node.
    pub port: u16,
}

impl ServiceSpec {
    /// Total nominal demand `n × M` (before slow-down inflation).
    pub fn total_demand(&self) -> ResourceVector {
        self.machine * self.instances
    }
}

/// Lifecycle of a hosted service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceState {
    /// Admitted; nodes are priming.
    Creating,
    /// All nodes primed; switch up; serving.
    Running,
    /// A resize is in flight.
    Resizing,
    /// Torn down; terminal.
    TornDown,
}

/// One placed node of a service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacedNode {
    /// The HUP host the node lives on.
    pub host: HostId,
    /// The node.
    pub vsn: VsnId,
    /// Machine instances mapped to this node (Table 3's capacity).
    pub capacity: u32,
}

/// The Master's record of a hosted service.
#[derive(Clone, Debug)]
pub struct ServiceRecord {
    /// Service id.
    pub id: ServiceId,
    /// The submitted spec.
    pub spec: ServiceSpec,
    /// Owning ASP.
    pub asp: String,
    /// Current state.
    pub state: ServiceState,
    /// Placed nodes.
    pub nodes: Vec<PlacedNode>,
    /// Nodes that have finished priming (creation completes when this
    /// reaches `nodes.len()`).
    pub nodes_ready: usize,
}

impl ServiceRecord {
    /// Find a placed node by VSN id.
    pub fn node(&self, vsn: VsnId) -> Option<&PlacedNode> {
        self.nodes.iter().find(|n| n.vsn == vsn)
    }

    /// Total placed capacity in machine instances.
    pub fn placed_capacity(&self) -> u32 {
        self.nodes.iter().map(|n| n.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_vmm::rootfs::RootFsCatalog;

    fn spec() -> ServiceSpec {
        ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: 3,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        }
    }

    #[test]
    fn total_demand_is_n_times_m() {
        let s = spec();
        assert_eq!(s.total_demand(), ResourceVector::TABLE1_EXAMPLE * 3);
    }

    #[test]
    fn record_accessors() {
        let rec = ServiceRecord {
            id: ServiceId(1),
            spec: spec(),
            asp: "biolab".into(),
            state: ServiceState::Creating,
            nodes: vec![
                PlacedNode {
                    host: HostId(1),
                    vsn: VsnId(10),
                    capacity: 2,
                },
                PlacedNode {
                    host: HostId(2),
                    vsn: VsnId(11),
                    capacity: 1,
                },
            ],
            nodes_ready: 0,
        };
        assert_eq!(rec.placed_capacity(), 3);
        assert_eq!(rec.node(VsnId(11)).unwrap().host, HostId(2));
        assert!(rec.node(VsnId(99)).is_none());
        assert_eq!(ServiceId(1).to_string(), "svc-1");
    }
}
