//! Request-switching policies.
//!
//! "The service switch enforces a default request switching policy,
//! which can be *replaced* with a service-specific policy by the ASP."
//! (§3.4) The default in the paper's experiments is weighted round-robin
//! "with the weights reflecting the capacity of the two virtual service
//! nodes" (§5). The trait below is the replacement point; several
//! alternatives are provided, including a deliberately ill-behaved one
//! for the isolation argument ("even if the service-specific policy is
//! ill-behaving, it will not affect other services hosted in the HUP").

use soda_sim::SimRng;

/// What a policy sees about each backend at pick time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackendView {
    /// Relative capacity (machine instances `M`).
    pub capacity: u32,
    /// Healthy (running, reachable)?
    pub healthy: bool,
    /// Requests currently in flight to this backend.
    pub outstanding: u32,
    /// Exponentially weighted moving average of observed response time
    /// (seconds; 0.0 until the first completion).
    pub ewma_response: f64,
}

/// A replaceable request-switching policy.
pub trait SwitchPolicy: Send {
    /// Choose a backend index for the next request, or `None` to drop it
    /// (no healthy backend, or a broken custom policy).
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize>;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Smooth weighted round-robin (the default policy): each backend's
/// current weight grows by its capacity every round; the largest current
/// weight wins and is decremented by the total. Produces exactly
/// capacity-proportional interleavings, matching Figure 4's
/// "approximately twice as many requests".
///
/// ```
/// use soda_core::policy::{BackendView, SwitchPolicy, WeightedRoundRobin};
/// let backends: Vec<BackendView> = [2, 1]
///     .iter()
///     .map(|&capacity| BackendView {
///         capacity,
///         healthy: true,
///         outstanding: 0,
///         ewma_response: 0.0,
///     })
///     .collect();
/// let mut wrr = WeightedRoundRobin::new();
/// let picks: Vec<usize> = (0..6).map(|_| wrr.pick(&backends).unwrap()).collect();
/// // Period A B A: the 2-capacity backend serves twice as often.
/// assert_eq!(picks, vec![0, 1, 0, 0, 1, 0]);
/// ```
#[derive(Debug, Default)]
pub struct WeightedRoundRobin {
    current: Vec<i64>,
}

impl WeightedRoundRobin {
    /// A fresh instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SwitchPolicy for WeightedRoundRobin {
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize> {
        if self.current.len() != backends.len() {
            self.current = vec![0; backends.len()];
        }
        let mut total: i64 = 0;
        let mut best: Option<usize> = None;
        for (i, b) in backends.iter().enumerate() {
            if !b.healthy || b.capacity == 0 {
                continue;
            }
            let w = b.capacity as i64;
            self.current[i] += w;
            total += w;
            match best {
                Some(j) if self.current[j] >= self.current[i] => {}
                _ => best = Some(i),
            }
        }
        let chosen = best?;
        self.current[chosen] -= total;
        Some(chosen)
    }

    fn name(&self) -> &'static str {
        "weighted-round-robin"
    }
}

/// Plain round-robin, ignoring capacity.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SwitchPolicy for RoundRobin {
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize> {
        if backends.is_empty() {
            return None;
        }
        for _ in 0..backends.len() {
            let i = self.next % backends.len();
            self.next = self.next.wrapping_add(1);
            if backends[i].healthy {
                return Some(i);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random choice among healthy backends.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: SimRng,
}

impl RandomPolicy {
    /// A seeded random policy (deterministic per seed).
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SimRng::new(seed),
        }
    }
}

impl SwitchPolicy for RandomPolicy {
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize> {
        let healthy: Vec<usize> = backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.healthy)
            .map(|(i, _)| i)
            .collect();
        if healthy.is_empty() {
            None
        } else {
            Some(healthy[self.rng.index(healthy.len())])
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Least outstanding-per-capacity: send to the backend with the lowest
/// normalised in-flight count.
#[derive(Debug, Default)]
pub struct LeastConnections;

impl LeastConnections {
    /// A fresh instance.
    pub fn new() -> Self {
        LeastConnections
    }
}

impl SwitchPolicy for LeastConnections {
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize> {
        backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.healthy && b.capacity > 0)
            .min_by(|(_, a), (_, b)| {
                let la = a.outstanding as f64 / a.capacity as f64;
                let lb = b.outstanding as f64 / b.capacity as f64;
                la.partial_cmp(&lb).expect("loads are finite")
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "least-connections"
    }
}

/// Pick the backend with the lowest observed EWMA response time
/// (falling back to capacity order before any feedback exists).
#[derive(Debug, Default)]
pub struct FastestResponse;

impl FastestResponse {
    /// A fresh instance.
    pub fn new() -> Self {
        FastestResponse
    }
}

impl SwitchPolicy for FastestResponse {
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize> {
        backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.healthy)
            .min_by(|(_, a), (_, b)| {
                a.ewma_response
                    .partial_cmp(&b.ewma_response)
                    .expect("EWMAs are finite")
                    .then(b.capacity.cmp(&a.capacity))
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "fastest-response"
    }
}

/// A deliberately ill-behaved "service-specific" policy: it dumps every
/// request on backend 0, healthy or not. Used to demonstrate that a bad
/// ASP policy only hurts its own service (§5).
#[derive(Debug, Default)]
pub struct IllBehaved;

impl IllBehaved {
    /// A fresh instance.
    pub fn new() -> Self {
        IllBehaved
    }
}

impl SwitchPolicy for IllBehaved {
    fn pick(&mut self, backends: &[BackendView]) -> Option<usize> {
        if backends.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn name(&self) -> &'static str {
        "ill-behaved"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(caps: &[u32]) -> Vec<BackendView> {
        caps.iter()
            .map(|&c| BackendView {
                capacity: c,
                healthy: true,
                outstanding: 0,
                ewma_response: 0.0,
            })
            .collect()
    }

    fn tally(policy: &mut dyn SwitchPolicy, backends: &[BackendView], n: usize) -> Vec<u32> {
        let mut counts = vec![0u32; backends.len()];
        for _ in 0..n {
            if let Some(i) = policy.pick(backends) {
                counts[i] += 1;
            }
        }
        counts
    }

    #[test]
    fn wrr_exact_2_to_1() {
        // The Figure 2 configuration: seattle 2M, tacoma 1M.
        let mut p = WeightedRoundRobin::new();
        let b = views(&[2, 1]);
        let counts = tally(&mut p, &b, 300);
        assert_eq!(counts, vec![200, 100], "exactly 2:1 over full rounds");
    }

    #[test]
    fn wrr_interleaves_smoothly() {
        // Smooth WRR spreads the minority backend out: 2:1 gives the
        // period A B A, never A A B B …
        let mut p = WeightedRoundRobin::new();
        let b = views(&[2, 1]);
        let seq: Vec<usize> = (0..6).map(|_| p.pick(&b).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn wrr_skips_unhealthy() {
        let mut p = WeightedRoundRobin::new();
        let mut b = views(&[2, 1]);
        b[0].healthy = false;
        let counts = tally(&mut p, &b, 10);
        assert_eq!(counts, vec![0, 10]);
    }

    #[test]
    fn wrr_none_when_all_down() {
        let mut p = WeightedRoundRobin::new();
        let mut b = views(&[2, 1]);
        b[0].healthy = false;
        b[1].healthy = false;
        assert_eq!(p.pick(&b), None);
        assert_eq!(p.pick(&[]), None);
    }

    #[test]
    fn wrr_adapts_to_backend_set_changes() {
        let mut p = WeightedRoundRobin::new();
        let b2 = views(&[1, 1]);
        p.pick(&b2).unwrap();
        // Resize to three backends mid-stream: state resets cleanly.
        let b3 = views(&[1, 1, 1]);
        let counts = tally(&mut p, &b3, 300);
        assert_eq!(counts, vec![100, 100, 100]);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::new();
        let b = views(&[5, 1, 1]); // capacity ignored
        let counts = tally(&mut p, &b, 300);
        assert_eq!(counts, vec![100, 100, 100]);
        assert_eq!(p.name(), "round-robin");
    }

    #[test]
    fn round_robin_skips_unhealthy() {
        let mut p = RoundRobin::new();
        let mut b = views(&[1, 1, 1]);
        b[1].healthy = false;
        let counts = tally(&mut p, &b, 100);
        assert_eq!(counts[1], 0);
        assert_eq!(counts[0] + counts[2], 100);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers() {
        let b = views(&[1, 1, 1, 1]);
        let mut a = RandomPolicy::new(7);
        let mut c = RandomPolicy::new(7);
        for _ in 0..100 {
            assert_eq!(a.pick(&b), c.pick(&b));
        }
        let counts = tally(&mut RandomPolicy::new(1), &b, 4000);
        for &n in &counts {
            assert!((800..1200).contains(&n), "uniformity: {counts:?}");
        }
    }

    #[test]
    fn least_connections_balances_by_load() {
        let mut p = LeastConnections::new();
        let mut b = views(&[1, 1]);
        b[0].outstanding = 5;
        b[1].outstanding = 1;
        assert_eq!(p.pick(&b), Some(1));
        // Normalised by capacity: 5 in flight on a 10× node is lighter.
        b[0].capacity = 10;
        assert_eq!(p.pick(&b), Some(0));
    }

    #[test]
    fn fastest_response_uses_feedback() {
        let mut p = FastestResponse::new();
        let mut b = views(&[1, 1]);
        b[0].ewma_response = 0.5;
        b[1].ewma_response = 0.1;
        assert_eq!(p.pick(&b), Some(1));
        b[1].healthy = false;
        assert_eq!(p.pick(&b), Some(0));
    }

    #[test]
    fn ill_behaved_ignores_health() {
        let mut p = IllBehaved::new();
        let mut b = views(&[1, 1]);
        b[0].healthy = false;
        assert_eq!(p.pick(&b), Some(0), "dumps on a dead backend");
        assert_eq!(p.pick(&[]), None);
        assert_eq!(p.name(), "ill-behaved");
    }
}
