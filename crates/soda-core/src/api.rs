//! The SODA API (§4.1).
//!
//! "SODA provides APIs for service creation, tear-down, and resizing.
//! The SODA Agent accepts these calls and passes them to the SODA Master
//! after proper authentication."

use soda_net::addr::Ipv4Addr;
use soda_sim::SimDuration;

use crate::service::{ServiceId, ServiceSpec};

/// Credential an ASP presents with each call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Credential {
    /// ASP identity.
    pub asp: String,
    /// Shared-secret API key.
    pub key: String,
}

/// `SODA_service_creation`: "allows the ASP to specify service name,
/// location of service image, and resource requirement `<n, M>`".
#[derive(Clone, Debug)]
pub struct CreationRequest {
    /// Who is asking.
    pub credential: Credential,
    /// Everything about the service (name, image, `<n, M>`, …).
    pub spec: ServiceSpec,
}

/// Per-node information returned to the ASP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node's address.
    pub ip: Ipv4Addr,
    /// Service port.
    pub port: u16,
    /// Relative capacity (machine instances).
    pub capacity: u32,
}

/// Reply to a successful creation: "the SODA Agent will reply to the ASP
/// with information about the virtual service nodes created for S".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CreationReply {
    /// Handle for later teardown/resizing calls.
    pub service: ServiceId,
    /// The created nodes.
    pub nodes: Vec<NodeInfo>,
    /// Where clients send requests (the service switch).
    pub switch_endpoint: NodeInfo,
    /// How long creation took end-to-end (download + bootstrap of the
    /// slowest node).
    pub creation_time: SimDuration,
}

/// `SODA_service_teardown`.
#[derive(Clone, Debug)]
pub struct TeardownRequest {
    /// Who is asking.
    pub credential: Credential,
    /// The service to tear down.
    pub service: ServiceId,
}

/// `SODA_service_resizing`: "resize the service capacity based on a new
/// resource requirement `<n_new, M>`".
#[derive(Clone, Debug)]
pub struct ResizeRequest {
    /// Who is asking.
    pub credential: Credential,
    /// The service to resize.
    pub service: ServiceId,
    /// The new instance count `n_new` (the machine configuration `M` is
    /// fixed at creation).
    pub new_instances: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_hostos::resources::ResourceVector;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    #[test]
    fn request_types_carry_the_paper_fields() {
        let req = CreationRequest {
            credential: Credential {
                asp: "biolab".into(),
                key: "k".into(),
            },
            spec: ServiceSpec {
                name: "genome-match".into(),
                image: RootFsCatalog::new().base_1_0(),
                required_services: vec!["network"],
                app_class: StartupClass::Heavy,
                instances: 3,
                machine: ResourceVector::TABLE1_EXAMPLE,
                port: 8080,
            },
        };
        assert_eq!(req.spec.instances, 3);
        assert_eq!(req.spec.machine.cpu_mhz, 512);
        let resize = ResizeRequest {
            credential: req.credential.clone(),
            service: ServiceId(1),
            new_instances: 5,
        };
        assert_eq!(resize.new_instances, 5);
    }
}
