//! ASP-facing service monitoring.
//!
//! §1: "staff of the bioinformatics institute should be able to perform
//! service monitoring and management, as if the service were hosted
//! locally." The Agent already gives the ASP administration *inside*
//! each guest (root of the guest OS); this module adds the outside-in
//! view: a point-in-time snapshot of every node's state, traffic and
//! latency, plus service-level health rollups.

use soda_hup::daemon::SodaDaemon;
use soda_hup::host::HostId;
use soda_net::addr::Ipv4Addr;
use soda_sim::{Labels, SimTime};
use soda_vmm::vsn::{VsnId, VsnState};

use crate::master::SodaMaster;
use crate::service::ServiceId;

/// One node's monitoring entry.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The node.
    pub vsn: VsnId,
    /// Host carrying it.
    pub host: HostId,
    /// Node address (if assigned).
    pub ip: Option<Ipv4Addr>,
    /// Relative capacity (machine instances).
    pub capacity: u32,
    /// Lifecycle state.
    pub state: VsnState,
    /// Crashes observed so far.
    pub crash_count: u32,
    /// Running since (None when not running).
    pub running_since: Option<SimTime>,
    /// Requests served (from the switch).
    pub served: u64,
    /// Requests in flight (from the switch).
    pub outstanding: u32,
    /// Mean response time, seconds (0 before any completion).
    pub mean_response_secs: f64,
    /// Host-side processes the node currently runs.
    pub process_count: usize,
}

/// Service-level rollup.
#[derive(Clone, Debug)]
pub struct ServiceStatus {
    /// The service.
    pub service: ServiceId,
    /// Snapshot time.
    pub taken_at: SimTime,
    /// Per-node entries, placement order.
    pub nodes: Vec<NodeStatus>,
    /// Fraction of nodes currently Running.
    pub healthy_fraction: f64,
    /// Total requests served across nodes.
    pub total_served: u64,
    /// Requests dropped by the switch (no healthy backend).
    pub switch_dropped: u64,
}

impl ServiceStatus {
    /// True iff every node is running.
    pub fn all_healthy(&self) -> bool {
        self.healthy_fraction >= 1.0
    }
}

/// Take a monitoring snapshot of one service. Returns `None` for an
/// unknown service.
pub fn snapshot(
    master: &SodaMaster,
    daemons: &[SodaDaemon],
    service: ServiceId,
    now: SimTime,
) -> Option<ServiceStatus> {
    let rec = master.service(service)?;
    let switch = master.switch(service);
    let mut nodes = Vec::with_capacity(rec.nodes.len());
    let mut running = 0usize;
    let mut total_served = 0u64;
    for placed in &rec.nodes {
        let daemon = soda_hup::daemon::daemon_for(daemons, placed.host)?;
        let vsn = daemon.vsn(placed.vsn)?;
        // Traffic figures come from the metrics registry when
        // observability is on (the switch feeds `switch.*` under
        // `{service, vsn}` labels); otherwise straight from the switch's
        // backend runtime. Both views are kept in sync by the switch, so
        // the snapshot is identical either way.
        let labels = Labels::two("service", service.0, "vsn", placed.vsn.0);
        let from_registry = master.obs().with(|inner| {
            (
                inner.registry.counter("switch", "served", labels),
                inner.registry.gauge("switch", "outstanding", labels),
                inner
                    .registry
                    .histogram("switch", "response_time", labels)
                    .map(|h| h.mean() / 1e9),
            )
        });
        let (served, outstanding, mean) = match from_registry {
            Some((Some(served), outstanding, mean)) => (
                served,
                outstanding.unwrap_or(0.0) as u32,
                mean.unwrap_or(0.0),
            ),
            _ => switch
                .and_then(|sw| {
                    sw.index_of(placed.vsn).map(|i| {
                        let b = &sw.backends()[i];
                        (b.served, b.outstanding, b.response_stats.mean())
                    })
                })
                .unwrap_or((0, 0, 0.0)),
        };
        if vsn.is_running() {
            running += 1;
        }
        total_served += served;
        nodes.push(NodeStatus {
            vsn: placed.vsn,
            host: placed.host,
            ip: vsn.ip,
            capacity: placed.capacity,
            state: *vsn.state(),
            crash_count: vsn.crash_count,
            running_since: vsn.running_since,
            served,
            outstanding,
            mean_response_secs: mean,
            process_count: daemon.host.processes.count_uid(vsn.uid),
        });
    }
    let healthy_fraction = if nodes.is_empty() {
        0.0
    } else {
        running as f64 / nodes.len() as f64
    };
    Some(ServiceStatus {
        service,
        taken_at: now,
        nodes,
        healthy_fraction,
        total_served,
        switch_dropped: switch.map(|s| s.dropped()).unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceSpec;
    use soda_hostos::resources::ResourceVector;
    use soda_hup::host::HupHost;
    use soda_net::pool::IpPool;
    use soda_sim::SimDuration;
    use soda_vmm::rootfs::RootFsCatalog;
    use soda_vmm::sysservices::StartupClass;

    fn setup() -> (SodaMaster, Vec<SodaDaemon>, ServiceId) {
        let mut master = SodaMaster::new();
        let mut daemons = vec![
            SodaDaemon::new(HupHost::seattle(
                HostId(1),
                IpPool::new("10.0.0.0".parse().unwrap(), 8),
            )),
            SodaDaemon::new(HupHost::tacoma(
                HostId(2),
                IpPool::new("10.0.1.0".parse().unwrap(), 8),
            )),
        ];
        let spec = ServiceSpec {
            name: "web".into(),
            image: RootFsCatalog::new().base_1_0(),
            required_services: vec!["network", "syslogd"],
            app_class: StartupClass::Light,
            instances: 3,
            machine: ResourceVector::TABLE1_EXAMPLE,
            port: 8080,
        };
        let reply = master
            .create_service_now(spec, "webco", &mut daemons, SimTime::ZERO)
            .unwrap();
        (master, daemons, reply.service)
    }

    #[test]
    fn healthy_snapshot() {
        let (master, daemons, svc) = setup();
        let s = snapshot(&master, &daemons, svc, SimTime::from_secs(10)).unwrap();
        assert_eq!(s.nodes.len(), 2);
        assert!(s.all_healthy());
        assert_eq!(s.healthy_fraction, 1.0);
        assert_eq!(s.total_served, 0);
        for n in &s.nodes {
            assert_eq!(n.state, VsnState::Running);
            assert!(n.ip.is_some());
            assert!(n.process_count >= 5, "guest threads + services + app");
            assert_eq!(n.crash_count, 0);
            assert!(n.running_since.is_some());
        }
        assert_eq!(s.nodes[0].capacity, 2);
        assert_eq!(s.nodes[1].capacity, 1);
    }

    #[test]
    fn snapshot_reflects_traffic_and_crashes() {
        let (mut master, mut daemons, svc) = setup();
        // Serve a few requests through the switch.
        for _ in 0..6 {
            let sw = master.switch_mut(svc).unwrap();
            let i = sw.route(SimTime::ZERO).unwrap();
            let vsn = sw.backends()[i].vsn;
            sw.complete(vsn, SimDuration::from_millis(10), SimTime::ZERO);
        }
        // Crash the tacoma node.
        let tacoma_vsn = master.service(svc).unwrap().nodes[1].vsn;
        daemons[1].crash_vsn(tacoma_vsn, SimTime::ZERO).unwrap();
        master.node_crashed(svc, tacoma_vsn);
        let s = snapshot(&master, &daemons, svc, SimTime::from_secs(20)).unwrap();
        assert_eq!(s.total_served, 6);
        assert!(!s.all_healthy());
        assert!((s.healthy_fraction - 0.5).abs() < 1e-12);
        let t = s.nodes.iter().find(|n| n.vsn == tacoma_vsn).unwrap();
        assert_eq!(t.state, VsnState::Crashed);
        assert_eq!(t.crash_count, 1);
        assert_eq!(t.process_count, 0, "crashed guest has no processes");
        assert!(t.running_since.is_none());
        let seattle = &s.nodes[0];
        assert!(seattle.mean_response_secs > 0.0);
    }

    #[test]
    fn registry_backed_snapshot_matches_switch_backed() {
        // The same traffic, observed twice: one master with obs enabled
        // (snapshot reads the metrics registry) and one without (reads
        // the switch). The ASP-visible numbers must be identical.
        fn drive(master: &mut SodaMaster, svc: ServiceId) {
            for _ in 0..9 {
                let sw = master.switch_mut(svc).unwrap();
                let i = sw.route(SimTime::ZERO).unwrap();
                let vsn = sw.backends()[i].vsn;
                sw.complete(vsn, SimDuration::from_millis(25), SimTime::ZERO);
            }
        }
        let (mut with_obs, d1, svc1) = setup();
        with_obs.set_obs(soda_sim::Obs::enabled(64));
        let (mut without, d2, svc2) = setup();
        drive(&mut with_obs, svc1);
        drive(&mut without, svc2);
        let a = snapshot(&with_obs, &d1, svc1, SimTime::from_secs(1)).unwrap();
        let b = snapshot(&without, &d2, svc2, SimTime::from_secs(1)).unwrap();
        assert_eq!(a.total_served, b.total_served);
        for (na, nb) in a.nodes.iter().zip(b.nodes.iter()) {
            assert_eq!(na.served, nb.served);
            assert_eq!(na.outstanding, nb.outstanding);
            assert!(
                (na.mean_response_secs - nb.mean_response_secs).abs() < 1e-3,
                "{} vs {}",
                na.mean_response_secs,
                nb.mean_response_secs
            );
        }
    }

    #[test]
    fn unknown_service_yields_none() {
        let (master, daemons, _) = setup();
        assert!(snapshot(&master, &daemons, ServiceId(999), SimTime::ZERO).is_none());
    }
}
