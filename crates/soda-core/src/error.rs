//! Unified error type for SODA operations.

use std::fmt;

use soda_hostos::resources::ResourceVector;
use soda_hup::daemon::PrimingError;
use soda_vmm::vsn::VsnId;

use crate::service::ServiceId;

/// Anything that can go wrong in a SODA API call.
#[derive(Debug)]
pub enum SodaError {
    /// The ASP's credential did not verify (SODA Agent).
    AuthenticationFailed {
        /// The claimed ASP identity.
        asp: String,
    },
    /// Admission control rejected the request: the HUP cannot satisfy
    /// `<n, M>` right now ("a request failure will be reported", §3.2).
    AdmissionRejected {
        /// The (inflated) total demand.
        requested: ResourceVector,
        /// Aggregate availability at decision time.
        available: ResourceVector,
    },
    /// A daemon-level priming failure.
    Priming(PrimingError),
    /// Unknown service id.
    UnknownService(ServiceId),
    /// Unknown virtual service node.
    UnknownVsn(VsnId),
    /// The operation conflicts with the service's current state.
    InvalidState {
        /// The service.
        service: ServiceId,
        /// What was attempted.
        attempted: &'static str,
    },
    /// Malformed request (e.g. `n == 0`).
    BadRequest(String),
    /// The Master is down (crashed, standby not yet taken over); the
    /// control-plane API is unavailable until failover completes.
    MasterUnavailable,
}

impl fmt::Display for SodaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SodaError::AuthenticationFailed { asp } => {
                write!(f, "authentication failed for ASP {asp:?}")
            }
            SodaError::AdmissionRejected {
                requested,
                available,
            } => write!(
                f,
                "admission rejected: requested [{requested}] exceeds available [{available}]"
            ),
            SodaError::Priming(e) => write!(f, "priming failed: {e}"),
            SodaError::UnknownService(id) => write!(f, "unknown service {id}"),
            SodaError::UnknownVsn(id) => write!(f, "unknown VSN {id}"),
            SodaError::InvalidState { service, attempted } => {
                write!(f, "service {service}: cannot {attempted} in current state")
            }
            SodaError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            SodaError::MasterUnavailable => {
                write!(f, "master unavailable: control plane is failing over")
            }
        }
    }
}

impl std::error::Error for SodaError {}

impl From<PrimingError> for SodaError {
    fn from(e: PrimingError) -> Self {
        SodaError::Priming(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SodaError::AuthenticationFailed {
            asp: "biolab".into(),
        };
        assert!(e.to_string().contains("biolab"));
        let e = SodaError::AdmissionRejected {
            requested: ResourceVector::new(1, 2, 3, 4),
            available: ResourceVector::ZERO,
        };
        assert!(e.to_string().contains("admission rejected"));
        let e = SodaError::BadRequest("n must be positive".into());
        assert!(e.to_string().contains("n must be positive"));
        let e = SodaError::UnknownService(ServiceId(3));
        assert!(e.to_string().contains("svc-3"));
    }
}
