//! Write-ahead journal and compacted checkpoints for the Master.
//!
//! The SODA Master is a single stateful control point: admissions,
//! placements, priming progress, resizes and recovery episodes all live
//! in its memory. To make the control plane crashable (a
//! `FaultSpec::MasterCrash` wipes that memory mid-flight) a warm
//! standby must be able to rebuild *authoritative* state without
//! trusting the corpse. This module is that durability layer:
//!
//! * [`JournalEntry`] — one appended record per Master state
//!   transition. Each entry is typed by [`JournalOp`] and carries the
//!   post-transition [`ServiceSnapshot`] of the touched service, so
//!   replay is last-writer-wins per service and never has to re-run
//!   placement logic (which would need the crashed master's RNG).
//! * [`Journal`] — the append log plus a periodically *compacted
//!   checkpoint*: once `checkpoint_every` entries accumulate, the
//!   journal folds them into its base [`MasterSnapshot`] and truncates.
//!   `rebuild()` = checkpoint ⊕ tail, always O(live services + tail).
//! * [`MasterSnapshot`] / [`WorldSnapshot`] — serde round-trippable
//!   (render → parse → restore) and fingerprint-stable control-plane
//!   state; `WorldSnapshot` adds the recovery manager (including its
//!   raw RNG state) so a restored run continues bit-identically.
//!
//! What the journal deliberately does NOT contain: switch routing
//! tables (the data-plane switches survive a Master crash and are
//! transplanted, not replayed) and daemon-side VSN state (the standby
//! reconciles against live daemon re-registration instead — reality
//! wins over the log when they disagree).

use std::fmt;

use serde::{Serialize, Value};
use soda_sim::SimTime;
use soda_vmm::rootfs::RootFsImage;
use soda_vmm::sysservices::{ServiceCatalog, StartupClass, SystemServiceId};

use crate::service::{PlacedNode, ServiceId, ServiceRecord, ServiceSpec, ServiceState};

use soda_hostos::resources::ResourceVector;
use soda_hup::host::HostId;
use soda_vmm::vsn::VsnId;

/// FNV-1a over a rendered snapshot/journal — the same hash the event
/// log fingerprints use, so "fingerprint-stable" means one thing
/// everywhere in the repo.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Epoch-stamped recovery-episode id: `(master_epoch, seq)`.
///
/// A resurrected Master starts a fresh epoch, so an episode opened
/// after failover can never collide with — or be mistaken for a
/// continuation of — one opened by the crashed Master, even though both
/// count seq from their own stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpisodeId {
    /// Master epoch that opened the episode.
    pub epoch: u64,
    /// Per-epoch sequence number.
    pub seq: u64,
}

impl fmt::Display for EpisodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}.{}", self.epoch, self.seq)
    }
}

impl Serialize for EpisodeId {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![Value::U64(self.epoch), Value::U64(self.seq)])
    }
}

// ---------------------------------------------------------------------
// Value-tree parsing helpers (the vendored serde shim has no
// Deserialize; snapshots parse their own trees).
// ---------------------------------------------------------------------

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key)?.as_f64()
}

fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get(key)?.as_str()
}

fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn get_arr<'a>(v: &'a Value, key: &str) -> Option<&'a [Value]> {
    match v.get(key)? {
        Value::Array(items) => Some(items),
        _ => None,
    }
}

/// `null` (or absent) → `None`; otherwise the value must be a u64.
fn get_opt_u64(v: &Value, key: &str) -> Option<Option<u64>> {
    match v.get(key) {
        None | Some(Value::Null) => Some(None),
        Some(x) => x.as_u64().map(Some),
    }
}

/// Parses an array of `[a, b]` pairs.
fn pairs(v: &Value, key: &str) -> Option<Vec<(u64, u64)>> {
    get_arr(v, key)?
        .iter()
        .map(|p| Some((p.index(0)?.as_u64()?, p.index(1)?.as_u64()?)))
        .collect()
}

// ---------------------------------------------------------------------
// Service snapshots
// ---------------------------------------------------------------------

/// One placed node inside a [`ServiceSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct NodeSnapshot {
    /// Host id the node was placed on.
    pub host: u64,
    /// The node's VSN id.
    pub vsn: u64,
    /// Capacity units assigned to the node.
    pub capacity: u32,
}

fn state_str(state: ServiceState) -> &'static str {
    match state {
        ServiceState::Creating => "creating",
        ServiceState::Running => "running",
        ServiceState::Resizing => "resizing",
        ServiceState::TornDown => "torn_down",
    }
}

fn state_from_str(s: &str) -> Option<ServiceState> {
    Some(match s {
        "creating" => ServiceState::Creating,
        "running" => ServiceState::Running,
        "resizing" => ServiceState::Resizing,
        "torn_down" => ServiceState::TornDown,
        _ => return None,
    })
}

fn class_str(class: StartupClass) -> &'static str {
    match class {
        StartupClass::Trivial => "trivial",
        StartupClass::Light => "light",
        StartupClass::Heavy => "heavy",
    }
}

fn class_from_str(s: &str) -> Option<StartupClass> {
    Some(match s {
        "trivial" => StartupClass::Trivial,
        "light" => StartupClass::Light,
        "heavy" => StartupClass::Heavy,
        _ => return None,
    })
}

/// A full, self-contained snapshot of one [`ServiceRecord`] — enough to
/// rebuild the record (spec included) on a standby Master that shares
/// nothing with the crashed one but this journal.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ServiceSnapshot {
    /// Service id (raw).
    pub id: u64,
    /// The ASP that owns the service.
    pub asp: String,
    /// Lifecycle state as a string (`"creating"`, `"running"`, ...).
    pub state: String,
    /// Spec: service name.
    pub name: String,
    /// Spec: root filesystem image name.
    pub image_name: String,
    /// Spec: image system-part bytes.
    pub image_system_bytes: u64,
    /// Spec: image data-part bytes.
    pub image_data_bytes: u64,
    /// Spec: installed system-service catalog ids.
    pub image_installed: Vec<u64>,
    /// Spec: pristine image (not tailorable).
    pub image_pristine: bool,
    /// Spec: required system services by catalog name.
    pub required_services: Vec<String>,
    /// Spec: startup weight class.
    pub app_class: String,
    /// Spec: requested instance count.
    pub instances: u32,
    /// Spec machine vector.
    pub cpu_mhz: u32,
    /// Spec machine vector.
    pub mem_mb: u32,
    /// Spec machine vector.
    pub disk_mb: u32,
    /// Spec machine vector.
    pub bw_mbps: u32,
    /// Spec: service port.
    pub port: u16,
    /// Placed nodes in record order.
    pub nodes: Vec<NodeSnapshot>,
    /// How many nodes have finished priming.
    pub nodes_ready: u64,
}

impl ServiceSnapshot {
    /// Captures a live record.
    pub fn capture(rec: &ServiceRecord) -> Self {
        ServiceSnapshot {
            id: rec.id.0,
            asp: rec.asp.clone(),
            state: state_str(rec.state).to_string(),
            name: rec.spec.name.clone(),
            image_name: rec.spec.image.name.clone(),
            image_system_bytes: rec.spec.image.system_bytes,
            image_data_bytes: rec.spec.image.data_bytes,
            image_installed: rec
                .spec
                .image
                .installed
                .iter()
                .map(|id| u64::from(id.0))
                .collect(),
            image_pristine: rec.spec.image.pristine,
            required_services: rec
                .spec
                .required_services
                .iter()
                .map(|s| s.to_string())
                .collect(),
            app_class: class_str(rec.spec.app_class).to_string(),
            instances: rec.spec.instances,
            cpu_mhz: rec.spec.machine.cpu_mhz,
            mem_mb: rec.spec.machine.mem_mb,
            disk_mb: rec.spec.machine.disk_mb,
            bw_mbps: rec.spec.machine.bw_mbps,
            port: rec.spec.port,
            nodes: rec
                .nodes
                .iter()
                .map(|n| NodeSnapshot {
                    host: u64::from(n.host.0),
                    vsn: n.vsn.0,
                    capacity: n.capacity,
                })
                .collect(),
            nodes_ready: rec.nodes_ready as u64,
        }
    }

    /// Rebuilds the record. Required-service names are resolved against
    /// the standard catalog (the only source of `&'static str` names);
    /// unknown names are dropped rather than invented.
    pub fn restore(&self) -> Option<ServiceRecord> {
        let catalog = ServiceCatalog::standard();
        let required: Vec<&'static str> = self
            .required_services
            .iter()
            .filter_map(|want| catalog.names().find(|n| n == want))
            .collect();
        let spec = ServiceSpec {
            name: self.name.clone(),
            image: RootFsImage {
                name: self.image_name.clone(),
                system_bytes: self.image_system_bytes,
                data_bytes: self.image_data_bytes,
                installed: self
                    .image_installed
                    .iter()
                    .map(|&id| SystemServiceId(id as u16))
                    .collect(),
                pristine: self.image_pristine,
            },
            required_services: required,
            app_class: class_from_str(&self.app_class)?,
            instances: self.instances,
            machine: ResourceVector {
                cpu_mhz: self.cpu_mhz,
                mem_mb: self.mem_mb,
                disk_mb: self.disk_mb,
                bw_mbps: self.bw_mbps,
            },
            port: self.port,
        };
        Some(ServiceRecord {
            id: ServiceId(self.id),
            spec,
            asp: self.asp.clone(),
            state: state_from_str(&self.state)?,
            nodes: self
                .nodes
                .iter()
                .map(|n| PlacedNode {
                    host: HostId(n.host as u32),
                    vsn: VsnId(n.vsn),
                    capacity: n.capacity,
                })
                .collect(),
            nodes_ready: self.nodes_ready as usize,
        })
    }

    /// Parses a snapshot out of a rendered-and-reparsed value tree.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(ServiceSnapshot {
            id: get_u64(v, "id")?,
            asp: get_str(v, "asp")?.to_string(),
            state: get_str(v, "state")?.to_string(),
            name: get_str(v, "name")?.to_string(),
            image_name: get_str(v, "image_name")?.to_string(),
            image_system_bytes: get_u64(v, "image_system_bytes")?,
            image_data_bytes: get_u64(v, "image_data_bytes")?,
            image_installed: get_arr(v, "image_installed")?
                .iter()
                .map(Value::as_u64)
                .collect::<Option<Vec<_>>>()?,
            image_pristine: get_bool(v, "image_pristine")?,
            required_services: get_arr(v, "required_services")?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            app_class: get_str(v, "app_class")?.to_string(),
            instances: get_u64(v, "instances")? as u32,
            cpu_mhz: get_u64(v, "cpu_mhz")? as u32,
            mem_mb: get_u64(v, "mem_mb")? as u32,
            disk_mb: get_u64(v, "disk_mb")? as u32,
            bw_mbps: get_u64(v, "bw_mbps")? as u32,
            port: get_u64(v, "port")? as u16,
            nodes: get_arr(v, "nodes")?
                .iter()
                .map(|n| {
                    Some(NodeSnapshot {
                        host: get_u64(n, "host")?,
                        vsn: get_u64(n, "vsn")?,
                        capacity: get_u64(n, "capacity")? as u32,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            nodes_ready: get_u64(v, "nodes_ready")?,
        })
    }
}

// ---------------------------------------------------------------------
// Master / recovery / world snapshots
// ---------------------------------------------------------------------

/// Checkpointed control-plane state: everything a standby Master needs
/// that is not recoverable from live daemons (the inventory is NOT here
/// — `collect_resources` rebuilds it from daemon reports, so reality
/// always wins over a stale log).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MasterSnapshot {
    /// Master epoch the snapshot belongs to.
    pub epoch: u64,
    /// Next service-id counter.
    pub next_service: u64,
    /// Next VSN-id counter.
    pub next_vsn: u64,
    /// Guest-OS slow-down inflation factor.
    pub slowdown_inflation: f64,
    /// Placement-policy name (`"worst_fit"`, ...).
    pub placement: String,
    /// Live service records, sorted by id.
    pub services: Vec<ServiceSnapshot>,
}

impl MasterSnapshot {
    /// Parses a snapshot out of a value tree.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(MasterSnapshot {
            epoch: get_u64(v, "epoch")?,
            next_service: get_u64(v, "next_service")?,
            next_vsn: get_u64(v, "next_vsn")?,
            slowdown_inflation: get_f64(v, "slowdown_inflation")?,
            placement: get_str(v, "placement")?.to_string(),
            services: get_arr(v, "services")?
                .iter()
                .map(ServiceSnapshot::from_value)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    /// Stable hash of the rendered snapshot.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&serde_json::to_string(self).expect("snapshot renders"))
    }
}

/// One tracked host inside a [`RecoverySnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct HostSnapshot {
    /// Host id.
    pub host: u64,
    /// Last heartbeat instant (ns).
    pub last_heartbeat_ns: u64,
    /// Believed up (vs declared down).
    pub up: bool,
}

/// One in-flight recovery episode inside a [`RecoverySnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct EpisodeSnapshot {
    /// Epoch half of the episode id.
    pub epoch: u64,
    /// Sequence half of the episode id.
    pub seq: u64,
    /// Service being recovered.
    pub service: u64,
    /// Capacity units being replaced.
    pub capacity: u32,
    /// When the node was lost (ns).
    pub lost_at_ns: u64,
    /// Dead VSN not yet scrubbed from the record.
    pub dead_vsn: Option<u64>,
    /// Host the node died on.
    pub origin_host: Option<u64>,
    /// Placement attempts so far.
    pub attempt: u32,
    /// Replacement VSN once placed.
    pub replacement: Option<u64>,
    /// Re-prime in place is still worth trying.
    pub try_reprime: bool,
    /// A shed was already performed for this episode.
    pub shed_done: bool,
    /// The service was marked degraded by this episode.
    pub degraded: bool,
    /// Parked until this instant (ns), if parked.
    pub parked_until_ns: Option<u64>,
}

impl EpisodeSnapshot {
    fn from_value(v: &Value) -> Option<Self> {
        Some(EpisodeSnapshot {
            epoch: get_u64(v, "epoch")?,
            seq: get_u64(v, "seq")?,
            service: get_u64(v, "service")?,
            capacity: get_u64(v, "capacity")? as u32,
            lost_at_ns: get_u64(v, "lost_at_ns")?,
            dead_vsn: get_opt_u64(v, "dead_vsn")?,
            origin_host: get_opt_u64(v, "origin_host")?,
            attempt: get_u64(v, "attempt")? as u32,
            replacement: get_opt_u64(v, "replacement")?,
            try_reprime: get_bool(v, "try_reprime")?,
            shed_done: get_bool(v, "shed_done")?,
            degraded: get_bool(v, "degraded")?,
            parked_until_ns: get_opt_u64(v, "parked_until_ns")?,
        })
    }
}

/// Recovery-manager bookkeeping: detections and recoveries keyed by
/// epoch-stamped episode id, plus plain counters.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// `(host, detected_at_ns)` per down declaration.
    pub detections: Vec<(u64, u64)>,
    /// `(epoch, seq, time_to_recover_ns)` per completed episode.
    pub recoveries: Vec<(u64, u64, u64)>,
    /// Scheduled placement retries.
    pub retries: u64,
    /// Episodes that degraded their service.
    pub degradations: u64,
    /// Lower-priority services shed.
    pub sheds: u64,
    /// Hosts that flapped back before being declared down.
    pub false_alarms: u64,
    /// Routed-to-dead-VSN invariant hits.
    pub invariant_violations: u64,
}

impl StatsSnapshot {
    fn from_value(v: &Value) -> Option<Self> {
        let triples = |key: &str| -> Option<Vec<(u64, u64, u64)>> {
            get_arr(v, key)?
                .iter()
                .map(|t| {
                    Some((
                        t.index(0)?.as_u64()?,
                        t.index(1)?.as_u64()?,
                        t.index(2)?.as_u64()?,
                    ))
                })
                .collect()
        };
        Some(StatsSnapshot {
            detections: pairs(v, "detections")?,
            recoveries: triples("recoveries")?,
            retries: get_u64(v, "retries")?,
            degradations: get_u64(v, "degradations")?,
            sheds: get_u64(v, "sheds")?,
            false_alarms: get_u64(v, "false_alarms")?,
            invariant_violations: get_u64(v, "invariant_violations")?,
        })
    }
}

/// Full recovery-manager state, including the raw RNG words — jittered
/// retry delays draw from this stream, so a restored run must resume it
/// exactly or diverge from the uncheckpointed trajectory.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RecoverySnapshot {
    /// Self-healing armed.
    pub enabled: bool,
    /// Epoch stamped onto newly opened episodes.
    pub episode_epoch: u64,
    /// Next per-epoch episode sequence number.
    pub next_seq: u64,
    /// xoshiro256** state words.
    pub rng: [u64; 4],
    /// Tracked hosts.
    pub hosts: Vec<HostSnapshot>,
    /// In-flight episodes.
    pub episodes: Vec<EpisodeSnapshot>,
    /// `(service, since_ns)` for currently degraded services.
    pub degraded_since: Vec<(u64, u64)>,
    /// `(service, total_ns)` accumulated degraded time.
    pub degraded_total: Vec<(u64, u64)>,
    /// `(service, priority+2^32)` — priorities are small signed ints,
    /// biased so the pair fits the unsigned pair encoding.
    pub priorities: Vec<(u64, u64)>,
    /// Accounting.
    pub stats: StatsSnapshot,
}

/// Bias for encoding signed priorities in unsigned pairs.
pub const PRIORITY_BIAS: u64 = 1 << 32;

impl RecoverySnapshot {
    /// Parses a snapshot out of a value tree.
    pub fn from_value(v: &Value) -> Option<Self> {
        let rng_arr = get_arr(v, "rng")?;
        if rng_arr.len() != 4 {
            return None;
        }
        let mut rng = [0u64; 4];
        for (slot, word) in rng.iter_mut().zip(rng_arr) {
            *slot = word.as_u64()?;
        }
        Some(RecoverySnapshot {
            enabled: get_bool(v, "enabled")?,
            episode_epoch: get_u64(v, "episode_epoch")?,
            next_seq: get_u64(v, "next_seq")?,
            rng,
            hosts: get_arr(v, "hosts")?
                .iter()
                .map(|h| {
                    Some(HostSnapshot {
                        host: get_u64(h, "host")?,
                        last_heartbeat_ns: get_u64(h, "last_heartbeat_ns")?,
                        up: get_bool(h, "up")?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            episodes: get_arr(v, "episodes")?
                .iter()
                .map(EpisodeSnapshot::from_value)
                .collect::<Option<Vec<_>>>()?,
            degraded_since: pairs(v, "degraded_since")?,
            degraded_total: pairs(v, "degraded_total")?,
            priorities: pairs(v, "priorities")?,
            stats: StatsSnapshot::from_value(v.get("stats")?)?,
        })
    }
}

/// The control plane's durable state at an instant: Master + recovery
/// manager. Render with [`WorldSnapshot::render`], parse back with
/// [`WorldSnapshot::parse`]; restoring the parsed snapshot into the
/// same world must continue fingerprint-identically (tier-1 test).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct WorldSnapshot {
    /// Capture instant (ns).
    pub at_ns: u64,
    /// Master control state.
    pub master: MasterSnapshot,
    /// Recovery-manager state.
    pub recovery: RecoverySnapshot,
}

impl WorldSnapshot {
    /// Renders compact JSON.
    pub fn render(&self) -> String {
        serde_json::to_string(self).expect("snapshot renders")
    }

    /// Parses a rendered snapshot.
    pub fn parse(text: &str) -> Option<Self> {
        Self::from_value(&serde_json::from_str(text).ok()?)
    }

    /// Parses a snapshot out of a value tree.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(WorldSnapshot {
            at_ns: get_u64(v, "at_ns")?,
            master: MasterSnapshot::from_value(v.get("master")?)?,
            recovery: RecoverySnapshot::from_value(v.get("recovery")?)?,
        })
    }

    /// Stable hash of the rendered snapshot.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.render())
    }
}

// ---------------------------------------------------------------------
// The journal proper
// ---------------------------------------------------------------------

/// What kind of Master transition an entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum JournalOp {
    /// A service was admitted and its nodes placed.
    Admission,
    /// Priming progress: a node finished booting (or the switch came
    /// up and the service went Running).
    Priming,
    /// A resize changed node count or capacities.
    Resize,
    /// A recovery action mutated the record (scrub, replacement,
    /// re-prime commit).
    Recovery,
    /// The service was torn down.
    Teardown,
    /// A recovery episode was opened (no record mutation).
    EpisodeOpen,
    /// A recovery episode was closed (no record mutation).
    EpisodeClose,
    /// A standby took over as a new epoch (no record mutation).
    EpochBump,
}

impl JournalOp {
    /// Stable name for rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            JournalOp::Admission => "admission",
            JournalOp::Priming => "priming",
            JournalOp::Resize => "resize",
            JournalOp::Recovery => "recovery",
            JournalOp::Teardown => "teardown",
            JournalOp::EpisodeOpen => "episode_open",
            JournalOp::EpisodeClose => "episode_close",
            JournalOp::EpochBump => "epoch_bump",
        }
    }

    /// True when replay should apply the carried record.
    fn mutates_record(self) -> bool {
        !matches!(
            self,
            JournalOp::EpisodeOpen | JournalOp::EpisodeClose | JournalOp::EpochBump
        )
    }
}

/// One appended journal record.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct JournalEntry {
    /// Monotonic sequence number (never reset by compaction).
    pub seq: u64,
    /// Append instant (ns).
    pub at_ns: u64,
    /// Transition kind.
    pub op: JournalOp,
    /// Touched service (raw id; 0 for epoch bumps).
    pub service: u64,
    /// Episode id for episode entries.
    pub episode: Option<EpisodeId>,
    /// Post-transition record; `None` means the record is gone.
    pub record: Option<ServiceSnapshot>,
    /// Master id counters after the transition (replay restores the
    /// latest pair so a standby never re-issues a used id).
    pub next_service: u64,
    /// See `next_service`.
    pub next_vsn: u64,
}

/// Replays a journal tail onto a snapshot: last-writer-wins per
/// service, counters from the newest entry. `snap.services` stays
/// sorted by id (the `MasterSnapshot` invariant), so each record lands
/// by binary search and a tombstone removes at most one slot.
fn apply_entries(snap: &mut MasterSnapshot, entries: &[JournalEntry]) {
    for entry in entries {
        snap.next_service = entry.next_service;
        snap.next_vsn = entry.next_vsn;
        if !entry.op.mutates_record() {
            continue;
        }
        match &entry.record {
            Some(rec) => match snap.services.binary_search_by_key(&entry.service, |s| s.id) {
                Ok(at) => snap.services[at] = rec.clone(),
                Err(at) => snap.services.insert(at, rec.clone()),
            },
            None => {
                if let Ok(at) = snap.services.binary_search_by_key(&entry.service, |s| s.id) {
                    snap.services.remove(at);
                }
            }
        }
    }
}

/// Append-only journal with compacted checkpoints.
#[derive(Clone, Debug)]
pub struct Journal {
    epoch: u64,
    next_seq: u64,
    checkpoint: MasterSnapshot,
    checkpoint_seq: u64,
    entries: Vec<JournalEntry>,
    checkpoint_every: usize,
    appended_total: u64,
    checkpoints_taken: u64,
}

impl Journal {
    /// A journal whose genesis checkpoint is `initial` (capture the
    /// Master at world construction), compacting every
    /// `checkpoint_every` entries.
    pub fn new(initial: MasterSnapshot, checkpoint_every: usize) -> Self {
        Journal {
            epoch: initial.epoch,
            next_seq: 1,
            checkpoint: initial,
            checkpoint_seq: 0,
            entries: Vec::new(),
            checkpoint_every: checkpoint_every.max(1),
            appended_total: 0,
            checkpoints_taken: 0,
        }
    }

    /// Current master epoch (survives crashes — the journal is the
    /// durable medium).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch at standby takeover and journals the bump.
    pub fn bump_epoch(&mut self, now: SimTime, counters: (u64, u64)) -> u64 {
        self.epoch += 1;
        self.append(
            now,
            JournalOp::EpochBump,
            ServiceId(0),
            None,
            None,
            counters,
        );
        self.epoch
    }

    /// Appends one transition. `record` is the post-transition snapshot
    /// (`None` = the record no longer exists); `counters` is the
    /// Master's `(next_service, next_vsn)` after the transition.
    pub fn append(
        &mut self,
        now: SimTime,
        op: JournalOp,
        service: ServiceId,
        episode: Option<EpisodeId>,
        record: Option<ServiceSnapshot>,
        counters: (u64, u64),
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.appended_total += 1;
        self.entries.push(JournalEntry {
            seq,
            at_ns: now.as_nanos(),
            op,
            service: service.0,
            episode,
            record,
            next_service: counters.0,
            next_vsn: counters.1,
        });
        if self.entries.len() >= self.checkpoint_every {
            self.compact();
        }
        seq
    }

    /// Folds the tail into the checkpoint and truncates. The fold is
    /// in place — compaction cost is O(tail × log services), not
    /// O(services): cloning the whole checkpoint here made every 64th
    /// journal append pay for the entire control plane, which summed
    /// quadratic over a 500k-service creation wave.
    pub fn compact(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        let seq = self
            .entries
            .last()
            .map(|e| e.seq)
            .unwrap_or(self.checkpoint_seq);
        self.checkpoint.epoch = self.epoch;
        apply_entries(&mut self.checkpoint, &self.entries);
        self.checkpoint_seq = seq;
        self.entries.clear();
        self.checkpoints_taken += 1;
    }

    /// Checkpoint ⊕ tail: the authoritative Master state per the log.
    /// Last-writer-wins per service; counters come from the newest
    /// entry.
    pub fn rebuild(&self) -> MasterSnapshot {
        let mut snap = self.checkpoint.clone();
        snap.epoch = self.epoch;
        apply_entries(&mut snap, &self.entries);
        snap
    }

    /// Entries a standby must replay on top of the checkpoint.
    pub fn replay_len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Sequence number the checkpoint covers through (0 = genesis).
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Total entries ever appended.
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// Compactions performed.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// The uncompacted tail (newest last).
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }
}

impl Serialize for Journal {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("epoch".to_string(), Value::U64(self.epoch)),
            (
                "checkpoint_seq".to_string(),
                Value::U64(self.checkpoint_seq),
            ),
            ("checkpoint".to_string(), self.checkpoint.to_json_value()),
            ("entries".to_string(), self.entries.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_vmm::rootfs::RootFsCatalog;

    fn record(id: u64, ready: usize) -> ServiceRecord {
        ServiceRecord {
            id: ServiceId(id),
            spec: ServiceSpec {
                name: format!("svc{id}"),
                image: RootFsCatalog::new().base_1_0(),
                required_services: vec!["network", "httpd"],
                app_class: StartupClass::Light,
                instances: 2,
                machine: ResourceVector {
                    cpu_mhz: 500,
                    mem_mb: 256,
                    disk_mb: 1000,
                    bw_mbps: 10,
                },
                port: 8080,
            },
            asp: "asp-a".to_string(),
            state: ServiceState::Running,
            nodes: vec![
                PlacedNode {
                    host: HostId(1),
                    vsn: VsnId(10 * id),
                    capacity: 3,
                },
                PlacedNode {
                    host: HostId(2),
                    vsn: VsnId(10 * id + 1),
                    capacity: 2,
                },
            ],
            nodes_ready: ready,
        }
    }

    fn base_snapshot() -> MasterSnapshot {
        MasterSnapshot {
            epoch: 1,
            next_service: 1,
            next_vsn: 1,
            slowdown_inflation: 1.25,
            placement: "worst_fit".to_string(),
            services: Vec::new(),
        }
    }

    #[test]
    fn service_snapshot_survives_render_parse_restore() {
        let rec = record(7, 2);
        let snap = ServiceSnapshot::capture(&rec);
        let text = serde_json::to_string(&snap).unwrap();
        let back = ServiceSnapshot::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(snap, back);
        let restored = back.restore().unwrap();
        assert_eq!(restored.id, rec.id);
        assert_eq!(restored.state, rec.state);
        assert_eq!(restored.nodes, rec.nodes);
        assert_eq!(restored.nodes_ready, rec.nodes_ready);
        assert_eq!(restored.spec.name, rec.spec.name);
        assert_eq!(restored.spec.required_services, rec.spec.required_services);
        assert_eq!(restored.spec.machine, rec.spec.machine);
        assert_eq!(restored.spec.image.installed, rec.spec.image.installed);
    }

    #[test]
    fn rebuild_is_last_writer_wins_per_service() {
        let mut j = Journal::new(base_snapshot(), 1000);
        let t = SimTime::from_secs(1);
        let mut early = ServiceSnapshot::capture(&record(1, 0));
        early.state = "creating".to_string();
        j.append(
            t,
            JournalOp::Admission,
            ServiceId(1),
            None,
            Some(early),
            (2, 3),
        );
        let late = ServiceSnapshot::capture(&record(1, 2));
        j.append(
            t,
            JournalOp::Priming,
            ServiceId(1),
            None,
            Some(late.clone()),
            (2, 3),
        );
        j.append(
            t,
            JournalOp::Admission,
            ServiceId(2),
            None,
            Some(ServiceSnapshot::capture(&record(2, 1))),
            (3, 5),
        );
        let snap = j.rebuild();
        assert_eq!(snap.services.len(), 2);
        assert_eq!(snap.services[0], late);
        assert_eq!((snap.next_service, snap.next_vsn), (3, 5));
    }

    #[test]
    fn compaction_preserves_rebuild_and_truncates() {
        let mut full = Journal::new(base_snapshot(), 1000);
        let mut compacting = Journal::new(base_snapshot(), 3);
        let t = SimTime::from_secs(2);
        for id in 1..=7u64 {
            let rec = ServiceSnapshot::capture(&record(id, 1));
            full.append(
                t,
                JournalOp::Admission,
                ServiceId(id),
                None,
                Some(rec.clone()),
                (id + 1, id * 2),
            );
            compacting.append(
                t,
                JournalOp::Admission,
                ServiceId(id),
                None,
                Some(rec),
                (id + 1, id * 2),
            );
        }
        // A tombstone flows through compaction too.
        full.append(t, JournalOp::Teardown, ServiceId(3), None, None, (8, 14));
        compacting.append(t, JournalOp::Teardown, ServiceId(3), None, None, (8, 14));
        assert!(compacting.checkpoints_taken() > 0);
        assert!(compacting.replay_len() < full.replay_len());
        assert_eq!(compacting.rebuild(), full.rebuild());
        assert_eq!(compacting.appended_total(), full.appended_total());
    }

    #[test]
    fn episode_entries_do_not_touch_records() {
        let mut j = Journal::new(base_snapshot(), 1000);
        let t = SimTime::from_secs(3);
        j.append(
            t,
            JournalOp::Admission,
            ServiceId(1),
            None,
            Some(ServiceSnapshot::capture(&record(1, 2))),
            (2, 3),
        );
        let id = EpisodeId { epoch: 1, seq: 4 };
        j.append(
            t,
            JournalOp::EpisodeOpen,
            ServiceId(1),
            Some(id),
            None,
            (2, 3),
        );
        j.append(
            t,
            JournalOp::EpisodeClose,
            ServiceId(1),
            Some(id),
            None,
            (2, 3),
        );
        assert_eq!(j.rebuild().services.len(), 1);
    }

    #[test]
    fn world_snapshot_round_trips_through_text() {
        let ws = WorldSnapshot {
            at_ns: 123_456_789,
            master: MasterSnapshot {
                epoch: 2,
                next_service: 9,
                next_vsn: 31,
                slowdown_inflation: 1.3,
                placement: "worst_fit".to_string(),
                services: vec![ServiceSnapshot::capture(&record(4, 2))],
            },
            recovery: RecoverySnapshot {
                enabled: true,
                episode_epoch: 2,
                next_seq: 6,
                rng: [1, u64::MAX, 3, 0xdead_beef],
                hosts: vec![HostSnapshot {
                    host: 1,
                    last_heartbeat_ns: 55,
                    up: true,
                }],
                episodes: vec![EpisodeSnapshot {
                    epoch: 1,
                    seq: 5,
                    service: 4,
                    capacity: 3,
                    lost_at_ns: 99,
                    dead_vsn: Some(40),
                    origin_host: None,
                    attempt: 2,
                    replacement: None,
                    try_reprime: false,
                    shed_done: true,
                    degraded: true,
                    parked_until_ns: Some(1_000),
                }],
                degraded_since: vec![(4, 77)],
                degraded_total: vec![(4, 11)],
                priorities: vec![(4, PRIORITY_BIAS + 10), (5, PRIORITY_BIAS - 3)],
                stats: StatsSnapshot {
                    detections: vec![(1, 88)],
                    recoveries: vec![],
                    retries: 2,
                    degradations: 1,
                    sheds: 1,
                    false_alarms: 0,
                    invariant_violations: 0,
                },
            },
        };
        let text = ws.render();
        let back = WorldSnapshot::parse(&text).expect("parses");
        assert_eq!(ws, back);
        assert_eq!(ws.fingerprint(), back.fingerprint());
    }
}
