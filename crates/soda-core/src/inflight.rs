//! Indexed in-flight flow table.
//!
//! PR 2 keyed the world's in-flight map by `(HostId, FlowId)` so that
//! mass cancellation (host crash, partition) fires in a deterministic
//! ascending order. That stays the source of truth here — the primary
//! map IS the host index, because the host-major key order makes
//! "every flow on host H" a contiguous key range with zero index
//! maintenance. What the scale-out run needs on top is the VSN
//! dimension: node crashes must cancel only that node's response flows
//! without scanning every in-flight flow in the utility. A secondary
//! `by_vsn` index provides that; its key set iterates in exactly the
//! order the old full scan produced, so cancellation trajectories are
//! bit-identical (see DESIGN.md §8 and `tests/scale_oracle.rs` for the
//! differential proof).
//!
//! Keys are packed: `(host << 32) | flow` in one `u64`, so the tree
//! compares a single integer instead of a two-field tuple and each
//! entry sheds eight key bytes. Packing preserves host-major order
//! exactly because per-host flow ids stay below 2³² (asserted on
//! insert) — the numeric order of the packed word IS the lexicographic
//! `(HostId, FlowId)` order.

use std::collections::{BTreeMap, BTreeSet};

use soda_hup::host::HostId;
use soda_net::link::FlowId;
use soda_vmm::vsn::VsnId;

/// Pack `(host, flow)` into one order-preserving `u64` key.
fn pack(host: HostId, flow: FlowId) -> u64 {
    assert!(flow.0 < (1 << 32), "per-host flow ids stay below 2^32");
    (u64::from(host.0) << 32) | flow.0
}

/// Recover `(host, flow)` from a packed key.
fn unpack(key: u64) -> (HostId, FlowId) {
    (HostId((key >> 32) as u32), FlowId(key & 0xffff_ffff))
}

/// In-flight flows, indexed for O(flows-on-target) cancellation by host
/// or by VSN. `P` is the per-flow payload (the world's `FlowPurpose`).
#[derive(Debug, Clone)]
pub struct InflightTable<P> {
    /// Source of truth, host-major: a host's flows are one key range of
    /// the packed `(host << 32) | flow` key space.
    flows: BTreeMap<u64, (Option<VsnId>, P)>,
    /// Secondary index: response flows by the VSN serving them.
    by_vsn: BTreeMap<VsnId, BTreeSet<u64>>,
}

impl<P> Default for InflightTable<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> InflightTable<P> {
    /// An empty table.
    pub fn new() -> Self {
        InflightTable {
            flows: BTreeMap::new(),
            by_vsn: BTreeMap::new(),
        }
    }

    /// Number of in-flight flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// No flows in flight?
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Track a flow. `vsn` is `Some` only for flows a node crash should
    /// cancel (response flows); downloads and floods pass `None` and are
    /// reachable only through their host.
    pub fn insert(&mut self, host: HostId, flow: FlowId, vsn: Option<VsnId>, payload: P) {
        let key = pack(host, flow);
        if let Some((Some(old), _)) = self.flows.insert(key, (vsn, payload)) {
            // Overwrite: drop the old tag's index entry before adding
            // the new one, or a retag would leave the index stale.
            self.unindex(old, key);
        }
        if let Some(v) = vsn {
            self.by_vsn.entry(v).or_default().insert(key);
        }
    }

    /// Remove one flow (normal completion), returning its payload.
    pub fn remove(&mut self, host: HostId, flow: FlowId) -> Option<P> {
        let key = pack(host, flow);
        let (vsn, payload) = self.flows.remove(&key)?;
        if let Some(v) = vsn {
            self.unindex(v, key);
        }
        Some(payload)
    }

    /// Remove and return every flow on `host`, in ascending
    /// `(HostId, FlowId)` order — the deterministic cancellation order
    /// PR 2 established. O(flows-on-host · log n).
    pub fn drain_host(&mut self, host: HostId) -> Vec<((HostId, FlowId), P)> {
        let lo = pack(host, FlowId(0));
        let hi = pack(host, FlowId((1 << 32) - 1));
        let keys: Vec<u64> = self.flows.range(lo..=hi).map(|(k, _)| *k).collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let (vsn, payload) = self.flows.remove(&k).expect("key just enumerated");
            if let Some(v) = vsn {
                self.unindex(v, k);
            }
            out.push((unpack(k), payload));
        }
        out
    }

    /// Remove and return every flow tagged with `vsn`, in ascending
    /// `(HostId, FlowId)` order — identical to what a full scan of the
    /// primary map would yield. O(flows-on-vsn · log n).
    pub fn drain_vsn(&mut self, vsn: VsnId) -> Vec<((HostId, FlowId), P)> {
        let Some(keys) = self.by_vsn.remove(&vsn) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let (_, payload) = self.flows.remove(&k).expect("index entry has a flow");
            out.push((unpack(k), payload));
        }
        out
    }

    /// Iterate all flows in ascending `(HostId, FlowId)` order.
    pub fn iter(&self) -> impl Iterator<Item = ((HostId, FlowId), &P)> {
        self.flows.iter().map(|(k, (_, p))| (unpack(*k), p))
    }

    fn unindex(&mut self, vsn: VsnId, key: u64) {
        if let Some(set) = self.by_vsn.get_mut(&vsn) {
            set.remove(&key);
            if set.is_empty() {
                self.by_vsn.remove(&vsn);
            }
        }
    }

    /// Verify the secondary index against the primary map and panic on
    /// any divergence. Driven by the differential oracle tests.
    #[doc(hidden)]
    pub fn assert_coherent(&self) {
        let mut expect: BTreeMap<VsnId, BTreeSet<u64>> = BTreeMap::new();
        for (k, (vsn, _)) in &self.flows {
            if let Some(v) = vsn {
                expect.entry(*v).or_default().insert(*k);
            }
        }
        assert_eq!(self.by_vsn, expect, "by_vsn index drift");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId(n)
    }

    #[test]
    fn drain_host_takes_only_that_host_in_order() {
        let mut t = InflightTable::new();
        t.insert(h(2), FlowId(5), None, "b5");
        t.insert(h(1), FlowId(9), Some(VsnId(1)), "a9");
        t.insert(h(2), FlowId(1), Some(VsnId(1)), "b1");
        t.insert(h(1), FlowId(3), None, "a3");
        let drained = t.drain_host(h(2));
        let keys: Vec<_> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(h(2), FlowId(1)), (h(2), FlowId(5))]);
        assert_eq!(t.len(), 2);
        t.assert_coherent();
    }

    #[test]
    fn drain_vsn_takes_only_tagged_flows_in_order() {
        let mut t = InflightTable::new();
        t.insert(h(2), FlowId(5), Some(VsnId(7)), "b5");
        t.insert(h(1), FlowId(9), Some(VsnId(7)), "a9");
        t.insert(h(1), FlowId(3), Some(VsnId(8)), "a3");
        t.insert(h(1), FlowId(4), None, "a4");
        let drained = t.drain_vsn(VsnId(7));
        let keys: Vec<_> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(h(1), FlowId(9)), (h(2), FlowId(5))]);
        assert_eq!(t.drain_vsn(VsnId(7)), Vec::new());
        assert_eq!(t.len(), 2);
        t.assert_coherent();
    }

    #[test]
    fn remove_unindexes() {
        let mut t = InflightTable::new();
        t.insert(h(1), FlowId(1), Some(VsnId(3)), ());
        assert_eq!(t.remove(h(1), FlowId(1)), Some(()));
        assert_eq!(t.remove(h(1), FlowId(1)), None);
        assert!(t.is_empty());
        assert!(t.drain_vsn(VsnId(3)).is_empty());
        t.assert_coherent();
    }
}
