//! # soda-core
//!
//! The SODA architecture itself (Jiang & Xu, HPDC'03): the middleware
//! entities that turn a pool of HUP hosts into a Service-On-Demand
//! hosting utility.
//!
//! * [`api`] — the SODA API: `SODA_service_creation`,
//!   `SODA_service_teardown`, `SODA_service_resizing` (§4.1).
//! * [`agent`] — the **SODA Agent**: ASP authentication and billing, the
//!   interface between ASPs and the HUP (§3.1).
//! * [`master`] — the **SODA Master**: admission control, slice
//!   placement, priming coordination, switch creation, resizing (§3.2).
//! * [`placement`] — algorithms mapping `<n, M>` to host slices.
//! * [`config`] — the service configuration file (Table 3 format).
//! * [`policy`] — request-switching policies: weighted round-robin
//!   (default) and replaceable alternatives (§3.4).
//! * [`switch`] — the per-service **service switch**.
//! * [`service`] — service specs, ids and records.
//! * [`billing`] — usage metering behind the Agent.
//! * [`world`] — the composed simulation world: engine state wiring
//!   hosts, daemons, master, switches and the LAN into one request
//!   pipeline (what Figures 4 and 6 measure).
//! * [`federation`] — the §3.5 wide-area extension: multiple local HUPs
//!   federated behind their Agents.

pub mod agent;
pub mod api;
pub mod arena;
pub mod billing;
pub mod config;
pub mod error;
pub mod federation;
pub mod inflight;
pub mod journal;
pub mod master;
pub mod monitoring;
pub mod partition;
pub mod placement;
pub mod policy;
pub mod queue;
pub mod recovery;
pub mod service;
pub mod shard;
pub mod switch;
pub mod world;

pub use agent::SodaAgent;
pub use api::{CreationReply, CreationRequest, ResizeRequest, TeardownRequest};
pub use arena::{DenseId, IdMap, RequestTable, SlotHandle, WorldStorageKind};
pub use config::{ConfigDirective, ServiceConfigFile, ShardId, ShardMap};
pub use error::SodaError;
pub use journal::{
    EpisodeId, Journal, JournalEntry, JournalOp, MasterSnapshot, RecoverySnapshot, ServiceSnapshot,
    WorldSnapshot,
};
pub use master::SodaMaster;
pub use placement::{BestFit, FirstFit, NodePlan, PlacementPolicy, WorstFit};
pub use policy::{
    BackendView, LeastConnections, RandomPolicy, RoundRobin, SwitchPolicy, WeightedRoundRobin,
};
pub use recovery::{
    check_invariants, heartbeat_tick, start_self_healing, RecoveryConfig, RecoveryManager,
    RecoveryStats,
};
pub use service::{ServiceId, ServiceRecord, ServiceSpec, ServiceState};
pub use shard::{shard_salt, ControlPlaneKind, ShardCell, ShardMsg, ShardPlane};
pub use switch::ServiceSwitch;
pub use world::{
    apply_fault, attack_node, crash_host, create_service_driven, ddos_switch_host, fail_host,
    failover_node, repair_host, resize_service_driven, revive_node, submit_request,
    submit_request_direct, submit_request_with_callback, CreationRecord, RequestCallback,
    RequestId, RequestRecord, SodaWorld,
};
