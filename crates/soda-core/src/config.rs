//! The service configuration file — Table 3.
//!
//! "Inside the service switch, a *service configuration file* is created
//! and maintained by the SODA Master. The file records (1) the IP
//! address and (2) the relative capacity of each virtual service node of
//! S." (§3.4) Table 3 shows the format:
//!
//! ```text
//! BackEnd 128.10.9.125 8080 2
//! BackEnd 128.10.9.126 8080 1
//! ```

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

use soda_net::addr::Ipv4Addr;

/// Identifier of one placement cell of the sharded control plane.
///
/// Shard 0 is special: under `ControlPlaneKind::Monolith` it is the
/// *only* cell and owns the whole fleet, so shard-0 state doubles as
/// the monolithic Master's state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// Static, balanced partition of the host fleet into placement cells.
///
/// Hosts are identified here by their *index* in the world's daemon
/// roster (registration order), not by `HostId`: cells are contiguous
/// index ranges so a cell's daemons can be borrowed as one slice. The
/// split is the canonical balanced one — with `h` hosts and `n` cells,
/// cell `k` owns indices `[k*h/n, (k+1)*h/n)`, so cell sizes differ by
/// at most one and `n = 1` degenerates to the full range `[0, h)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    count: u32,
    hosts: usize,
}

impl ShardMap {
    /// A map of `hosts` roster slots over `count` cells (`count >= 1`).
    pub fn new(count: u32, hosts: usize) -> Self {
        ShardMap {
            count: count.max(1),
            hosts,
        }
    }

    /// Number of placement cells.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Number of host roster slots covered.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The contiguous roster-index range owned by `shard`.
    pub fn range(&self, shard: ShardId) -> Range<usize> {
        let n = self.count as usize;
        let k = (shard.0 as usize).min(n - 1);
        (k * self.hosts / n)..((k + 1) * self.hosts / n)
    }

    /// The cell owning roster index `idx`.
    pub fn shard_of_index(&self, idx: usize) -> ShardId {
        let n = self.count as usize;
        if self.hosts == 0 {
            return ShardId(0);
        }
        let idx = idx.min(self.hosts - 1);
        // Inverse of the balanced split: the unique k with
        // k*h/n <= idx < (k+1)*h/n.
        let k = (idx * n + n - 1) / self.hosts.max(1);
        let mut k = k.min(n - 1);
        while k > 0 && self.range(ShardId(k as u32)).start > idx {
            k -= 1;
        }
        while k + 1 < n && self.range(ShardId(k as u32)).end <= idx {
            k += 1;
        }
        ShardId(k as u32)
    }

    /// All cells in order.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> {
        (0..self.count).map(ShardId)
    }
}

/// One directive line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigDirective {
    /// Backend address.
    pub ip: Ipv4Addr,
    /// Backend port.
    pub port: u16,
    /// Relative capacity in machine instances `M` ("The capacity is
    /// relative to the number of machine instances M … mapped to this
    /// virtual service node").
    pub capacity: u32,
}

impl fmt::Display for ConfigDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BackEnd {} {} {}", self.ip, self.port, self.capacity)
    }
}

/// Parse failure for a configuration file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ConfigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ConfigParseError {}

/// The per-service configuration file held inside the switch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceConfigFile {
    directives: Vec<ConfigDirective>,
}

impl ServiceConfigFile {
    /// An empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `BackEnd` directive.
    pub fn add_backend(&mut self, ip: Ipv4Addr, port: u16, capacity: u32) {
        self.directives.push(ConfigDirective { ip, port, capacity });
    }

    /// Remove the directive for `ip` (service shrink). Returns it.
    pub fn remove_backend(&mut self, ip: Ipv4Addr) -> Option<ConfigDirective> {
        let pos = self.directives.iter().position(|d| d.ip == ip)?;
        Some(self.directives.remove(pos))
    }

    /// Update a backend's capacity in place (in-place resize). Returns
    /// false if no such backend exists.
    pub fn set_capacity(&mut self, ip: Ipv4Addr, capacity: u32) -> bool {
        for d in &mut self.directives {
            if d.ip == ip {
                d.capacity = capacity;
                return true;
            }
        }
        false
    }

    /// The directives in file order.
    pub fn backends(&self) -> &[ConfigDirective] {
        &self.directives
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// True iff no backends are configured.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Sum of relative capacities — the `n` of `<n, M>` actually served.
    pub fn total_capacity(&self) -> u32 {
        self.directives.iter().map(|d| d.capacity).sum()
    }
}

impl fmt::Display for ServiceConfigFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.directives {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl FromStr for ServiceConfigFile {
    type Err = ConfigParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = ServiceConfigFile::new();
        for (i, raw) in s.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().unwrap_or_default();
            if keyword != "BackEnd" {
                return Err(ConfigParseError {
                    line: line_no,
                    reason: format!("unknown directive {keyword:?}"),
                });
            }
            let ip: Ipv4Addr = parts
                .next()
                .ok_or_else(|| ConfigParseError {
                    line: line_no,
                    reason: "missing IP".into(),
                })?
                .parse()
                .map_err(|e| ConfigParseError {
                    line: line_no,
                    reason: format!("{e}"),
                })?;
            let port: u16 = parts
                .next()
                .ok_or_else(|| ConfigParseError {
                    line: line_no,
                    reason: "missing port".into(),
                })?
                .parse()
                .map_err(|_| ConfigParseError {
                    line: line_no,
                    reason: "bad port".into(),
                })?;
            let capacity: u32 = parts
                .next()
                .ok_or_else(|| ConfigParseError {
                    line: line_no,
                    reason: "missing capacity".into(),
                })?
                .parse()
                .map_err(|_| ConfigParseError {
                    line: line_no,
                    reason: "bad capacity".into(),
                })?;
            if parts.next().is_some() {
                return Err(ConfigParseError {
                    line: line_no,
                    reason: "trailing tokens".into(),
                });
            }
            out.add_backend(ip, port, capacity);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table3() -> ServiceConfigFile {
        let mut f = ServiceConfigFile::new();
        f.add_backend("128.10.9.125".parse().unwrap(), 8080, 2);
        f.add_backend("128.10.9.126".parse().unwrap(), 8080, 1);
        f
    }

    #[test]
    fn renders_table3_exactly() {
        assert_eq!(
            table3().to_string(),
            "BackEnd 128.10.9.125 8080 2\nBackEnd 128.10.9.126 8080 1\n"
        );
    }

    #[test]
    fn table3_semantics() {
        // "the resource requirement of the service is <3, M>, and is
        // provided by two virtual service nodes with capacity of 2M and
        // M, respectively."
        let f = table3();
        assert_eq!(f.len(), 2);
        assert_eq!(f.total_capacity(), 3);
        assert_eq!(f.backends()[0].capacity, 2);
        assert_eq!(f.backends()[1].capacity, 1);
    }

    #[test]
    fn parse_round_trip() {
        let f = table3();
        let parsed: ServiceConfigFile = f.to_string().parse().unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let text =
            "\n# switch config, maintained by the SODA Master\n\nBackEnd 10.0.0.1 80 1\n  \n";
        let f: ServiceConfigFile = text.parse().unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.backends()[0].port, 80);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "BackEnd 10.0.0.1 80 1\nFrontEnd x"
            .parse::<ServiceConfigFile>()
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("FrontEnd"));
        let err = "BackEnd 999.0.0.1 80 1"
            .parse::<ServiceConfigFile>()
            .unwrap_err();
        assert_eq!(err.line, 1);
        let err = "BackEnd 10.0.0.1 80"
            .parse::<ServiceConfigFile>()
            .unwrap_err();
        assert!(err.reason.contains("capacity"));
        let err = "BackEnd 10.0.0.1 80 1 extra"
            .parse::<ServiceConfigFile>()
            .unwrap_err();
        assert!(err.reason.contains("trailing"));
        let err = "BackEnd 10.0.0.1 99999 1"
            .parse::<ServiceConfigFile>()
            .unwrap_err();
        assert!(err.reason.contains("port"));
    }

    #[test]
    fn mutation_for_resizing() {
        let mut f = table3();
        // In-place capacity adjustment.
        assert!(f.set_capacity("128.10.9.126".parse().unwrap(), 3));
        assert_eq!(f.total_capacity(), 5);
        assert!(!f.set_capacity("1.2.3.4".parse().unwrap(), 9));
        // Node removal.
        let removed = f.remove_backend("128.10.9.125".parse().unwrap()).unwrap();
        assert_eq!(removed.capacity, 2);
        assert_eq!(f.len(), 1);
        assert!(f.remove_backend("128.10.9.125".parse().unwrap()).is_none());
    }

    #[test]
    fn shard_map_single_cell_owns_everything() {
        let m = ShardMap::new(1, 100);
        assert_eq!(m.range(ShardId(0)), 0..100);
        for idx in [0usize, 1, 50, 99] {
            assert_eq!(m.shard_of_index(idx), ShardId(0));
        }
    }

    #[test]
    fn shard_map_ranges_partition_the_roster() {
        for hosts in [1usize, 3, 4, 7, 10, 100, 1000] {
            for count in [1u32, 2, 3, 4, 8] {
                let m = ShardMap::new(count, hosts);
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for s in m.shards() {
                    let r = m.range(s);
                    assert_eq!(r.start, prev_end, "hosts={hosts} count={count}");
                    prev_end = r.end;
                    covered += r.len();
                    // Balanced: sizes differ by at most one.
                    assert!(r.len() + 1 >= hosts / count as usize);
                    assert!(r.len() <= hosts / count as usize + 1);
                    for idx in r {
                        assert_eq!(m.shard_of_index(idx), s, "idx={idx}");
                    }
                }
                assert_eq!(prev_end, hosts);
                assert_eq!(covered, hosts);
            }
        }
    }

    #[test]
    fn shard_map_clamps_degenerate_inputs() {
        // count is floored to 1, out-of-range indices clamp.
        let m = ShardMap::new(0, 5);
        assert_eq!(m.count(), 1);
        assert_eq!(ShardMap::new(2, 0).shard_of_index(3), ShardId(0));
        let m = ShardMap::new(4, 8);
        assert_eq!(m.shard_of_index(1000), ShardId(3));
        assert_eq!(m.range(ShardId(99)), m.range(ShardId(3)));
    }

    proptest! {
        /// Any generated file round-trips through text.
        #[test]
        fn prop_round_trip(
            entries in proptest::collection::vec((any::<u32>(), 1u16..u16::MAX, 1u32..100), 0..20)
        ) {
            let mut f = ServiceConfigFile::new();
            for &(raw_ip, port, cap) in &entries {
                f.add_backend(Ipv4Addr(raw_ip), port, cap);
            }
            let parsed: ServiceConfigFile = f.to_string().parse().unwrap();
            prop_assert_eq!(parsed, f);
        }
    }
}
