//! The service switch.
//!
//! "Co-located in one of the virtual service nodes of S, the service
//! switch will accept and direct each client request to one of the
//! virtual service nodes." (§3.4) The switch owns the service
//! configuration file, the (replaceable) switching policy, and the
//! per-backend runtime the experiments measure: requests served per node
//! and per-node mean response time — exactly Figure 4's two panels.

use soda_net::addr::Ipv4Addr;
use soda_sim::{Event, Labels, Obs, SimDuration, SimTime, Summary};
use soda_vmm::vsn::VsnId;

use crate::config::ServiceConfigFile;
use crate::policy::{BackendView, SwitchPolicy, WeightedRoundRobin};
use crate::service::ServiceId;

/// Per-backend runtime state inside the switch.
#[derive(Debug)]
pub struct BackendRuntime {
    /// The node this backend is.
    pub vsn: VsnId,
    /// Backend address.
    pub ip: Ipv4Addr,
    /// Backend port.
    pub port: u16,
    /// Relative capacity (machine instances).
    pub capacity: u32,
    /// Healthy (node running)?
    pub healthy: bool,
    /// Requests in flight.
    pub outstanding: u32,
    /// Requests completed.
    pub served: u64,
    /// EWMA of response time, seconds.
    pub ewma_response: f64,
    /// Full response-time summary.
    pub response_stats: Summary,
}

impl BackendRuntime {
    fn view(&self) -> BackendView {
        BackendView {
            capacity: self.capacity,
            healthy: self.healthy,
            outstanding: self.outstanding,
            ewma_response: self.ewma_response,
        }
    }
}

/// The per-service request switch.
pub struct ServiceSwitch {
    /// The service this switch fronts.
    pub service: ServiceId,
    /// The VSN the switch is colocated in (it shares that node's fate —
    /// the DDoS extension experiment exploits this).
    pub colocated_on: VsnId,
    config: ServiceConfigFile,
    policy: Box<dyn SwitchPolicy>,
    backends: Vec<BackendRuntime>,
    dropped: u64,
    ewma_alpha: f64,
    obs: Obs,
}

impl ServiceSwitch {
    /// A switch with the default weighted-round-robin policy.
    pub fn new(service: ServiceId, colocated_on: VsnId) -> Self {
        ServiceSwitch {
            service,
            colocated_on,
            config: ServiceConfigFile::new(),
            policy: Box::new(WeightedRoundRobin::new()),
            backends: Vec::new(),
            dropped: 0,
            ewma_alpha: 0.2,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle; request lifecycle events and
    /// `switch.*` metrics are recorded through it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// `{service, vsn}` metric labels for backend `idx`.
    fn labels(&self, idx: usize) -> Labels {
        Labels::two("service", self.service.0, "vsn", self.backends[idx].vsn.0)
    }

    /// Replace the switching policy with a service-specific one (§3.4).
    pub fn replace_policy(&mut self, policy: Box<dyn SwitchPolicy>) {
        self.policy = policy;
    }

    /// The current policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The configuration file (as the Master maintains it).
    pub fn config(&self) -> &ServiceConfigFile {
        &self.config
    }

    /// Add a backend node (Master, at creation or growth-resize).
    pub fn add_backend(&mut self, vsn: VsnId, ip: Ipv4Addr, port: u16, capacity: u32) {
        self.config.add_backend(ip, port, capacity);
        self.backends.push(BackendRuntime {
            vsn,
            ip,
            port,
            capacity,
            healthy: true,
            outstanding: 0,
            served: 0,
            ewma_response: 0.0,
            response_stats: Summary::new(),
        });
    }

    /// Remove a backend node (shrink-resize / teardown). Returns whether
    /// it existed.
    pub fn remove_backend(&mut self, vsn: VsnId) -> bool {
        let Some(pos) = self.backends.iter().position(|b| b.vsn == vsn) else {
            return false;
        };
        let ip = self.backends[pos].ip;
        self.backends.remove(pos);
        self.config.remove_backend(ip);
        true
    }

    /// Change a backend's relative capacity (in-place resize); the
    /// config file is updated to match (§3.4: "in either case, the
    /// service configuration file will be updated by the SODA Master").
    pub fn set_capacity(&mut self, vsn: VsnId, capacity: u32) -> bool {
        let Some(b) = self.backends.iter_mut().find(|b| b.vsn == vsn) else {
            return false;
        };
        b.capacity = capacity;
        let ip = b.ip;
        self.config.set_capacity(ip, capacity);
        true
    }

    /// Mark a backend up/down (node crash / revival).
    pub fn set_health(&mut self, vsn: VsnId, healthy: bool) -> bool {
        match self.backends.iter_mut().find(|b| b.vsn == vsn) {
            Some(b) => {
                b.healthy = healthy;
                true
            }
            None => false,
        }
    }

    /// Route one request: the policy picks a backend, the switch counts
    /// it in flight. Returns the backend index, or `None` (counted as a
    /// drop) when the policy yields nothing.
    pub fn route(&mut self, now: SimTime) -> Option<usize> {
        let views: Vec<BackendView> = self.backends.iter().map(|b| b.view()).collect();
        match self.policy.pick(&views) {
            Some(i) if i < self.backends.len() => {
                self.backends[i].outstanding += 1;
                if self.obs.is_enabled() {
                    let labels = self.labels(i);
                    self.obs.record(
                        now,
                        Event::RequestDispatched {
                            service: self.service.0,
                            vsn: self.backends[i].vsn.0,
                        },
                    );
                    self.obs.counter_add("switch", "dispatched", labels, 1);
                    self.obs.gauge_set(
                        "switch",
                        "outstanding",
                        labels,
                        f64::from(self.backends[i].outstanding),
                    );
                }
                Some(i)
            }
            _ => {
                self.dropped += 1;
                if self.obs.is_enabled() {
                    self.obs.record(
                        now,
                        Event::RequestFailed {
                            service: self.service.0,
                            vsn: 0,
                        },
                    );
                    self.obs.counter_add(
                        "switch",
                        "dropped",
                        Labels::one("service", self.service.0),
                        1,
                    );
                }
                None
            }
        }
    }

    /// Record a completed request on backend `idx` with the observed
    /// response time.
    pub fn complete(&mut self, idx: usize, response_time: SimDuration, now: SimTime) {
        let Some(b) = self.backends.get_mut(idx) else {
            return;
        };
        b.outstanding = b.outstanding.saturating_sub(1);
        b.served += 1;
        let rt = response_time.as_secs_f64();
        b.ewma_response = if b.served == 1 {
            rt
        } else {
            (1.0 - self.ewma_alpha) * b.ewma_response + self.ewma_alpha * rt
        };
        b.response_stats.record(rt);
        if self.obs.is_enabled() {
            let labels = self.labels(idx);
            let b = &self.backends[idx];
            self.obs.record(
                now,
                Event::RequestCompleted {
                    service: self.service.0,
                    vsn: b.vsn.0,
                },
            );
            self.obs.counter_add("switch", "served", labels, 1);
            self.obs
                .gauge_set("switch", "outstanding", labels, f64::from(b.outstanding));
            self.obs
                .histogram_record("switch", "response_time", labels, response_time.as_nanos());
        }
    }

    /// A failed request (backend crashed mid-flight): decrement
    /// in-flight without recording a completion.
    pub fn abort(&mut self, idx: usize, now: SimTime) {
        if let Some(b) = self.backends.get_mut(idx) {
            b.outstanding = b.outstanding.saturating_sub(1);
        }
        if self.obs.is_enabled() {
            if let Some(b) = self.backends.get(idx) {
                self.obs.record(
                    now,
                    Event::RequestFailed {
                        service: self.service.0,
                        vsn: b.vsn.0,
                    },
                );
                self.obs
                    .counter_add("switch", "aborted", self.labels(idx), 1);
                self.obs.gauge_set(
                    "switch",
                    "outstanding",
                    self.labels(idx),
                    f64::from(b.outstanding),
                );
            }
        }
    }

    /// Backend runtime states.
    pub fn backends(&self) -> &[BackendRuntime] {
        &self.backends
    }

    /// Backend index by VSN.
    pub fn index_of(&self, vsn: VsnId) -> Option<usize> {
        self.backends.iter().position(|b| b.vsn == vsn)
    }

    /// Requests dropped (no backend available).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Requests served per backend.
    pub fn served_counts(&self) -> Vec<u64> {
        self.backends.iter().map(|b| b.served).collect()
    }

    /// Mean response time per backend, seconds.
    pub fn mean_responses(&self) -> Vec<f64> {
        self.backends
            .iter()
            .map(|b| b.response_stats.mean())
            .collect()
    }
}

impl std::fmt::Debug for ServiceSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceSwitch")
            .field("service", &self.service)
            .field("policy", &self.policy.name())
            .field("backends", &self.backends.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{IllBehaved, LeastConnections};

    fn switch_2_1() -> ServiceSwitch {
        let mut s = ServiceSwitch::new(ServiceId(1), VsnId(10));
        s.add_backend(VsnId(10), "128.10.9.125".parse().unwrap(), 8080, 2);
        s.add_backend(VsnId(11), "128.10.9.126".parse().unwrap(), 8080, 1);
        s
    }

    #[test]
    fn default_policy_is_wrr_and_config_matches_table3() {
        let s = switch_2_1();
        assert_eq!(s.policy_name(), "weighted-round-robin");
        assert_eq!(
            s.config().to_string(),
            "BackEnd 128.10.9.125 8080 2\nBackEnd 128.10.9.126 8080 1\n"
        );
    }

    #[test]
    fn routing_respects_2_to_1() {
        let mut s = switch_2_1();
        for _ in 0..300 {
            let i = s.route(SimTime::ZERO).unwrap();
            s.complete(i, SimDuration::from_millis(10), SimTime::ZERO);
        }
        assert_eq!(s.served_counts(), vec![200, 100]);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn outstanding_and_completion_accounting() {
        let mut s = switch_2_1();
        let a = s.route(SimTime::ZERO).unwrap();
        let b = s.route(SimTime::ZERO).unwrap();
        assert_eq!(s.backends().iter().map(|x| x.outstanding).sum::<u32>(), 2);
        s.complete(a, SimDuration::from_millis(100), SimTime::ZERO);
        s.abort(b, SimTime::ZERO);
        assert_eq!(s.backends().iter().map(|x| x.outstanding).sum::<u32>(), 0);
        let total_served: u64 = s.served_counts().iter().sum();
        assert_eq!(total_served, 1, "aborts are not completions");
    }

    #[test]
    fn response_stats_accumulate() {
        let mut s = switch_2_1();
        for ms in [10u64, 20, 30] {
            let i = s.index_of(VsnId(10)).unwrap();
            s.backends()[i].view(); // no-op, exercise view
            s.route(SimTime::ZERO);
            s.complete(0, SimDuration::from_millis(ms), SimTime::ZERO);
        }
        let means = s.mean_responses();
        assert!((means[0] - 0.020).abs() < 1e-9);
        assert!(s.backends()[0].ewma_response > 0.0);
    }

    #[test]
    fn health_routing() {
        let mut s = switch_2_1();
        s.set_health(VsnId(10), false);
        for _ in 0..10 {
            let i = s.route(SimTime::ZERO).unwrap();
            assert_eq!(i, s.index_of(VsnId(11)).unwrap());
            s.complete(i, SimDuration::from_millis(1), SimTime::ZERO);
        }
        s.set_health(VsnId(11), false);
        assert_eq!(s.route(SimTime::ZERO), None);
        assert_eq!(s.dropped(), 1);
        assert!(!s.set_health(VsnId(99), true));
    }

    #[test]
    fn resize_updates_config_and_routing() {
        let mut s = switch_2_1();
        assert!(s.set_capacity(VsnId(11), 2));
        assert!(s.config().to_string().contains("128.10.9.126 8080 2"));
        for _ in 0..100 {
            let i = s.route(SimTime::ZERO).unwrap();
            s.complete(i, SimDuration::from_millis(1), SimTime::ZERO);
        }
        assert_eq!(s.served_counts(), vec![50, 50]);
        // Remove a node entirely.
        assert!(s.remove_backend(VsnId(10)));
        assert!(!s.remove_backend(VsnId(10)));
        assert_eq!(s.config().len(), 1);
        assert_eq!(s.route(SimTime::ZERO), Some(0));
    }

    #[test]
    fn policy_replacement() {
        let mut s = switch_2_1();
        s.replace_policy(Box::new(LeastConnections::new()));
        assert_eq!(s.policy_name(), "least-connections");
        // An ill-behaved replacement still routes (to backend 0 always).
        s.replace_policy(Box::new(IllBehaved::new()));
        s.set_health(VsnId(10), false);
        let i = s.route(SimTime::ZERO).unwrap();
        assert_eq!(i, 0, "ill-behaved policy dumps on the dead node");
    }

    #[test]
    fn out_of_range_policy_pick_counts_as_drop() {
        struct Broken;
        impl crate::policy::SwitchPolicy for Broken {
            fn pick(&mut self, _b: &[BackendView]) -> Option<usize> {
                Some(999)
            }
            fn name(&self) -> &'static str {
                "broken"
            }
        }
        let mut s = switch_2_1();
        s.replace_policy(Box::new(Broken));
        assert_eq!(s.route(SimTime::ZERO), None);
        assert_eq!(s.dropped(), 1);
    }
}
