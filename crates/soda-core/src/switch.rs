//! The service switch.
//!
//! "Co-located in one of the virtual service nodes of S, the service
//! switch will accept and direct each client request to one of the
//! virtual service nodes." (§3.4) The switch owns the service
//! configuration file, the (replaceable) switching policy, and the
//! per-backend runtime the experiments measure: requests served per node
//! and per-node mean response time — exactly Figure 4's two panels.
//!
//! ## Hot-path discipline
//!
//! [`ServiceSwitch::route`] runs once per client request, so it must not
//! allocate: the policy is handed a *view cache* (`views`) that mirrors
//! the backend runtimes and is updated incrementally by every mutating
//! operation, never rebuilt. Fleet-level aggregates (healthy capacity,
//! total outstanding/served) are likewise maintained incrementally so
//! the Master's capacity queries are O(1) instead of a per-call scan.
//! [`ServiceSwitch::assert_cache_coherent`] recomputes everything from
//! scratch and is cross-checked by the differential oracle tests.
//!
//! Completion accounting is keyed by [`VsnId`], not by backend index:
//! indices shift when [`ServiceSwitch::remove_backend`] fires while
//! requests are still in flight, and a stale index would debit the
//! wrong backend. A completion or abort for a VSN that has already left
//! the rotation is a no-op.

use soda_net::addr::Ipv4Addr;
use soda_sim::{Event, Labels, MetricHandle, MetricKind, Obs, SimDuration, SimTime, Summary};
use soda_vmm::vsn::VsnId;

use crate::config::ServiceConfigFile;
use crate::policy::{BackendView, SwitchPolicy, WeightedRoundRobin};
use crate::service::ServiceId;

/// Per-backend runtime state inside the switch.
#[derive(Debug)]
pub struct BackendRuntime {
    /// The node this backend is.
    pub vsn: VsnId,
    /// Backend address.
    pub ip: Ipv4Addr,
    /// Backend port.
    pub port: u16,
    /// Relative capacity (machine instances).
    pub capacity: u32,
    /// Healthy (node running)?
    pub healthy: bool,
    /// Requests in flight.
    pub outstanding: u32,
    /// Requests completed.
    pub served: u64,
    /// EWMA of response time, seconds.
    pub ewma_response: f64,
    /// Full response-time summary.
    pub response_stats: Summary,
}

impl BackendRuntime {
    fn view(&self) -> BackendView {
        BackendView {
            capacity: self.capacity,
            healthy: self.healthy,
            outstanding: self.outstanding,
            ewma_response: self.ewma_response,
        }
    }
}

/// Interned `switch.*` metric handles for one backend, filled lazily on
/// first record (so a metric still only appears once it is first written,
/// exactly as with string-keyed recording) and hit directly afterwards —
/// the per-request hot path pays a slot-table index instead of a
/// `BTreeMap` walk over `(scope, name, labels)` keys.
#[derive(Clone, Copy, Debug, Default)]
struct BackendHandles {
    dispatched: Option<MetricHandle>,
    served: Option<MetricHandle>,
    aborted: Option<MetricHandle>,
    outstanding: Option<MetricHandle>,
    response_time: Option<MetricHandle>,
}

/// The per-service request switch.
pub struct ServiceSwitch {
    /// The service this switch fronts.
    pub service: ServiceId,
    /// The VSN the switch is colocated in (it shares that node's fate —
    /// the DDoS extension experiment exploits this).
    pub colocated_on: VsnId,
    config: ServiceConfigFile,
    policy: Box<dyn SwitchPolicy>,
    backends: Vec<BackendRuntime>,
    /// Per-request view of `backends`, maintained in lockstep so
    /// `route()` never rebuilds (or allocates) it.
    views: Vec<BackendView>,
    /// Sorted `(vsn, index into backends)` pairs: every VSN-keyed
    /// operation (complete, abort, health/capacity flips) binary-searches
    /// here instead of scanning `backends` linearly — the difference
    /// between O(log n) and O(n) per completion once wide services exist.
    by_vsn: Vec<(VsnId, u32)>,
    /// Sum of `capacity` over healthy backends, maintained incrementally.
    healthy_capacity: u32,
    /// Sum of `outstanding` over all backends, maintained incrementally.
    total_outstanding: u32,
    /// High-water mark of `total_outstanding` — the switch's worst-case
    /// queue depth, reported by the bench trajectory. Tracked
    /// unconditionally so it never depends on observability settings.
    peak_outstanding: u32,
    /// Sum of `served` over all backends, maintained incrementally.
    total_served: u64,
    dropped: u64,
    ewma_alpha: f64,
    obs: Obs,
    /// Per-backend interned metric handles, in lockstep with `backends`.
    handles: Vec<BackendHandles>,
    /// Interned handle for the service-level `switch.dropped` counter.
    dropped_h: Option<MetricHandle>,
    /// Interned handle for the service-level `switch.queue_depth` gauge
    /// (total outstanding across backends — the autoscaler's signal).
    queue_depth_h: Option<MetricHandle>,
}

impl ServiceSwitch {
    /// A switch with the default weighted-round-robin policy.
    pub fn new(service: ServiceId, colocated_on: VsnId) -> Self {
        ServiceSwitch {
            service,
            colocated_on,
            config: ServiceConfigFile::new(),
            policy: Box::new(WeightedRoundRobin::new()),
            backends: Vec::new(),
            views: Vec::new(),
            by_vsn: Vec::new(),
            healthy_capacity: 0,
            total_outstanding: 0,
            peak_outstanding: 0,
            total_served: 0,
            dropped: 0,
            ewma_alpha: 0.2,
            obs: Obs::disabled(),
            handles: Vec::new(),
            dropped_h: None,
            queue_depth_h: None,
        }
    }

    /// Attach an observability handle; request lifecycle events and
    /// `switch.*` metrics are recorded through it. Cached metric handles
    /// are dropped: they index the previous handle's registry.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        self.handles = vec![BackendHandles::default(); self.backends.len()];
        self.dropped_h = None;
        self.queue_depth_h = None;
    }

    /// Track the `total_outstanding` high-water mark and, when obs is
    /// on, refresh the `switch.queue_depth` gauge. Called after every
    /// mutation of the outstanding count.
    #[inline]
    fn note_queue_depth(&mut self) {
        self.peak_outstanding = self.peak_outstanding.max(self.total_outstanding);
        if !self.obs.is_enabled() {
            return;
        }
        let h = Self::handle(
            &self.obs,
            &mut self.queue_depth_h,
            "queue_depth",
            Labels::none().with("service", self.service.0),
            MetricKind::Gauge,
        );
        self.obs.gauge_set_h(h, f64::from(self.total_outstanding));
    }

    /// Returns the cached handle in `slot`, interning `switch.<name>` on
    /// first use. Callers only reach this with observability enabled.
    #[inline]
    fn handle(
        obs: &Obs,
        slot: &mut Option<MetricHandle>,
        name: &'static str,
        labels: Labels,
        kind: MetricKind,
    ) -> MetricHandle {
        match *slot {
            Some(h) => h,
            None => {
                let h = obs
                    .intern("switch", name, labels, kind)
                    .expect("interning requires enabled obs");
                *slot = Some(h);
                h
            }
        }
    }

    /// `{service, vsn}` metric labels for backend `idx`.
    fn labels(&self, idx: usize) -> Labels {
        Labels::two("service", self.service.0, "vsn", self.backends[idx].vsn.0)
    }

    /// Replace the switching policy with a service-specific one (§3.4).
    pub fn replace_policy(&mut self, policy: Box<dyn SwitchPolicy>) {
        self.policy = policy;
    }

    /// The current policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The configuration file (as the Master maintains it).
    pub fn config(&self) -> &ServiceConfigFile {
        &self.config
    }

    /// Add a backend node (Master, at creation or growth-resize).
    pub fn add_backend(&mut self, vsn: VsnId, ip: Ipv4Addr, port: u16, capacity: u32) {
        self.config.add_backend(ip, port, capacity);
        let b = BackendRuntime {
            vsn,
            ip,
            port,
            capacity,
            healthy: true,
            outstanding: 0,
            served: 0,
            ewma_response: 0.0,
            response_stats: Summary::new(),
        };
        self.views.push(b.view());
        self.healthy_capacity += capacity;
        self.backends.push(b);
        self.handles.push(BackendHandles::default());
        let idx = (self.backends.len() - 1) as u32;
        let at = self.by_vsn.partition_point(|&(v, _)| v < vsn);
        self.by_vsn.insert(at, (vsn, idx));
    }

    /// Remove a backend node (shrink-resize / teardown). Returns whether
    /// it existed. In-flight requests on the removed backend leave with
    /// it; their later completions/aborts become no-ops.
    pub fn remove_backend(&mut self, vsn: VsnId) -> bool {
        let Some(pos) = self.index_of(vsn) else {
            return false;
        };
        let b = self.backends.remove(pos);
        self.views.remove(pos);
        self.handles.remove(pos);
        let at = self
            .by_vsn
            .binary_search_by_key(&vsn, |&(v, _)| v)
            .expect("index_of found it");
        self.by_vsn.remove(at);
        // Everything past the removed slot shifted down by one.
        for e in &mut self.by_vsn {
            if e.1 as usize > pos {
                e.1 -= 1;
            }
        }
        if b.healthy {
            self.healthy_capacity -= b.capacity;
        }
        self.total_outstanding -= b.outstanding;
        self.total_served -= b.served;
        self.config.remove_backend(b.ip);
        true
    }

    /// Change a backend's relative capacity (in-place resize); the
    /// config file is updated to match (§3.4: "in either case, the
    /// service configuration file will be updated by the SODA Master").
    pub fn set_capacity(&mut self, vsn: VsnId, capacity: u32) -> bool {
        let Some(i) = self.index_of(vsn) else {
            return false;
        };
        let b = &mut self.backends[i];
        if b.healthy {
            self.healthy_capacity = self.healthy_capacity - b.capacity + capacity;
        }
        b.capacity = capacity;
        self.views[i].capacity = capacity;
        let ip = b.ip;
        self.config.set_capacity(ip, capacity);
        true
    }

    /// Mark a backend up/down (node crash / revival).
    pub fn set_health(&mut self, vsn: VsnId, healthy: bool) -> bool {
        let Some(i) = self.index_of(vsn) else {
            return false;
        };
        let b = &mut self.backends[i];
        if b.healthy != healthy {
            if healthy {
                self.healthy_capacity += b.capacity;
            } else {
                self.healthy_capacity -= b.capacity;
            }
        }
        b.healthy = healthy;
        self.views[i].healthy = healthy;
        true
    }

    /// Route one request: the policy picks a backend, the switch counts
    /// it in flight. Returns the backend index, or `None` (counted as a
    /// drop) when the policy yields nothing. Allocation-free: the policy
    /// reads the incrementally maintained view cache.
    pub fn route(&mut self, now: SimTime) -> Option<usize> {
        match self.policy.pick(&self.views) {
            Some(i) if i < self.backends.len() => {
                self.backends[i].outstanding += 1;
                self.views[i].outstanding += 1;
                self.total_outstanding += 1;
                self.note_queue_depth();
                if self.obs.is_enabled() {
                    let labels = self.labels(i);
                    self.obs.record(
                        now,
                        Event::RequestDispatched {
                            service: self.service.0,
                            vsn: self.backends[i].vsn.0,
                        },
                    );
                    let h = &mut self.handles[i];
                    let dispatched = Self::handle(
                        &self.obs,
                        &mut h.dispatched,
                        "dispatched",
                        labels,
                        MetricKind::Counter,
                    );
                    let outstanding = Self::handle(
                        &self.obs,
                        &mut h.outstanding,
                        "outstanding",
                        labels,
                        MetricKind::Gauge,
                    );
                    self.obs.counter_add_h(dispatched, 1);
                    self.obs
                        .gauge_set_h(outstanding, f64::from(self.backends[i].outstanding));
                }
                Some(i)
            }
            _ => {
                self.dropped += 1;
                if self.obs.is_enabled() {
                    self.obs.record(
                        now,
                        Event::RequestFailed {
                            service: self.service.0,
                            vsn: 0,
                        },
                    );
                    let dropped = Self::handle(
                        &self.obs,
                        &mut self.dropped_h,
                        "dropped",
                        Labels::one("service", self.service.0),
                        MetricKind::Counter,
                    );
                    self.obs.counter_add_h(dropped, 1);
                }
                None
            }
        }
    }

    /// Record a completed request on the backend serving `vsn` with the
    /// observed response time. A no-op when the backend has since left
    /// the rotation (`remove_backend` raced the response).
    pub fn complete(&mut self, vsn: VsnId, response_time: SimDuration, now: SimTime) {
        let Some(idx) = self.index_of(vsn) else {
            return;
        };
        let b = &mut self.backends[idx];
        if b.outstanding > 0 {
            b.outstanding -= 1;
            self.total_outstanding -= 1;
        }
        b.served += 1;
        self.total_served += 1;
        let rt = response_time.as_secs_f64();
        b.ewma_response = if b.served == 1 {
            rt
        } else {
            (1.0 - self.ewma_alpha) * b.ewma_response + self.ewma_alpha * rt
        };
        b.response_stats.record(rt);
        self.views[idx].outstanding = b.outstanding;
        self.views[idx].ewma_response = b.ewma_response;
        self.note_queue_depth();
        if self.obs.is_enabled() {
            let labels = self.labels(idx);
            let outstanding_now = self.backends[idx].outstanding;
            self.obs.record(
                now,
                Event::RequestCompleted {
                    service: self.service.0,
                    vsn: self.backends[idx].vsn.0,
                },
            );
            let h = &mut self.handles[idx];
            let served = Self::handle(
                &self.obs,
                &mut h.served,
                "served",
                labels,
                MetricKind::Counter,
            );
            let outstanding = Self::handle(
                &self.obs,
                &mut h.outstanding,
                "outstanding",
                labels,
                MetricKind::Gauge,
            );
            let response = Self::handle(
                &self.obs,
                &mut h.response_time,
                "response_time",
                labels,
                MetricKind::Histogram,
            );
            self.obs.counter_add_h(served, 1);
            self.obs
                .gauge_set_h(outstanding, f64::from(outstanding_now));
            self.obs
                .histogram_record_h(response, response_time.as_nanos());
        }
    }

    /// A failed request (backend crashed mid-flight): decrement
    /// in-flight without recording a completion. A no-op when the
    /// backend has since been removed.
    pub fn abort(&mut self, vsn: VsnId, now: SimTime) {
        let Some(idx) = self.index_of(vsn) else {
            return;
        };
        let b = &mut self.backends[idx];
        if b.outstanding > 0 {
            b.outstanding -= 1;
            self.total_outstanding -= 1;
        }
        self.views[idx].outstanding = b.outstanding;
        self.note_queue_depth();
        if self.obs.is_enabled() {
            let labels = self.labels(idx);
            let outstanding_now = self.backends[idx].outstanding;
            self.obs.record(
                now,
                Event::RequestFailed {
                    service: self.service.0,
                    vsn: self.backends[idx].vsn.0,
                },
            );
            let h = &mut self.handles[idx];
            let aborted = Self::handle(
                &self.obs,
                &mut h.aborted,
                "aborted",
                labels,
                MetricKind::Counter,
            );
            let outstanding = Self::handle(
                &self.obs,
                &mut h.outstanding,
                "outstanding",
                labels,
                MetricKind::Gauge,
            );
            self.obs.counter_add_h(aborted, 1);
            self.obs
                .gauge_set_h(outstanding, f64::from(outstanding_now));
        }
    }

    /// Backend runtime states.
    pub fn backends(&self) -> &[BackendRuntime] {
        &self.backends
    }

    /// Backend index by VSN. O(log n) over the sorted VSN index.
    pub fn index_of(&self, vsn: VsnId) -> Option<usize> {
        let at = self.by_vsn.binary_search_by_key(&vsn, |&(v, _)| v).ok()?;
        Some(self.by_vsn[at].1 as usize)
    }

    /// Requests dropped (no backend available).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Capacity (machine instances) currently healthy and in rotation.
    /// O(1): maintained incrementally by every backend mutation.
    pub fn healthy_capacity(&self) -> u32 {
        self.healthy_capacity
    }

    /// Requests currently in flight across all backends. O(1).
    pub fn total_outstanding(&self) -> u32 {
        self.total_outstanding
    }

    /// High-water mark of [`ServiceSwitch::total_outstanding`] over the
    /// switch's lifetime.
    pub fn peak_outstanding(&self) -> u32 {
        self.peak_outstanding
    }

    /// Requests completed across all backends. O(1).
    pub fn total_served(&self) -> u64 {
        self.total_served
    }

    /// Requests served per backend.
    pub fn served_counts(&self) -> Vec<u64> {
        self.backends.iter().map(|b| b.served).collect()
    }

    /// Mean response time per backend, seconds.
    pub fn mean_responses(&self) -> Vec<f64> {
        self.backends
            .iter()
            .map(|b| b.response_stats.mean())
            .collect()
    }

    /// Recompute the view cache and aggregates from scratch and panic on
    /// any divergence from the incrementally maintained state. This is
    /// the oracle the differential tests drive after every random op.
    #[doc(hidden)]
    pub fn assert_cache_coherent(&self) {
        assert_eq!(self.views.len(), self.backends.len(), "view cache length");
        for (i, b) in self.backends.iter().enumerate() {
            assert_eq!(self.views[i], b.view(), "view cache drift at {i}");
        }
        let healthy: u32 = self
            .backends
            .iter()
            .filter(|b| b.healthy)
            .map(|b| b.capacity)
            .sum();
        assert_eq!(self.healthy_capacity, healthy, "healthy_capacity drift");
        let outstanding: u32 = self.backends.iter().map(|b| b.outstanding).sum();
        assert_eq!(self.total_outstanding, outstanding, "outstanding drift");
        let served: u64 = self.backends.iter().map(|b| b.served).sum();
        assert_eq!(self.total_served, served, "served drift");
        let mut expect: Vec<(VsnId, u32)> = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| (b.vsn, i as u32))
            .collect();
        expect.sort_unstable_by_key(|&(v, _)| v);
        assert_eq!(self.by_vsn, expect, "by_vsn index drift");
    }
}

impl std::fmt::Debug for ServiceSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceSwitch")
            .field("service", &self.service)
            .field("policy", &self.policy.name())
            .field("backends", &self.backends.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{IllBehaved, LeastConnections};

    fn switch_2_1() -> ServiceSwitch {
        let mut s = ServiceSwitch::new(ServiceId(1), VsnId(10));
        s.add_backend(VsnId(10), "128.10.9.125".parse().unwrap(), 8080, 2);
        s.add_backend(VsnId(11), "128.10.9.126".parse().unwrap(), 8080, 1);
        s
    }

    /// Route and return the chosen backend's VSN.
    fn route_vsn(s: &mut ServiceSwitch) -> Option<VsnId> {
        let i = s.route(SimTime::ZERO)?;
        Some(s.backends()[i].vsn)
    }

    #[test]
    fn default_policy_is_wrr_and_config_matches_table3() {
        let s = switch_2_1();
        assert_eq!(s.policy_name(), "weighted-round-robin");
        assert_eq!(
            s.config().to_string(),
            "BackEnd 128.10.9.125 8080 2\nBackEnd 128.10.9.126 8080 1\n"
        );
    }

    #[test]
    fn routing_respects_2_to_1() {
        let mut s = switch_2_1();
        for _ in 0..300 {
            let v = route_vsn(&mut s).unwrap();
            s.complete(v, SimDuration::from_millis(10), SimTime::ZERO);
        }
        assert_eq!(s.served_counts(), vec![200, 100]);
        assert_eq!(s.total_served(), 300);
        assert_eq!(s.dropped(), 0);
        s.assert_cache_coherent();
    }

    #[test]
    fn outstanding_and_completion_accounting() {
        let mut s = switch_2_1();
        let a = route_vsn(&mut s).unwrap();
        let b = route_vsn(&mut s).unwrap();
        assert_eq!(s.total_outstanding(), 2);
        s.complete(a, SimDuration::from_millis(100), SimTime::ZERO);
        s.abort(b, SimTime::ZERO);
        assert_eq!(s.total_outstanding(), 0);
        let total_served: u64 = s.served_counts().iter().sum();
        assert_eq!(total_served, 1, "aborts are not completions");
        s.assert_cache_coherent();
    }

    #[test]
    fn response_stats_accumulate() {
        let mut s = switch_2_1();
        for ms in [10u64, 20, 30] {
            let i = s.index_of(VsnId(10)).unwrap();
            s.backends()[i].view(); // no-op, exercise view
            s.route(SimTime::ZERO);
            s.complete(VsnId(10), SimDuration::from_millis(ms), SimTime::ZERO);
        }
        let means = s.mean_responses();
        assert!((means[0] - 0.020).abs() < 1e-9);
        assert!(s.backends()[0].ewma_response > 0.0);
    }

    #[test]
    fn health_routing() {
        let mut s = switch_2_1();
        s.set_health(VsnId(10), false);
        assert_eq!(s.healthy_capacity(), 1);
        for _ in 0..10 {
            let v = route_vsn(&mut s).unwrap();
            assert_eq!(v, VsnId(11));
            s.complete(v, SimDuration::from_millis(1), SimTime::ZERO);
        }
        s.set_health(VsnId(11), false);
        assert_eq!(s.healthy_capacity(), 0);
        assert_eq!(s.route(SimTime::ZERO), None);
        assert_eq!(s.dropped(), 1);
        assert!(!s.set_health(VsnId(99), true));
        s.assert_cache_coherent();
    }

    #[test]
    fn resize_updates_config_and_routing() {
        let mut s = switch_2_1();
        assert!(s.set_capacity(VsnId(11), 2));
        assert!(s.config().to_string().contains("128.10.9.126 8080 2"));
        assert_eq!(s.healthy_capacity(), 4);
        for _ in 0..100 {
            let v = route_vsn(&mut s).unwrap();
            s.complete(v, SimDuration::from_millis(1), SimTime::ZERO);
        }
        assert_eq!(s.served_counts(), vec![50, 50]);
        // Remove a node entirely.
        assert!(s.remove_backend(VsnId(10)));
        assert!(!s.remove_backend(VsnId(10)));
        assert_eq!(s.config().len(), 1);
        assert_eq!(s.healthy_capacity(), 2);
        assert_eq!(s.route(SimTime::ZERO), Some(0));
        s.assert_cache_coherent();
    }

    #[test]
    fn policy_replacement() {
        let mut s = switch_2_1();
        s.replace_policy(Box::new(LeastConnections::new()));
        assert_eq!(s.policy_name(), "least-connections");
        // An ill-behaved replacement still routes (to backend 0 always).
        s.replace_policy(Box::new(IllBehaved::new()));
        s.set_health(VsnId(10), false);
        let i = s.route(SimTime::ZERO).unwrap();
        assert_eq!(i, 0, "ill-behaved policy dumps on the dead node");
    }

    #[test]
    fn out_of_range_policy_pick_counts_as_drop() {
        struct Broken;
        impl crate::policy::SwitchPolicy for Broken {
            fn pick(&mut self, _b: &[BackendView]) -> Option<usize> {
                Some(999)
            }
            fn name(&self) -> &'static str {
                "broken"
            }
        }
        let mut s = switch_2_1();
        s.replace_policy(Box::new(Broken));
        assert_eq!(s.route(SimTime::ZERO), None);
        assert_eq!(s.dropped(), 1);
    }

    // --- coverage gaps: the corners the scale refactor must not bend ---

    #[test]
    fn abort_on_last_outstanding_request_reaches_zero_and_stays_there() {
        let mut s = switch_2_1();
        let v = route_vsn(&mut s).unwrap();
        assert_eq!(s.total_outstanding(), 1);
        s.abort(v, SimTime::ZERO);
        assert_eq!(s.total_outstanding(), 0);
        // A duplicate abort for the same request must not underflow.
        s.abort(v, SimTime::ZERO);
        assert_eq!(s.total_outstanding(), 0);
        assert_eq!(s.backends()[s.index_of(v).unwrap()].outstanding, 0);
        s.assert_cache_coherent();
    }

    #[test]
    fn remove_backend_with_requests_outstanding_keeps_books_straight() {
        let mut s = switch_2_1();
        // Load both backends.
        let mut picked = Vec::new();
        for _ in 0..3 {
            picked.push(route_vsn(&mut s).unwrap());
        }
        assert_eq!(s.total_outstanding(), 3);
        // Remove the heavy backend while its requests are in flight: its
        // outstanding count leaves the aggregates with it.
        let gone = VsnId(10);
        let in_flight_on_gone = picked.iter().filter(|&&v| v == gone).count() as u32;
        assert!(s.remove_backend(gone));
        assert_eq!(s.total_outstanding(), 3 - in_flight_on_gone);
        s.assert_cache_coherent();
        // The survivor still routes.
        assert!(route_vsn(&mut s).is_some());
    }

    #[test]
    fn complete_after_remove_is_a_no_op() {
        // Regression: with index-keyed accounting, completing a request
        // routed to a removed backend debited whichever backend shifted
        // into its slot. Keyed by VsnId it must be a no-op.
        let mut s = switch_2_1();
        let v10 = route_vsn(&mut s).unwrap();
        assert_eq!(v10, VsnId(10), "WRR 2:1 opens on the heavy backend");
        let before_served = s.total_served();
        assert!(s.remove_backend(VsnId(10)));
        let survivor_outstanding = s.backends()[0].outstanding;
        s.complete(VsnId(10), SimDuration::from_millis(5), SimTime::ZERO);
        s.abort(VsnId(10), SimTime::ZERO);
        assert_eq!(s.total_served(), before_served, "no phantom completion");
        assert_eq!(
            s.backends()[0].outstanding,
            survivor_outstanding,
            "survivor must not be debited for the removed backend's request"
        );
        s.assert_cache_coherent();
    }

    #[test]
    fn set_capacity_zero_takes_backend_out_of_wrr_rotation() {
        let mut s = switch_2_1();
        assert!(s.set_capacity(VsnId(10), 0));
        assert_eq!(s.healthy_capacity(), 1);
        for _ in 0..10 {
            let v = route_vsn(&mut s).unwrap();
            assert_eq!(v, VsnId(11), "zero-capacity backend gets no traffic");
            s.complete(v, SimDuration::from_millis(1), SimTime::ZERO);
        }
        // Both at zero: nothing routes, drops count.
        assert!(s.set_capacity(VsnId(11), 0));
        assert_eq!(s.route(SimTime::ZERO), None);
        assert_eq!(s.dropped(), 1);
        s.assert_cache_coherent();
    }

    #[test]
    fn policy_replacement_mid_flight_preserves_outstanding_accounting() {
        let mut s = switch_2_1();
        let a = route_vsn(&mut s).unwrap();
        let b = route_vsn(&mut s).unwrap();
        assert_eq!(s.total_outstanding(), 2);
        // Swap the policy while both requests are in flight.
        s.replace_policy(Box::new(LeastConnections::new()));
        // In-flight work completes against the same books.
        s.complete(a, SimDuration::from_millis(2), SimTime::ZERO);
        s.complete(b, SimDuration::from_millis(2), SimTime::ZERO);
        assert_eq!(s.total_outstanding(), 0);
        assert_eq!(s.total_served(), 2);
        // And the new policy routes with the view cache intact.
        assert!(route_vsn(&mut s).is_some());
        s.assert_cache_coherent();
    }
}
