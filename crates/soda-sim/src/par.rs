//! Conservative epoch-synchronized parallel DES over placement cells.
//!
//! The engine's determinism contract is a `(time, seq)` total order of
//! events over one mutable world — which is exactly why a single run
//! could never be parallelized by threading the engine itself (events
//! are non-`Send` closures over shared state; work-stealing would
//! reorder same-tick handlers). This module parallelizes *around* that
//! contract instead, with the classic conservative-PDES recipe:
//!
//! * **Partitioned state.** The world is split into `C` *cells*, each a
//!   complete, self-contained sub-world owned by exactly one
//!   [`Engine`]: its own timer wheel, its own RNG stream, its own
//!   observability log. Cells share no memory — the only coupling is
//!   explicit messages.
//! * **Lookahead.** Every cross-cell interaction costs at least the
//!   minimum inter-cell latency `L` (the 500 µs `ShardMsg` LAN delay in
//!   the SODA world). A message sent at time `s` cannot take effect
//!   before `s + L`, so each cell can safely run `L` ahead of the
//!   others without ever receiving an event from its past.
//! * **Epoch barriers.** Cells execute in lock-step *epochs*: every
//!   cell runs all its events with `t < E_k`, parks at a barrier, the
//!   buffered cross-cell messages are merged in deterministic
//!   `(time, sender cell, sender seq)` order and handed to their
//!   destination queues, the next bound `E_{k+1}` is derived, and the
//!   cells resume. The merge order — not thread arrival order — decides
//!   same-tick FIFO ties, so the trajectory is bit-identical for any
//!   thread count, including one.
//! * **Promises.** A naive bound (`min next event + L`) would advance
//!   the run only `L` per epoch. Each cell therefore *promises* the
//!   earliest time it may send next ([`CellPort::set_promise`]); the
//!   bound becomes `min over cells of max(next event, promise) + L`,
//!   which lets compute-heavy stretches between send points run in one
//!   epoch. Promises are an optimization, never a safety argument: the
//!   merge asserts every message lands at or after the bound it was
//!   collected under, so a promise violation aborts the run loudly
//!   instead of silently reordering it.
//!
//! * **Epoch widths.** [`EpochPolicy::Fixed`] derives one global bound
//!   per epoch — the straggler's own promise caps everyone, including
//!   the straggler itself. [`EpochPolicy::Adaptive`] derives a
//!   *per-cell* bound from the other cells' reports only: cell `j` may
//!   run to `min over i ≠ j of max(next_i, promise_i) + L`. Under
//!   skewed load this lets the busy cell drain long quiet stretches of
//!   the others in one epoch instead of one barrier per send stride
//!   (see `exp_parallel skew`). Safety is unchanged — any message from
//!   cell `i` is sent at `s ≥ max(next_i, promise_i)` and lands at
//!   `s + L ≥ bound_j + L = end_j` for every receiver `j ≠ i` — and so
//!   is determinism, because the merge order never depends on the
//!   bounds. The two policies are separately deterministic but not
//!   bit-identical to each other (epoch boundaries shift which engine
//!   sequence numbers same-time cross-cell arrivals get), so the
//!   differential gates compare Serial vs Parallel *within* a policy.
//!
//! [`EngineKind::Serial`] drives the *same* epoch loop on the caller
//! thread; `Parallel(n)` drives it on `n` scoped threads. Serial is the
//! oracle: the differential gates (tier 1 and CI) require
//! `Parallel(n) ≡ Serial` bit-for-bit on trajectory and event-log
//! fingerprints for n ∈ {1, 2, 4, 8}.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use crate::engine::{Ctx, Engine};
use crate::time::{SimDuration, SimTime};

/// How a multi-cell simulation executes: the serial oracle, or `n`
/// worker threads in epoch lock-step. Mirrors `QueueKind` and
/// `ControlPlaneKind`: the default is the oracle, and the differential
/// suite holds every other variant bit-identical to it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// One thread runs every cell through the same epoch protocol (the
    /// oracle the parallel gates compare against).
    #[default]
    Serial,
    /// `n` scoped worker threads, cells striped across them.
    /// `Parallel(0)` and `Parallel(1)` both mean one worker thread.
    Parallel(u32),
}

impl EngineKind {
    /// Number of worker threads this kind implies (always at least 1).
    pub fn threads(&self) -> u32 {
        match self {
            EngineKind::Serial => 1,
            EngineKind::Parallel(n) => (*n).max(1),
        }
    }

    /// Stable label for bench records and logs.
    pub fn label(&self) -> String {
        match self {
            EngineKind::Serial => "serial".to_string(),
            EngineKind::Parallel(n) => format!("parallel-{}", (*n).max(1)),
        }
    }
}

/// How the epoch runner derives each epoch's execution bound(s). The
/// default is the fixed global bound every prior PR shipped; `Adaptive`
/// widens per cell. Both are deterministic for any thread count, but
/// they are distinct trajectories — gate Serial against Parallel within
/// one policy, never across policies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EpochPolicy {
    /// One global bound per epoch:
    /// `min over all cells of max(next, promise) + L`.
    #[default]
    Fixed,
    /// Per-cell bounds excluding the cell's own report:
    /// `end_j = min over i ≠ j of max(next_i, promise_i) + L`. A cell
    /// whose peers are all quiet (`u64::MAX`) runs straight to the
    /// horizon in one epoch.
    Adaptive,
}

impl EpochPolicy {
    /// Stable label for bench records and logs.
    pub fn label(&self) -> &'static str {
        match self {
            EpochPolicy::Fixed => "fixed",
            EpochPolicy::Adaptive => "adaptive",
        }
    }
}

/// The handler type a cross-cell event runs on arrival. Unlike local
/// events it must be `Send`: it is created in the sender's cell and
/// executed in the receiver's.
pub type RemoteFn<S> = Box<dyn FnOnce(&mut S, &mut Ctx<S>) + Send>;

/// One buffered cross-cell event, in flight between epoch barriers.
pub struct RemoteEvent<S> {
    /// Destination cell index.
    pub to: usize,
    /// Absolute delivery time (send time + delay, delay ≥ lookahead).
    pub at: SimTime,
    /// Sender's per-port sequence number; with the sender cell index it
    /// makes the barrier merge order total and deterministic.
    pub seq: u64,
    /// Profiling kind tag the event is scheduled under on arrival.
    pub kind: &'static str,
    /// The handler to run in the destination cell.
    pub run: RemoteFn<S>,
}

/// A cell's endpoint of the cross-cell message fabric. Owned by the
/// cell world (via [`CellWorld::port`]); event handlers send through it
/// and the epoch runner drains it at each barrier.
pub struct CellPort<S> {
    cell: usize,
    cells: usize,
    lookahead: SimDuration,
    /// Lower bound on the time of this cell's next `send`;
    /// `SimTime::MAX` means "will never send again". See
    /// [`CellPort::set_promise`].
    promise: SimTime,
    seq: u64,
    outbox: Vec<RemoteEvent<S>>,
    /// Messages sent over the whole run (stat).
    pub sent: u64,
}

impl<S> Default for CellPort<S> {
    /// A port for a world outside any parallel harness: single cell,
    /// promises nothing because it can never send.
    fn default() -> Self {
        CellPort {
            cell: 0,
            cells: 1,
            lookahead: SimDuration::ZERO,
            promise: SimTime::MAX,
            seq: 0,
            outbox: Vec::new(),
            sent: 0,
        }
    }
}

impl<S> CellPort<S> {
    /// Configure this port as cell `cell` of `cells` with the given
    /// lookahead. Called by the cell builder before the run starts.
    pub fn configure(&mut self, cell: usize, cells: usize, lookahead: SimDuration) {
        let cells = cells.max(1);
        assert!(cell < cells, "cell index out of range");
        self.cell = cell;
        self.cells = cells;
        self.lookahead = lookahead;
    }

    /// This port's cell index.
    pub fn cell(&self) -> usize {
        self.cell
    }

    /// Total cells in the run.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The run's lookahead (minimum cross-cell delay).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// True when this is the only cell (no cross-cell traffic possible).
    pub fn is_solo(&self) -> bool {
        self.cells <= 1
    }

    /// Declare that this cell will not `send` before `at` (use
    /// `SimTime::MAX` for "never again"). The epoch runner uses the
    /// promise to extend epochs past quiet stretches; sending earlier
    /// than promised is a protocol violation the barrier merge detects.
    pub fn set_promise(&mut self, at: SimTime) {
        self.promise = at;
    }

    /// The current promise.
    pub fn promise(&self) -> SimTime {
        self.promise
    }

    /// Send `f` to run in cell `to` at `now + delay`. The delay must
    /// cover the lookahead — that is the entire safety argument of the
    /// conservative scheme — and the send must honor the current
    /// promise. Buffered until the next epoch barrier.
    pub fn send<F>(&mut self, now: SimTime, to: usize, delay: SimDuration, kind: &'static str, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + Send + 'static,
    {
        assert!(to < self.cells, "destination cell out of range");
        assert!(to != self.cell, "cross-cell send to self; schedule locally");
        assert!(
            delay >= self.lookahead,
            "cross-cell delay {delay:?} under the lookahead {:?}",
            self.lookahead
        );
        assert!(
            self.promise <= now,
            "send at {now:?} breaks the cell's promise ({:?})",
            self.promise
        );
        self.seq += 1;
        self.sent += 1;
        self.outbox.push(RemoteEvent {
            to,
            at: now + delay,
            seq: self.seq,
            kind,
            run: Box::new(f),
        });
    }
}

/// A world that can participate in a multi-cell run: it owns a
/// [`CellPort`] the epoch runner drains at barriers.
pub trait CellWorld: Sized {
    /// The world's cross-cell port.
    fn port(&mut self) -> &mut CellPort<Self>;
}

/// Aggregate statistics of one epoch-synchronized run.
#[derive(Clone, Debug, Default)]
pub struct EpochStats {
    /// Worker threads the run used.
    pub threads: u32,
    /// Epoch barriers crossed.
    pub epochs: u64,
    /// Total wall-clock all workers spent parked at barriers, seconds.
    /// An idle-worker measure: at perfect balance it approaches the
    /// merge cost alone.
    pub barrier_wait_secs: f64,
    /// Barrier wait split by worker (index = worker; cell `k` runs on
    /// worker `k % threads`). Sums to `barrier_wait_secs`. The skew
    /// experiment reads this to show *who* is idling.
    pub barrier_wait_by_worker: Vec<f64>,
    /// Cross-cell events delivered.
    pub remote_msgs: u64,
}

/// Sentinel epoch bound meaning "run is over".
const DONE: u64 = u64::MAX;

/// Everything the workers share. `S` never crosses threads — only
/// `RemoteEvent<S>` does, and it is `Send` for any `S` because its
/// payload closure is `Send` by construction.
struct Coord<S> {
    barrier: Barrier,
    /// Run-over control word: [`DONE`] once finished, otherwise the
    /// minimum of this epoch's per-cell bounds (informational).
    epoch_end: AtomicU64,
    /// Per-cell execution bounds in nanoseconds, written by the leader
    /// each merge. Under [`EpochPolicy::Fixed`] every slot holds the
    /// same value; under `Adaptive` they differ.
    ends: Vec<AtomicU64>,
    /// Outbox drain target: `(from cell, event)` pairs, collected in
    /// nondeterministic thread order and sorted by the leader.
    msgs: Mutex<Vec<(usize, RemoteEvent<S>)>>,
    /// Per-cell `(next event time, promise)` in nanoseconds, reported
    /// each epoch (`u64::MAX` = none / never).
    reports: Mutex<Vec<(u64, u64)>>,
    /// Per-cell delivery queues the leader fills in merge order.
    inboxes: Mutex<Vec<Vec<RemoteEvent<S>>>>,
    /// First protocol violation or worker panic, if any.
    fail: Mutex<Option<String>>,
    epochs: AtomicU64,
    /// Barrier park time per worker, nanoseconds.
    barrier_ns: Vec<AtomicU64>,
    delivered: AtomicU64,
}

/// Run `builders.len()` cells to `horizon` under `kind`, then reduce
/// each cell's engine with `finish`. Returns the per-cell results (cell
/// order) and the run's epoch statistics.
///
/// Each builder constructs its cell's engine *on the worker thread that
/// will own it* — engines never cross threads — so builders must be
/// `Send` and should capture only plain configuration. The built
/// world's port must already be configured as `(cell, cells,
/// lookahead)` (see [`CellPort::configure`]).
///
/// Semantics are those of `Engine::run_until(horizon)` per cell: every
/// event with `t <= horizon` executes, later events stay queued, and
/// each clock ends at `horizon`. A cell that calls
/// `Ctx::request_stop` freezes for the remainder of the run.
///
/// Runs under [`EpochPolicy::Fixed`]; [`run_cells_with`] exposes the
/// policy knob.
pub fn run_cells<S, R, B, F>(
    kind: EngineKind,
    lookahead: SimDuration,
    horizon: SimTime,
    builders: Vec<B>,
    finish: F,
) -> (Vec<R>, EpochStats)
where
    S: CellWorld + 'static,
    R: Send,
    B: FnOnce(usize) -> Engine<S> + Send,
    F: Fn(usize, Engine<S>) -> R + Sync,
{
    run_cells_with(
        kind,
        EpochPolicy::Fixed,
        lookahead,
        horizon,
        builders,
        finish,
    )
}

/// [`run_cells`] with an explicit [`EpochPolicy`].
pub fn run_cells_with<S, R, B, F>(
    kind: EngineKind,
    policy: EpochPolicy,
    lookahead: SimDuration,
    horizon: SimTime,
    builders: Vec<B>,
    finish: F,
) -> (Vec<R>, EpochStats)
where
    S: CellWorld + 'static,
    R: Send,
    B: FnOnce(usize) -> Engine<S> + Send,
    F: Fn(usize, Engine<S>) -> R + Sync,
{
    let cells = builders.len();
    assert!(cells > 0, "run_cells needs at least one cell");
    assert!(
        !lookahead.is_zero() || cells == 1,
        "multi-cell runs need a positive lookahead"
    );
    let threads = (kind.threads() as usize).min(cells);

    let coord = Coord::<S> {
        barrier: Barrier::new(threads),
        epoch_end: AtomicU64::new(0),
        ends: (0..cells).map(|_| AtomicU64::new(0)).collect(),
        msgs: Mutex::new(Vec::new()),
        reports: Mutex::new(vec![(u64::MAX, u64::MAX); cells]),
        inboxes: Mutex::new((0..cells).map(|_| Vec::new()).collect()),
        fail: Mutex::new(None),
        epochs: AtomicU64::new(0),
        barrier_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        delivered: AtomicU64::new(0),
    };
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..cells).map(|_| None).collect());

    // Stripe cells across workers: cell k runs on worker k % threads.
    let mut work: Vec<Vec<(usize, B)>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, b) in builders.into_iter().enumerate() {
        work[k % threads].push((k, b));
    }

    match kind {
        EngineKind::Serial => {
            let mine = work.pop().expect("one worker");
            worker(
                0, mine, cells, policy, lookahead, horizon, &coord, &finish, &results,
            );
        }
        EngineKind::Parallel(_) => {
            std::thread::scope(|scope| {
                let mut others = work.split_off(1);
                for (w, mine) in others.drain(..).enumerate() {
                    let (coord, finish, results) = (&coord, &finish, &results);
                    scope.spawn(move || {
                        worker(
                            w + 1,
                            mine,
                            cells,
                            policy,
                            lookahead,
                            horizon,
                            coord,
                            finish,
                            results,
                        );
                    });
                }
                let mine = work.pop().expect("leader's share");
                worker(
                    0, mine, cells, policy, lookahead, horizon, &coord, &finish, &results,
                );
            });
        }
    }

    if let Some(msg) = coord.fail.lock().expect("fail lock").take() {
        panic!("parallel run failed: {msg}");
    }
    let out: Vec<R> = results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .enumerate()
        .map(|(k, r)| r.unwrap_or_else(|| panic!("cell {k} produced no result")))
        .collect();
    let by_worker: Vec<f64> = coord
        .barrier_ns
        .iter()
        .map(|ns| ns.load(Ordering::Relaxed) as f64 / 1e9)
        .collect();
    let stats = EpochStats {
        threads: threads as u32,
        epochs: coord.epochs.load(Ordering::Relaxed),
        barrier_wait_secs: by_worker.iter().sum(),
        barrier_wait_by_worker: by_worker,
        remote_msgs: coord.delivered.load(Ordering::Relaxed),
    };
    (out, stats)
}

/// Record a failure (first one wins) without unwinding across the
/// barrier protocol.
fn record_fail<S>(coord: &Coord<S>, msg: String) {
    let mut fail = coord.fail.lock().expect("fail lock");
    fail.get_or_insert(msg);
}

fn describe_panic(e: Box<dyn std::any::Any + Send>) -> String {
    e.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| e.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// One worker's whole life: build owned cells, follow the epoch
/// protocol until the leader declares the run over, then finish each
/// cell. Worker 0 doubles as the *leader*: between the two barriers of
/// an epoch it alone merges messages and derives the next bound, so the
/// merge is single-threaded and deterministic by construction.
#[allow(clippy::too_many_arguments)]
fn worker<S, R, B, F>(
    me: usize,
    mine: Vec<(usize, B)>,
    cells: usize,
    policy: EpochPolicy,
    lookahead: SimDuration,
    horizon: SimTime,
    coord: &Coord<S>,
    finish: &F,
    results: &Mutex<Vec<Option<R>>>,
) where
    S: CellWorld + 'static,
    R: Send,
    B: FnOnce(usize) -> Engine<S> + Send,
    F: Fn(usize, Engine<S>) -> R + Sync,
{
    // Execution bound covering the inclusive `run_until(horizon)`
    // semantics: `run_events_before(horizon + 1 ns)` executes events at
    // exactly `horizon` and leaves later ones queued.
    let hplus = SimTime::from_nanos(horizon.as_nanos().saturating_add(1));

    // Build the cells this worker owns. A panicking builder must not
    // strand the other workers at the barrier, so it is caught, the
    // run is flagged, and this worker keeps the protocol alive with an
    // empty cell set until the leader shuts the run down.
    let mut engines: Vec<(usize, Engine<S>)> = Vec::with_capacity(mine.len());
    for (k, build) in mine {
        match panic::catch_unwind(AssertUnwindSafe(|| build(k))) {
            Ok(mut e) => {
                let port = e.state_mut().port();
                assert_eq!(port.cell(), k, "cell built with the wrong port index");
                assert_eq!(port.cells(), cells, "cell built with the wrong cell count");
                assert_eq!(
                    port.lookahead(),
                    lookahead,
                    "cell built with the wrong lookahead"
                );
                engines.push((k, e));
            }
            Err(e) => record_fail(
                coord,
                format!("cell {k} builder panicked: {}", describe_panic(e)),
            ),
        }
    }

    // The per-cell bounds the previous run phase executed under (0
    // before the first): newly collected messages must land at or
    // after the *receiver's* previous bound, and the leader checks
    // exactly that before merging. Leader-local — only worker 0 reads
    // it.
    let mut prev_ends = vec![0u64; cells];
    let mut delivered_here = 0u64;
    loop {
        // -- report: drain outboxes, publish next-event + promise.
        {
            let mut msgs = coord.msgs.lock().expect("msgs lock");
            let mut reports = coord.reports.lock().expect("reports lock");
            for (k, e) in &mut engines {
                let port = e.state_mut().port();
                let promise = port.promise().as_nanos();
                for ev in port.outbox.drain(..) {
                    msgs.push((*k, ev));
                }
                let next = if e.is_stopped() {
                    u64::MAX
                } else {
                    e.peek_time().map_or(u64::MAX, |t| t.as_nanos())
                };
                reports[*k] = (next, promise);
            }
        }
        barrier_wait(coord, me);

        // -- merge (leader only): deterministic order, next bound(s).
        if me == 0 {
            let failed = coord.fail.lock().expect("fail lock").is_some();
            let mut msgs = std::mem::take(&mut *coord.msgs.lock().expect("msgs lock"));
            let mut reports = coord.reports.lock().expect("reports lock");
            // Total, thread-order-independent merge key.
            msgs.sort_by_key(|(from, ev)| (ev.at, *from, ev.seq));
            for (from, ev) in &msgs {
                if ev.at.as_nanos() < prev_ends[ev.to] {
                    record_fail(
                        coord,
                        format!(
                            "cell {from} message for cell {} at {:?} lands before the \
                             receiver's epoch bound {:?} — promise/lookahead discipline \
                             broken",
                            ev.to,
                            ev.at,
                            SimTime::from_nanos(prev_ends[ev.to])
                        ),
                    );
                }
                let (next, _) = reports[ev.to];
                reports[ev.to].0 = next.min(ev.at.as_nanos());
            }
            let global_min = reports
                .iter()
                .map(|&(next, _)| next)
                .min()
                .unwrap_or(u64::MAX);
            let run_failed = failed || coord.fail.lock().expect("fail lock").is_some();
            if run_failed || global_min > horizon.as_nanos() {
                coord.epoch_end.store(DONE, Ordering::SeqCst);
            } else {
                coord.epochs.fetch_add(1, Ordering::Relaxed);
                // `max(next, promise)`: a cell sends no earlier than
                // its promise, and cannot send at all without an event
                // to run.
                let cap = |bound: u64| {
                    bound
                        .saturating_add(lookahead.as_nanos())
                        .min(hplus.as_nanos())
                };
                match policy {
                    EpochPolicy::Fixed => {
                        let bound = reports
                            .iter()
                            .map(|&(next, promise)| next.max(promise))
                            .min()
                            .unwrap_or(u64::MAX);
                        let end = cap(bound);
                        for (j, slot) in coord.ends.iter().enumerate() {
                            slot.store(end, Ordering::SeqCst);
                            prev_ends[j] = end;
                        }
                        coord.epoch_end.store(end, Ordering::SeqCst);
                    }
                    EpochPolicy::Adaptive => {
                        // Cell j's bound comes from its peers only: a
                        // message into j is sent by some i ≠ j at
                        // `s ≥ max(next_i, promise_i) ≥ bound_j`, so it
                        // lands at `s + L ≥ end_j`. j's own report
                        // never constrains j.
                        let mut min_end = u64::MAX;
                        for (j, slot) in coord.ends.iter().enumerate() {
                            let bound = reports
                                .iter()
                                .enumerate()
                                .filter(|&(i, _)| i != j)
                                .map(|(_, &(next, promise))| next.max(promise))
                                .min()
                                .unwrap_or(u64::MAX);
                            let end = cap(bound);
                            slot.store(end, Ordering::SeqCst);
                            prev_ends[j] = end;
                            min_end = min_end.min(end);
                        }
                        coord.epoch_end.store(min_end, Ordering::SeqCst);
                    }
                }
            }
            if !msgs.is_empty() {
                coord
                    .delivered
                    .fetch_add(msgs.len() as u64, Ordering::Relaxed);
                let mut inboxes = coord.inboxes.lock().expect("inboxes lock");
                for (_, ev) in msgs {
                    inboxes[ev.to].push(ev);
                }
            }
        }
        barrier_wait(coord, me);

        // -- deliver: push merged messages, in merge order, into the
        // owning queues. Also done when the run is over, so terminal
        // state matches the serial engine's "later events stay queued".
        {
            let mut inboxes = coord.inboxes.lock().expect("inboxes lock");
            for (k, e) in &mut engines {
                for ev in std::mem::take(&mut inboxes[*k]) {
                    let RemoteEvent { at, kind, run, .. } = ev;
                    delivered_here += 1;
                    e.schedule_at_as(kind, at, move |s: &mut S, ctx: &mut Ctx<S>| run(s, ctx));
                }
            }
        }
        if coord.epoch_end.load(Ordering::SeqCst) == DONE {
            break;
        }

        // -- run: execute the epoch `[.., ends[k])` on every owned
        // cell, each under its own bound.
        for (k, e) in &mut engines {
            let bound = SimTime::from_nanos(coord.ends[*k].load(Ordering::SeqCst));
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| e.run_events_before(bound))) {
                record_fail(coord, format!("cell {k} panicked: {}", describe_panic(p)));
            }
        }
    }
    let _ = delivered_here; // delivery is counted once, at the leader's merge

    if coord.fail.lock().expect("fail lock").is_none() {
        let mut out = Vec::with_capacity(engines.len());
        for (k, mut e) in engines {
            e.run_until(horizon);
            out.push((k, finish(k, e)));
        }
        let mut results = results.lock().expect("results lock");
        for (k, r) in out {
            results[k] = Some(r);
        }
    }
}

fn barrier_wait<S>(coord: &Coord<S>, me: usize) {
    let t0 = Instant::now();
    coord.barrier.wait();
    coord.barrier_ns[me].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal cell world: logs `(time ns, tag)` and can send tagged
    /// remote events. Promises are maintained as the exact minimum of
    /// the remaining planned send times.
    struct Toy {
        port: CellPort<Toy>,
        log: Vec<(u64, u32)>,
        pending_sends: Vec<u64>,
    }

    impl CellWorld for Toy {
        fn port(&mut self) -> &mut CellPort<Toy> {
            &mut self.port
        }
    }

    impl Toy {
        fn refresh_promise(&mut self) {
            let next = self
                .pending_sends
                .iter()
                .copied()
                .min()
                .map_or(SimTime::MAX, SimTime::from_nanos);
            self.port.set_promise(next);
        }
    }

    const L: SimDuration = SimDuration::from_nanos(500);

    /// Plan: per cell, local events at fixed times; some also send a
    /// remote event (tag + 100) to another cell after `delay`.
    #[derive(Clone)]
    struct Op {
        at: u64,
        tag: u32,
        send: Option<(usize, u64)>, // (to, delay ns)
    }

    fn build_cell(k: usize, cells: usize, plan: &[Op]) -> Engine<Toy> {
        let mut port = CellPort::default();
        port.configure(k, cells, L);
        let mut toy = Toy {
            port,
            log: Vec::new(),
            pending_sends: plan
                .iter()
                .filter(|o| o.send.is_some())
                .map(|o| o.at)
                .collect(),
        };
        toy.refresh_promise();
        let mut e = Engine::with_seed(toy, 7 + k as u64);
        for op in plan.iter().cloned() {
            e.schedule_at_as("op", SimTime::from_nanos(op.at), move |w: &mut Toy, ctx| {
                w.log.push((ctx.now().as_nanos(), op.tag));
                if let Some((to, delay)) = op.send {
                    let tag = op.tag + 100;
                    w.port.send(
                        ctx.now(),
                        to,
                        SimDuration::from_nanos(delay),
                        "remote",
                        move |w: &mut Toy, ctx| {
                            w.log.push((ctx.now().as_nanos(), tag));
                        },
                    );
                    let i = w
                        .pending_sends
                        .iter()
                        .position(|&t| t == op.at)
                        .expect("send was planned");
                    w.pending_sends.swap_remove(i);
                    w.refresh_promise();
                }
            });
        }
        e
    }

    fn run_plan(
        kind: EngineKind,
        plans: &[Vec<Op>],
        horizon: u64,
    ) -> (Vec<Vec<(u64, u32)>>, EpochStats) {
        run_plan_with(kind, EpochPolicy::Fixed, plans, horizon)
    }

    fn run_plan_with(
        kind: EngineKind,
        policy: EpochPolicy,
        plans: &[Vec<Op>],
        horizon: u64,
    ) -> (Vec<Vec<(u64, u32)>>, EpochStats) {
        let cells = plans.len();
        let builders: Vec<_> = plans
            .iter()
            .cloned()
            .map(|plan| move |k: usize| build_cell(k, cells, &plan))
            .collect();
        let (logs, stats) = run_cells_with(
            kind,
            policy,
            L,
            SimTime::from_nanos(horizon),
            builders,
            |_, e: Engine<Toy>| e.into_state().log,
        );
        (logs, stats)
    }

    fn two_cell_plan() -> Vec<Vec<Op>> {
        vec![
            vec![
                Op {
                    at: 100,
                    tag: 1,
                    send: Some((1, 500)),
                }, // lands exactly at 600: barrier edge
                Op {
                    at: 600,
                    tag: 2,
                    send: None,
                },
                Op {
                    at: 2_000,
                    tag: 3,
                    send: Some((1, 700)),
                },
            ],
            vec![
                Op {
                    at: 600,
                    tag: 11,
                    send: None,
                }, // ties with the arriving remote at 600
                Op {
                    at: 2_500,
                    tag: 12,
                    send: Some((0, 500)),
                },
            ],
        ]
    }

    #[test]
    fn serial_and_parallel_agree_on_a_cross_cell_schedule() {
        let plans = two_cell_plan();
        let (serial, sstats) = run_plan(EngineKind::Serial, &plans, 10_000);
        assert_eq!(sstats.threads, 1);
        for n in [1, 2, 4] {
            let (par, pstats) = run_plan(EngineKind::Parallel(n), &plans, 10_000);
            assert_eq!(par, serial, "Parallel({n}) diverged from Serial");
            assert_eq!(pstats.threads, n.min(2));
            assert_eq!(pstats.remote_msgs, 3);
        }
        // Cell 1: local tag 11 was queued before the remote (tag 101)
        // arriving at the same tick — merge order must preserve that
        // FIFO tie exactly as the serial oracle does.
        assert_eq!(
            serial[1],
            vec![(600, 11), (600, 101), (2_500, 12), (2_700, 103)]
        );
        assert_eq!(
            serial[0],
            vec![(100, 1), (600, 2), (2_000, 3), (3_000, 112)]
        );
    }

    #[test]
    fn solo_cell_runs_without_lookahead() {
        let plans = vec![vec![
            Op {
                at: 10,
                tag: 1,
                send: None,
            },
            Op {
                at: 20,
                tag: 2,
                send: None,
            },
        ]];
        let cells = plans.len();
        let builders: Vec<_> = plans
            .iter()
            .cloned()
            .map(|plan| {
                move |k: usize| {
                    let mut e = build_cell(k, cells, &plan);
                    e.state_mut().port.configure(0, 1, SimDuration::ZERO);
                    e
                }
            })
            .collect();
        let (logs, stats) = run_cells(
            EngineKind::Serial,
            SimDuration::ZERO,
            SimTime::from_nanos(100),
            builders,
            |_, e: Engine<Toy>| e.into_state().log,
        );
        assert_eq!(logs[0], vec![(10, 1), (20, 2)]);
        assert_eq!(stats.remote_msgs, 0);
    }

    #[test]
    fn events_after_horizon_stay_queued() {
        let plans = vec![
            vec![
                Op {
                    at: 100,
                    tag: 1,
                    send: None,
                },
                Op {
                    at: 9_000,
                    tag: 2,
                    send: None,
                },
            ],
            vec![Op {
                at: 200,
                tag: 11,
                send: None,
            }],
        ];
        let cells = plans.len();
        let builders: Vec<_> = plans
            .iter()
            .cloned()
            .map(|plan| move |k: usize| build_cell(k, cells, &plan))
            .collect();
        let (out, _) = run_cells(
            EngineKind::Parallel(2),
            L,
            SimTime::from_nanos(5_000),
            builders,
            |_, e: Engine<Toy>| (e.now(), e.events_pending(), e.into_state().log),
        );
        assert_eq!(
            out[0].0,
            SimTime::from_nanos(5_000),
            "clock advances to horizon"
        );
        assert_eq!(out[0].1, 1, "the t=9000 event stays queued");
        assert_eq!(out[0].2, vec![(100, 1)]);
        assert_eq!(out[1].2, vec![(200, 11)]);
    }

    #[test]
    #[should_panic(expected = "under the lookahead")]
    fn sends_under_the_lookahead_are_rejected() {
        let mut port: CellPort<Toy> = CellPort::default();
        port.configure(0, 2, L);
        port.set_promise(SimTime::ZERO);
        port.send(
            SimTime::from_nanos(10),
            1,
            SimDuration::from_nanos(100),
            "x",
            |_, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "breaks the cell's promise")]
    fn sends_before_the_promise_are_rejected() {
        let mut port: CellPort<Toy> = CellPort::default();
        port.configure(0, 2, L);
        port.set_promise(SimTime::from_nanos(5_000));
        port.send(SimTime::from_nanos(10), 1, L, "x", |_, _| {});
    }

    #[test]
    #[should_panic(expected = "parallel run failed")]
    fn builder_panics_surface_without_deadlocking() {
        let builders: Vec<Box<dyn FnOnce(usize) -> Engine<Toy> + Send>> = vec![
            Box::new(|k| build_cell(k, 2, &[])),
            Box::new(|_| panic!("boom")),
        ];
        let _ = run_cells(
            EngineKind::Parallel(2),
            L,
            SimTime::from_nanos(100),
            builders,
            |_, e: Engine<Toy>| e.into_state().log,
        );
    }

    #[test]
    #[should_panic(expected = "parallel run failed")]
    fn handler_panics_surface_without_deadlocking() {
        let cells = 2;
        let builders: Vec<Box<dyn FnOnce(usize) -> Engine<Toy> + Send>> = vec![
            Box::new(move |k| {
                let mut e = build_cell(k, cells, &[]);
                e.schedule_at(SimTime::from_nanos(10), |_: &mut Toy, _| panic!("kaboom"));
                e
            }),
            Box::new(move |k| build_cell(k, cells, &[])),
        ];
        let _ = run_cells(
            EngineKind::Parallel(2),
            L,
            SimTime::from_nanos(100),
            builders,
            |_, e: Engine<Toy>| e.into_state().log,
        );
    }

    #[test]
    fn adaptive_parallel_agrees_with_the_adaptive_serial_oracle() {
        let plans = two_cell_plan();
        let (serial, sstats) =
            run_plan_with(EngineKind::Serial, EpochPolicy::Adaptive, &plans, 10_000);
        for n in [1, 2, 4] {
            let (par, pstats) = run_plan_with(
                EngineKind::Parallel(n),
                EpochPolicy::Adaptive,
                &plans,
                10_000,
            );
            assert_eq!(
                par, serial,
                "Adaptive Parallel({n}) diverged from Adaptive Serial"
            );
            assert_eq!(
                pstats.epochs, sstats.epochs,
                "epoch schedule is policy-determined"
            );
            assert_eq!(pstats.remote_msgs, 3);
        }
        // On this plan no same-tick tie depends on epoch boundaries, so
        // the adaptive trajectory matches the fixed one too.
        let (fixed, _) = run_plan(EngineKind::Serial, &plans, 10_000);
        assert_eq!(serial, fixed);
    }

    #[test]
    fn adaptive_epochs_collapse_under_skewed_load() {
        // Heavy cell 0: 100 local events, every 10th sends cross-cell.
        // Light cell 1: nothing but the arrivals. Fixed bounds advance
        // one send stride per epoch (heavy's own promise caps the whole
        // run); adaptive lets the heavy cell drain in one bound because
        // its only peer is silent.
        let heavy: Vec<Op> = (1..=100u64)
            .map(|i| Op {
                at: i * 1_000,
                tag: i as u32,
                send: (i % 10 == 0).then_some((1usize, 500u64)),
            })
            .collect();
        let plans = vec![heavy, Vec::new()];
        let (fixed, fstats) = run_plan(EngineKind::Serial, &plans, 200_000);
        let (adaptive, astats) =
            run_plan_with(EngineKind::Serial, EpochPolicy::Adaptive, &plans, 200_000);
        assert_eq!(adaptive, fixed, "no same-tick ties: trajectories coincide");
        assert!(
            fstats.epochs >= 10,
            "fixed pays one epoch per send stride, got {}",
            fstats.epochs
        );
        assert!(
            astats.epochs <= 3,
            "adaptive drains the skewed plan in a few epochs, got {}",
            astats.epochs
        );
        let (par, pstats) = run_plan_with(
            EngineKind::Parallel(2),
            EpochPolicy::Adaptive,
            &plans,
            200_000,
        );
        assert_eq!(par, adaptive);
        assert_eq!(pstats.epochs, astats.epochs);
        assert_eq!(pstats.barrier_wait_by_worker.len(), 2);
        let total: f64 = pstats.barrier_wait_by_worker.iter().sum();
        assert!((total - pstats.barrier_wait_secs).abs() < 1e-9);
    }

    #[test]
    fn adaptive_solo_cell_still_drains_in_one_epoch() {
        let plans = vec![vec![
            Op {
                at: 10,
                tag: 1,
                send: None,
            },
            Op {
                at: 20,
                tag: 2,
                send: None,
            },
        ]];
        let cells = plans.len();
        let builders: Vec<_> = plans
            .iter()
            .cloned()
            .map(|plan| {
                move |k: usize| {
                    let mut e = build_cell(k, cells, &plan);
                    e.state_mut().port.configure(0, 1, SimDuration::ZERO);
                    e
                }
            })
            .collect();
        let (logs, stats) = run_cells_with(
            EngineKind::Serial,
            EpochPolicy::Adaptive,
            SimDuration::ZERO,
            SimTime::from_nanos(100),
            builders,
            |_, e: Engine<Toy>| e.into_state().log,
        );
        assert_eq!(logs[0], vec![(10, 1), (20, 2)]);
        assert_eq!(stats.epochs, 1, "no peers to wait for");
    }

    #[test]
    fn kind_labels_and_threads() {
        assert_eq!(EngineKind::Serial.threads(), 1);
        assert_eq!(EngineKind::Parallel(0).threads(), 1);
        assert_eq!(EngineKind::Parallel(4).threads(), 4);
        assert_eq!(EngineKind::Serial.label(), "serial");
        assert_eq!(EngineKind::Parallel(4).label(), "parallel-4");
        assert_eq!(EngineKind::default(), EngineKind::Serial);
        assert_eq!(EpochPolicy::default(), EpochPolicy::Fixed);
        assert_eq!(EpochPolicy::Fixed.label(), "fixed");
        assert_eq!(EpochPolicy::Adaptive.label(), "adaptive");
    }
}
