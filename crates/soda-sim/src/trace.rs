//! Bounded event trace.
//!
//! A ring buffer of `(time, category, message)` records that experiment
//! drivers and the SODA entities write to when tracing is enabled. The
//! buffer is bounded so long simulations cannot exhaust memory, and
//! recording is a no-op when disabled so hot paths pay only a branch.
//!
//! Free-form string records cannot be queried, aggregated or serialized;
//! the typed [`crate::obs`] layer supersedes them. [`Trace::emit`] is
//! deprecated in favor of [`crate::Obs::record`] with a typed
//! [`crate::Event`]; the buffer itself remains for drivers that want a
//! human-readable scratch log, and [`Trace::drain`] surfaces how many
//! records the capacity bound silently evicted.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the record was written.
    pub time: SimTime,
    /// Free-form category tag, e.g. `"master"`, `"daemon"`, `"switch"`.
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.category, self.message)
    }
}

/// A bounded in-memory trace.
#[derive(Debug)]
pub struct Trace {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            buf: VecDeque::new(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// A trace that keeps the most recent `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
        }
    }

    /// True if records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Write a record (no-op when disabled). Oldest records are evicted
    /// once `capacity` is reached.
    #[deprecated(
        since = "0.2.0",
        note = "record a typed `soda_sim::Event` through `soda_sim::Obs` instead; \
                string traces cannot be queried or aggregated"
    )]
    pub fn emit(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceEvent {
            time,
            category,
            message: message.into(),
        });
    }

    /// All retained records, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Retained records in a given category.
    pub fn in_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.buf.iter().filter(move |e| e.category == category)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes all retained records together with the evicted count, so a
    /// lossy window is visible to whoever formats the log. Resets the
    /// dropped counter.
    pub fn drain(&mut self) -> DrainedTrace {
        let events: Vec<TraceEvent> = self.buf.drain(..).collect();
        let dropped = self.dropped;
        self.dropped = 0;
        DrainedTrace { events, dropped }
    }
}

/// The result of [`Trace::drain`]: the retained records plus how many
/// older records the capacity bound evicted before the drain.
#[derive(Clone, Debug, Default)]
pub struct DrainedTrace {
    pub events: Vec<TraceEvent>,
    pub dropped: u64,
}

impl fmt::Display for DrainedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(
                f,
                "... {} earlier record(s) dropped by capacity bound ...",
                self.dropped
            )?;
        }
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(deprecated)] // the tests exercise the deprecated emit path itself
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(SimTime::ZERO, "x", "hello");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_keeps_records_in_order() {
        let mut t = Trace::enabled(10);
        t.emit(SimTime::from_secs(1), "a", "one");
        t.emit(SimTime::from_secs(2), "b", "two");
        let msgs: Vec<&str> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["one", "two"]);
        assert_eq!(t.len(), 2);
        assert!(t.is_enabled());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::enabled(3);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), "c", format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<&str> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn category_filter() {
        let mut t = Trace::enabled(10);
        t.emit(SimTime::ZERO, "master", "admit");
        t.emit(SimTime::ZERO, "daemon", "boot");
        t.emit(SimTime::ZERO, "master", "switch");
        assert_eq!(t.in_category("master").count(), 2);
        assert_eq!(t.in_category("daemon").count(), 1);
        assert_eq!(t.in_category("agent").count(), 0);
    }

    #[test]
    fn drain_surfaces_dropped_count() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), "c", format!("m{i}"));
        }
        let drained = t.drain();
        assert_eq!(drained.events.len(), 2);
        assert_eq!(drained.dropped, 3);
        assert!(drained.to_string().contains("3 earlier record(s) dropped"));
        // Drain resets both buffer and counter.
        assert!(t.is_empty());
        assert_eq!(t.drain().dropped, 0);
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            time: SimTime::from_secs(1),
            category: "switch",
            message: "forward".into(),
        };
        assert_eq!(e.to_string(), "[1.000s] switch: forward");
    }
}
