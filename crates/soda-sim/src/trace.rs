//! Bounded event trace.
//!
//! A ring buffer of `(time, category, message)` records that experiment
//! drivers and the SODA entities write to when tracing is enabled. The
//! buffer is bounded so long simulations cannot exhaust memory, and
//! recording is a no-op when disabled so hot paths pay only a branch.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the record was written.
    pub time: SimTime,
    /// Free-form category tag, e.g. `"master"`, `"daemon"`, `"switch"`.
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.category, self.message)
    }
}

/// A bounded in-memory trace.
#[derive(Debug)]
pub struct Trace {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace { buf: VecDeque::new(), capacity: 0, enabled: false, dropped: 0 }
    }

    /// A trace that keeps the most recent `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
        }
    }

    /// True if records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Write a record (no-op when disabled). Oldest records are evicted
    /// once `capacity` is reached.
    pub fn emit(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceEvent { time, category, message: message.into() });
    }

    /// All retained records, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Retained records in a given category.
    pub fn in_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.buf.iter().filter(move |e| e.category == category)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(SimTime::ZERO, "x", "hello");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_keeps_records_in_order() {
        let mut t = Trace::enabled(10);
        t.emit(SimTime::from_secs(1), "a", "one");
        t.emit(SimTime::from_secs(2), "b", "two");
        let msgs: Vec<&str> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["one", "two"]);
        assert_eq!(t.len(), 2);
        assert!(t.is_enabled());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::enabled(3);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), "c", format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<&str> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn category_filter() {
        let mut t = Trace::enabled(10);
        t.emit(SimTime::ZERO, "master", "admit");
        t.emit(SimTime::ZERO, "daemon", "boot");
        t.emit(SimTime::ZERO, "master", "switch");
        assert_eq!(t.in_category("master").count(), 2);
        assert_eq!(t.in_category("daemon").count(), 1);
        assert_eq!(t.in_category("agent").count(), 0);
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            time: SimTime::from_secs(1),
            category: "switch",
            message: "forward".into(),
        };
        assert_eq!(e.to_string(), "[1.000s] switch: forward");
    }
}
