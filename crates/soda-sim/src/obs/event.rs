//! Typed observability events.
//!
//! Every significant state transition in the SODA entities maps to one
//! [`Event`] variant carrying the raw numeric ids of the entities
//! involved (`soda-sim` sits below the crates that define the newtyped
//! `ServiceId`/`VsnId`/`HostId`, so events carry their inner `u64`s).
//! Variants are `Copy` and hold only integers and `&'static str`s, so
//! recording an event never allocates — the [`EventLog`] ring buffer
//! is the only storage, and it reuses its slots once warm.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// How alarming an event is. Ordered: `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-volume signals (per-request, per-tick samples).
    Debug,
    /// Normal control-plane transitions.
    Info,
    /// Degraded but expected behavior (rejections, drops).
    Warn,
    /// Faults (crashes, host failures).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        })
    }
}

/// A typed, allocation-free observability event.
///
/// Ids are the raw `u64`/`u32` values inside the entity newtypes; `0`
/// means "not applicable" (e.g. the service id of a rejected admission
/// that never got one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// The Master accepted or rejected a `<n, M>` creation request.
    AdmissionDecision {
        service: u64,
        accepted: bool,
        instances: u32,
    },
    /// The Master chose hosts for a service's nodes.
    PlacementDecision { service: u64, nodes: u32 },
    /// A VSN entered a Table 2 bootstrap phase.
    BootPhaseEntered {
        vsn: u64,
        host: u64,
        phase: &'static str,
    },
    /// A VSN completed a Table 2 bootstrap phase.
    BootPhaseCompleted {
        vsn: u64,
        host: u64,
        phase: &'static str,
    },
    /// The Master built a service switch over `backends` ready nodes.
    SwitchCreated { service: u64, backends: u32 },
    /// The switch routed a request to a backend.
    RequestDispatched { service: u64, vsn: u64 },
    /// A backend finished serving a request.
    RequestCompleted { service: u64, vsn: u64 },
    /// A request was dropped or aborted (no healthy backend, crash).
    RequestFailed { service: u64, vsn: u64 },
    /// One step of a resize: `action` is `"grow"`, `"shrink"`,
    /// `"inflate"` or `"deflate"`.
    ResizeStep {
        service: u64,
        vsn: u64,
        action: &'static str,
    },
    /// A virtual service node crashed.
    VsnCrash { vsn: u64, host: u64 },
    /// A HUP host failed wholesale.
    HostFailure { host: u64 },
    /// The traffic shaper refused a client (zero-rate bucket).
    ShaperDrop { host: u64, ip: u32 },
    /// One scheduler allocation sample: `share` is the CPU fraction
    /// granted to `uid` this tick.
    SchedulerShareSample { host: u64, uid: u32, share: f64 },
    /// A Master control-plane operation (`op`) failed unexpectedly —
    /// e.g. a node-ready callback for a service torn down mid-creation.
    MasterOpFailed {
        service: u64,
        vsn: u64,
        op: &'static str,
    },
    /// The recovery manager missed a host's heartbeat past the timeout.
    HeartbeatMissed { host: u64 },
    /// The recovery manager declared a host down (drain + re-place
    /// follow).
    HostDown { host: u64 },
    /// Heartbeats resumed from a host previously declared down.
    HostUp { host: u64 },
    /// A backend was drained (health off) from its service switch.
    BackendDrained { service: u64, vsn: u64 },
    /// One recovery placement attempt for a service's lost capacity.
    RecoveryAttempt { service: u64, attempt: u32 },
    /// Recovery placed a replacement node; priming begins.
    RecoveryPlaced { service: u64, vsn: u64, host: u64 },
    /// A failed recovery attempt scheduled a retry after backoff.
    RecoveryRetry {
        service: u64,
        attempt: u32,
        delay_ms: u64,
    },
    /// A replacement node booted; lost capacity is back in rotation.
    RecoveryCompleted {
        service: u64,
        vsn: u64,
        latency_ms: u64,
    },
    /// Recovery gave up for now: the service runs at reduced capacity.
    ServiceDegraded { service: u64, capacity: u32 },
    /// Graceful degradation shed capacity from a lower-priority victim
    /// service to make room for `service`.
    ServiceShed { service: u64, victim: u64 },
    /// An in-flight priming (image download / bootstrap) failed.
    PrimingFailed { service: u64, vsn: u64, host: u64 },
    /// The fault engine injected a fault (`kind` from
    /// `FaultSpec::kind`; `host`/`vsn` are 0 when not applicable).
    FaultInjected {
        kind: &'static str,
        host: u64,
        vsn: u64,
    },
    /// The host's links partitioned: nothing in or out.
    LinkPartitioned { host: u64 },
    /// The host's links healed.
    LinkRestored { host: u64 },
    /// The Master process crashed; `epoch` is the epoch that just died.
    MasterDown { epoch: u64 },
    /// A warm-standby Master finished taking over as `epoch`.
    MasterRecovered { epoch: u64, replayed: u64 },
    /// The standby replayed the journal: `entries` applied on top of a
    /// checkpoint taken at `checkpoint_seq` (0 = genesis).
    JournalReplayed {
        epoch: u64,
        entries: u64,
        checkpoint_seq: u64,
    },
    /// A placement cell was full, so the creation spilled to hosts
    /// owned by other cells (`from` is the service's home shard).
    ShardSpill { service: u64, from: u32 },
    /// An inter-shard control message was delivered after its simulated
    /// transit latency.
    ShardMsgDelivered {
        from: u32,
        to: u32,
        kind: &'static str,
    },
    /// An inter-shard message arrived stamped with a stale epoch (the
    /// destination cell failed over in flight) and was discarded.
    ShardMsgStale {
        to: u32,
        epoch: u64,
        kind: &'static str,
    },
}

impl Event {
    /// The event's severity under the taxonomy in DESIGN.md §3.
    pub fn severity(&self) -> Severity {
        match self {
            Event::AdmissionDecision {
                accepted: false, ..
            } => Severity::Warn,
            Event::RequestFailed { .. } | Event::ShaperDrop { .. } => Severity::Warn,
            Event::HeartbeatMissed { .. }
            | Event::BackendDrained { .. }
            | Event::RecoveryRetry { .. }
            | Event::ServiceDegraded { .. }
            | Event::ServiceShed { .. }
            | Event::FaultInjected { .. }
            | Event::LinkPartitioned { .. }
            | Event::ShardSpill { .. }
            | Event::ShardMsgStale { .. } => Severity::Warn,
            Event::VsnCrash { .. } | Event::HostFailure { .. } | Event::MasterOpFailed { .. } => {
                Severity::Error
            }
            Event::HostDown { .. } | Event::PrimingFailed { .. } | Event::MasterDown { .. } => {
                Severity::Error
            }
            Event::RequestDispatched { .. }
            | Event::RequestCompleted { .. }
            | Event::SchedulerShareSample { .. }
            | Event::ShardMsgDelivered { .. } => Severity::Debug,
            _ => Severity::Info,
        }
    }

    /// Short stable name of the variant, for filtering and counting.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::AdmissionDecision { .. } => "admission_decision",
            Event::PlacementDecision { .. } => "placement_decision",
            Event::BootPhaseEntered { .. } => "boot_phase_entered",
            Event::BootPhaseCompleted { .. } => "boot_phase_completed",
            Event::SwitchCreated { .. } => "switch_created",
            Event::RequestDispatched { .. } => "request_dispatched",
            Event::RequestCompleted { .. } => "request_completed",
            Event::RequestFailed { .. } => "request_failed",
            Event::ResizeStep { .. } => "resize_step",
            Event::VsnCrash { .. } => "vsn_crash",
            Event::HostFailure { .. } => "host_failure",
            Event::ShaperDrop { .. } => "shaper_drop",
            Event::SchedulerShareSample { .. } => "scheduler_share_sample",
            Event::MasterOpFailed { .. } => "master_op_failed",
            Event::HeartbeatMissed { .. } => "heartbeat_missed",
            Event::HostDown { .. } => "host_down",
            Event::HostUp { .. } => "host_up",
            Event::BackendDrained { .. } => "backend_drained",
            Event::RecoveryAttempt { .. } => "recovery_attempt",
            Event::RecoveryPlaced { .. } => "recovery_placed",
            Event::RecoveryRetry { .. } => "recovery_retry",
            Event::RecoveryCompleted { .. } => "recovery_completed",
            Event::ServiceDegraded { .. } => "service_degraded",
            Event::ServiceShed { .. } => "service_shed",
            Event::PrimingFailed { .. } => "priming_failed",
            Event::FaultInjected { .. } => "fault_injected",
            Event::LinkPartitioned { .. } => "link_partitioned",
            Event::LinkRestored { .. } => "link_restored",
            Event::MasterDown { .. } => "master_down",
            Event::MasterRecovered { .. } => "master_recovered",
            Event::JournalReplayed { .. } => "journal_replayed",
            Event::ShardSpill { .. } => "shard_spill",
            Event::ShardMsgDelivered { .. } => "shard_msg_delivered",
            Event::ShardMsgStale { .. } => "shard_msg_stale",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::AdmissionDecision {
                service,
                accepted,
                instances,
            } => write!(
                f,
                "admission service={service} instances={instances} -> {}",
                if accepted { "accept" } else { "reject" }
            ),
            Event::PlacementDecision { service, nodes } => {
                write!(f, "placement service={service} nodes={nodes}")
            }
            Event::BootPhaseEntered { vsn, host, phase } => {
                write!(f, "boot-phase-enter vsn={vsn} host={host} phase={phase}")
            }
            Event::BootPhaseCompleted { vsn, host, phase } => {
                write!(f, "boot-phase-done vsn={vsn} host={host} phase={phase}")
            }
            Event::SwitchCreated { service, backends } => {
                write!(f, "switch-created service={service} backends={backends}")
            }
            Event::RequestDispatched { service, vsn } => {
                write!(f, "request-dispatched service={service} vsn={vsn}")
            }
            Event::RequestCompleted { service, vsn } => {
                write!(f, "request-completed service={service} vsn={vsn}")
            }
            Event::RequestFailed { service, vsn } => {
                write!(f, "request-failed service={service} vsn={vsn}")
            }
            Event::ResizeStep {
                service,
                vsn,
                action,
            } => {
                write!(f, "resize-step service={service} vsn={vsn} action={action}")
            }
            Event::VsnCrash { vsn, host } => write!(f, "vsn-crash vsn={vsn} host={host}"),
            Event::HostFailure { host } => write!(f, "host-failure host={host}"),
            Event::ShaperDrop { host, ip } => write!(f, "shaper-drop host={host} ip={ip:#010x}"),
            Event::SchedulerShareSample { host, uid, share } => {
                write!(f, "sched-share host={host} uid={uid} share={share:.3}")
            }
            Event::MasterOpFailed { service, vsn, op } => {
                write!(f, "master-op-failed op={op} service={service} vsn={vsn}")
            }
            Event::HeartbeatMissed { host } => write!(f, "heartbeat-missed host={host}"),
            Event::HostDown { host } => write!(f, "host-down host={host}"),
            Event::HostUp { host } => write!(f, "host-up host={host}"),
            Event::BackendDrained { service, vsn } => {
                write!(f, "backend-drained service={service} vsn={vsn}")
            }
            Event::RecoveryAttempt { service, attempt } => {
                write!(f, "recovery-attempt service={service} attempt={attempt}")
            }
            Event::RecoveryPlaced { service, vsn, host } => {
                write!(f, "recovery-placed service={service} vsn={vsn} host={host}")
            }
            Event::RecoveryRetry {
                service,
                attempt,
                delay_ms,
            } => write!(
                f,
                "recovery-retry service={service} attempt={attempt} delay={delay_ms}ms"
            ),
            Event::RecoveryCompleted {
                service,
                vsn,
                latency_ms,
            } => write!(
                f,
                "recovery-completed service={service} vsn={vsn} latency={latency_ms}ms"
            ),
            Event::ServiceDegraded { service, capacity } => {
                write!(f, "service-degraded service={service} capacity={capacity}")
            }
            Event::ServiceShed { service, victim } => {
                write!(f, "service-shed service={service} victim={victim}")
            }
            Event::PrimingFailed { service, vsn, host } => {
                write!(f, "priming-failed service={service} vsn={vsn} host={host}")
            }
            Event::FaultInjected { kind, host, vsn } => {
                write!(f, "fault-injected kind={kind} host={host} vsn={vsn}")
            }
            Event::LinkPartitioned { host } => write!(f, "link-partitioned host={host}"),
            Event::LinkRestored { host } => write!(f, "link-restored host={host}"),
            Event::MasterDown { epoch } => write!(f, "master-down epoch={epoch}"),
            Event::MasterRecovered { epoch, replayed } => {
                write!(f, "master-recovered epoch={epoch} replayed={replayed}")
            }
            Event::JournalReplayed {
                epoch,
                entries,
                checkpoint_seq,
            } => write!(
                f,
                "journal-replayed epoch={epoch} entries={entries} checkpoint={checkpoint_seq}"
            ),
            Event::ShardSpill { service, from } => {
                write!(f, "shard-spill service={service} from={from}")
            }
            Event::ShardMsgDelivered { from, to, kind } => {
                write!(f, "shard-msg from={from} to={to} kind={kind}")
            }
            Event::ShardMsgStale { to, epoch, kind } => {
                write!(f, "shard-msg-stale to={to} epoch={epoch} kind={kind}")
            }
        }
    }
}

/// An [`Event`] with its virtual timestamp and a global sequence number
/// (ties at the same instant keep recording order).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedEvent {
    pub time: SimTime,
    pub seq: u64,
    pub event: Event,
}

impl fmt::Display for TimedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:5} {}",
            self.time,
            self.event.severity(),
            self.event
        )
    }
}

/// Bounded ring buffer of typed events. It evicts oldest-first, but the
/// evicted count is surfaced whenever the log is drained or formatted
/// instead of being silently discarded.
#[derive(Debug)]
pub struct EventLog {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
    seq: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl EventLog {
    /// A log retaining the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            buf: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            dropped: 0,
            seq: 0,
        }
    }

    /// Appends an event, evicting the oldest at capacity.
    pub fn push(&mut self, time: SimTime, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TimedEvent {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Retained events at severity `min` or above.
    pub fn at_least<'a>(&'a self, min: Severity) -> impl Iterator<Item = &'a TimedEvent> + 'a {
        self.buf.iter().filter(move |e| e.event.severity() >= min)
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes all retained events, pairing them with the evicted count
    /// so lossy windows are visible to whoever formats the timeline.
    pub fn drain(&mut self) -> DrainedEvents {
        let events: Vec<TimedEvent> = self.buf.drain(..).collect();
        let dropped = self.dropped;
        self.dropped = 0;
        DrainedEvents { events, dropped }
    }
}

/// The result of [`EventLog::drain`]: the retained timeline plus how
/// many older events were evicted before the drain.
#[derive(Clone, Debug, Default)]
pub struct DrainedEvents {
    pub events: Vec<TimedEvent>,
    pub dropped: u64,
}

impl fmt::Display for DrainedEvents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(
                f,
                "... {} earlier event(s) dropped by capacity bound ...",
                self.dropped
            )?;
        }
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl serde::Serialize for Event {
    fn to_json_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields: Vec<(String, Value)> = vec![
            ("kind".into(), Value::String(self.kind().into())),
            (
                "severity".into(),
                Value::String(self.severity().to_string()),
            ),
        ];
        let mut put = |name: &str, v: Value| fields.push((name.into(), v));
        match *self {
            Event::AdmissionDecision {
                service,
                accepted,
                instances,
            } => {
                put("service", Value::U64(service));
                put("accepted", Value::Bool(accepted));
                put("instances", Value::U64(u64::from(instances)));
            }
            Event::PlacementDecision { service, nodes } => {
                put("service", Value::U64(service));
                put("nodes", Value::U64(u64::from(nodes)));
            }
            Event::BootPhaseEntered { vsn, host, phase }
            | Event::BootPhaseCompleted { vsn, host, phase } => {
                put("vsn", Value::U64(vsn));
                put("host", Value::U64(host));
                put("phase", Value::String(phase.into()));
            }
            Event::SwitchCreated { service, backends } => {
                put("service", Value::U64(service));
                put("backends", Value::U64(u64::from(backends)));
            }
            Event::RequestDispatched { service, vsn }
            | Event::RequestCompleted { service, vsn }
            | Event::RequestFailed { service, vsn } => {
                put("service", Value::U64(service));
                put("vsn", Value::U64(vsn));
            }
            Event::ResizeStep {
                service,
                vsn,
                action,
            } => {
                put("service", Value::U64(service));
                put("vsn", Value::U64(vsn));
                put("action", Value::String(action.into()));
            }
            Event::VsnCrash { vsn, host } => {
                put("vsn", Value::U64(vsn));
                put("host", Value::U64(host));
            }
            Event::HostFailure { host } => put("host", Value::U64(host)),
            Event::ShaperDrop { host, ip } => {
                put("host", Value::U64(host));
                put("ip", Value::U64(u64::from(ip)));
            }
            Event::SchedulerShareSample { host, uid, share } => {
                put("host", Value::U64(host));
                put("uid", Value::U64(u64::from(uid)));
                put("share", Value::F64(share));
            }
            Event::MasterOpFailed { service, vsn, op } => {
                put("service", Value::U64(service));
                put("vsn", Value::U64(vsn));
                put("op", Value::String(op.into()));
            }
            Event::HeartbeatMissed { host }
            | Event::HostDown { host }
            | Event::HostUp { host }
            | Event::LinkPartitioned { host }
            | Event::LinkRestored { host } => put("host", Value::U64(host)),
            Event::BackendDrained { service, vsn } => {
                put("service", Value::U64(service));
                put("vsn", Value::U64(vsn));
            }
            Event::RecoveryAttempt { service, attempt } => {
                put("service", Value::U64(service));
                put("attempt", Value::U64(u64::from(attempt)));
            }
            Event::RecoveryPlaced { service, vsn, host } => {
                put("service", Value::U64(service));
                put("vsn", Value::U64(vsn));
                put("host", Value::U64(host));
            }
            Event::RecoveryRetry {
                service,
                attempt,
                delay_ms,
            } => {
                put("service", Value::U64(service));
                put("attempt", Value::U64(u64::from(attempt)));
                put("delay_ms", Value::U64(delay_ms));
            }
            Event::RecoveryCompleted {
                service,
                vsn,
                latency_ms,
            } => {
                put("service", Value::U64(service));
                put("vsn", Value::U64(vsn));
                put("latency_ms", Value::U64(latency_ms));
            }
            Event::ServiceDegraded { service, capacity } => {
                put("service", Value::U64(service));
                put("capacity", Value::U64(u64::from(capacity)));
            }
            Event::ServiceShed { service, victim } => {
                put("service", Value::U64(service));
                put("victim", Value::U64(victim));
            }
            Event::PrimingFailed { service, vsn, host } => {
                put("service", Value::U64(service));
                put("vsn", Value::U64(vsn));
                put("host", Value::U64(host));
            }
            Event::FaultInjected { kind, host, vsn } => {
                put("fault", Value::String(kind.into()));
                put("host", Value::U64(host));
                put("vsn", Value::U64(vsn));
            }
            Event::MasterDown { epoch } => put("epoch", Value::U64(epoch)),
            Event::MasterRecovered { epoch, replayed } => {
                put("epoch", Value::U64(epoch));
                put("replayed", Value::U64(replayed));
            }
            Event::JournalReplayed {
                epoch,
                entries,
                checkpoint_seq,
            } => {
                put("epoch", Value::U64(epoch));
                put("entries", Value::U64(entries));
                put("checkpoint_seq", Value::U64(checkpoint_seq));
            }
            Event::ShardSpill { service, from } => {
                put("service", Value::U64(service));
                put("from", Value::U64(u64::from(from)));
            }
            Event::ShardMsgDelivered { from, to, kind } => {
                put("from", Value::U64(u64::from(from)));
                put("to", Value::U64(u64::from(to)));
                put("msg", Value::String(kind.into()));
            }
            Event::ShardMsgStale { to, epoch, kind } => {
                put("to", Value::U64(u64::from(to)));
                put("epoch", Value::U64(epoch));
                put("msg", Value::String(kind.into()));
            }
        }
        Value::Object(fields)
    }
}

impl serde::Serialize for TimedEvent {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("time_ns".into(), serde::Value::U64(self.time.as_nanos())),
            ("seq".into(), serde::Value::U64(self.seq)),
            ("event".into(), self.event.to_json_value()),
        ])
    }
}

impl serde::Serialize for DrainedEvents {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("dropped".into(), serde::Value::U64(self.dropped)),
            ("events".into(), self.events.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_taxonomy() {
        assert_eq!(
            Event::AdmissionDecision {
                service: 0,
                accepted: false,
                instances: 4
            }
            .severity(),
            Severity::Warn
        );
        assert_eq!(
            Event::AdmissionDecision {
                service: 1,
                accepted: true,
                instances: 4
            }
            .severity(),
            Severity::Info
        );
        assert_eq!(Event::HostFailure { host: 1 }.severity(), Severity::Error);
        assert_eq!(
            Event::RequestDispatched { service: 1, vsn: 2 }.severity(),
            Severity::Debug
        );
        assert!(Severity::Debug < Severity::Error);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_reports() {
        let mut log = EventLog::new(2);
        for host in 0..5u64 {
            log.push(SimTime::from_secs(host), Event::HostFailure { host });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let drained = log.drain();
        assert_eq!(drained.dropped, 3);
        assert_eq!(drained.events.len(), 2);
        assert!(drained.to_string().contains("3 earlier event(s) dropped"));
        // Drain resets both the buffer and the dropped count.
        assert_eq!(log.drain().dropped, 0);
    }

    #[test]
    fn sequence_numbers_break_time_ties() {
        let mut log = EventLog::new(8);
        log.push(SimTime::ZERO, Event::HostFailure { host: 1 });
        log.push(SimTime::ZERO, Event::HostFailure { host: 2 });
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn display_includes_severity() {
        let mut log = EventLog::new(4);
        log.push(
            SimTime::from_secs(3),
            Event::ShaperDrop {
                host: 1,
                ip: 0x0a000001,
            },
        );
        let text = log.drain().to_string();
        assert!(text.contains("WARN"), "{text}");
        assert!(text.contains("shaper-drop"), "{text}");
    }
}
