//! Structured observability: typed events, virtual-time spans, a
//! labeled metrics registry, and sampled causal traces.
//!
//! This module is the machine-readable signal layer shared by every
//! SODA entity (the free-form string ring buffer it replaced was
//! removed once all callers migrated):
//!
//! * [`event`] — a typed [`Event`] enum (admission/placement decisions,
//!   boot phases, request lifecycle, resizes, crashes, host failures,
//!   shaper drops, scheduler share samples), each carrying entity ids
//!   and a [`Severity`], kept in a bounded [`EventLog`] that surfaces
//!   its `dropped` count when drained.
//! * [`span`] — virtual-time spans keyed by `(entity, operation)`.
//!   Enter/exit pairs (or RAII [`SpanGuard`]s) feed per-operation
//!   latency [`crate::Histogram`]s in the registry.
//! * [`registry`] — a central [`MetricsRegistry`] of named counters,
//!   gauges and histograms with small label sets (service, vsn, host),
//!   snapshotable and serializable for `results/<exp>.json` reports.
//! * [`trace`] — per-request/per-creation causal traces: a sampled
//!   [`Tracer`] builds parent-linked span trees whose contiguous
//!   phases reconstruct each request's critical path, exportable as
//!   Chrome trace-event JSON (Perfetto-loadable).
//!
//! ## The observer effect — and why there isn't one
//!
//! All entities record through a shared cheaply-clonable [`Obs`] handle.
//! When observability is disabled (the default), every recording call
//! is a **branch-only no-op**: the handle holds no buffer, performs no
//! allocation, draws no randomness, and schedules no engine events, so
//! the Fig 4/5/6 hot paths and the deterministic event order are
//! bit-for-bit unaffected. `tests/observability.rs` locks this in by
//! comparing full run trajectories and final RNG state with
//! observability on versus off, and counts heap allocations on the
//! disabled path.

pub mod event;
pub mod registry;
pub mod span;
pub mod trace;

pub use event::{DrainedEvents, Event, EventLog, Severity, TimedEvent};
pub use registry::{
    Labels, MetricHandle, MetricId, MetricKind, MetricValue, MetricsRegistry, RegistrySnapshot,
    Sample,
};
pub use span::{SpanGuard, SpanStats, SpanTracker};
pub use trace::{SpanId, TraceId, TraceRecord, TraceRef, TraceSpan, Tracer};

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Everything one observability domain records: its event log, span
/// tracker, metrics registry, and causal tracer. Obtain through
/// [`Obs::with`].
#[derive(Debug, Default)]
pub struct ObsInner {
    pub events: EventLog,
    pub spans: SpanTracker,
    pub registry: MetricsRegistry,
    pub tracer: Tracer,
}

/// Shared handle to an observability domain.
///
/// Entities store a clone; all clones point at the same [`ObsInner`].
/// The disabled handle (via [`Obs::disabled`] or `Default`) holds
/// nothing at all — recording through it is one branch and a return.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    shared: Option<Rc<RefCell<ObsInner>>>,
}

impl Obs {
    /// A handle that records nothing (one branch per call).
    pub fn disabled() -> Self {
        Obs { shared: None }
    }

    /// A recording handle whose event log keeps the most recent
    /// `event_capacity` events.
    pub fn enabled(event_capacity: usize) -> Self {
        Obs {
            shared: Some(Rc::new(RefCell::new(ObsInner {
                events: EventLog::new(event_capacity),
                spans: SpanTracker::default(),
                registry: MetricsRegistry::default(),
                tracer: Tracer::disabled(),
            }))),
        }
    }

    /// True if this handle records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Records a typed event (no-op when disabled).
    #[inline]
    pub fn record(&self, now: SimTime, event: Event) {
        let Some(shared) = &self.shared else { return };
        shared.borrow_mut().events.push(now, event);
    }

    /// Runs `f` against the inner state; `None` when disabled.
    pub fn with<R>(&self, f: impl FnOnce(&mut ObsInner) -> R) -> Option<R> {
        self.shared.as_ref().map(|s| f(&mut s.borrow_mut()))
    }

    /// Adds to a counter (no-op when disabled).
    #[inline]
    pub fn counter_add(&self, scope: &'static str, name: &'static str, labels: Labels, n: u64) {
        let Some(shared) = &self.shared else { return };
        shared
            .borrow_mut()
            .registry
            .counter_add(scope, name, labels, n);
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, scope: &'static str, name: &'static str, labels: Labels, v: f64) {
        let Some(shared) = &self.shared else { return };
        shared
            .borrow_mut()
            .registry
            .gauge_set(scope, name, labels, v);
    }

    /// Records a histogram observation (no-op when disabled).
    #[inline]
    pub fn histogram_record(
        &self,
        scope: &'static str,
        name: &'static str,
        labels: Labels,
        value: u64,
    ) {
        let Some(shared) = &self.shared else { return };
        shared
            .borrow_mut()
            .registry
            .histogram_record(scope, name, labels, value);
    }

    /// Interns a metric identity for handle-based recording; `None` when
    /// disabled. Hot-path writers call this once at wiring time and then
    /// record through [`Obs::counter_add_h`] & co., which index straight
    /// into the registry's slot table.
    pub fn intern(
        &self,
        scope: &'static str,
        name: &'static str,
        labels: Labels,
        kind: MetricKind,
    ) -> Option<MetricHandle> {
        let shared = self.shared.as_ref()?;
        Some(
            shared
                .borrow_mut()
                .registry
                .intern(scope, name, labels, kind),
        )
    }

    /// Adds to an interned counter (no-op when disabled).
    #[inline]
    pub fn counter_add_h(&self, h: MetricHandle, n: u64) {
        let Some(shared) = &self.shared else { return };
        shared.borrow_mut().registry.counter_add_h(h, n);
    }

    /// Sets an interned gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set_h(&self, h: MetricHandle, v: f64) {
        let Some(shared) = &self.shared else { return };
        shared.borrow_mut().registry.gauge_set_h(h, v);
    }

    /// Records into an interned histogram (no-op when disabled).
    #[inline]
    pub fn histogram_record_h(&self, h: MetricHandle, value: u64) {
        let Some(shared) = &self.shared else { return };
        shared.borrow_mut().registry.histogram_record_h(h, value);
    }

    /// Opens a span keyed by `(entity, op, id)` (no-op when disabled).
    #[inline]
    pub fn span_enter(&self, entity: &'static str, op: &'static str, id: u64, now: SimTime) {
        let Some(shared) = &self.shared else { return };
        shared.borrow_mut().spans.enter(entity, op, id, now);
    }

    /// Closes a span and feeds `span.<entity>.<op>`'s latency histogram
    /// (no-op when disabled; unmatched exits are counted, not fed).
    #[inline]
    pub fn span_exit(&self, entity: &'static str, op: &'static str, id: u64, now: SimTime) {
        let Some(shared) = &self.shared else { return };
        let inner = &mut *shared.borrow_mut();
        if let Some(dur) = inner.spans.exit(entity, op, id, now) {
            inner
                .registry
                .histogram_record(entity, op, Labels::none(), dur.as_nanos());
        }
    }

    /// Records an already-measured span retroactively. This is how
    /// phases that must not schedule extra engine events (the Daemon's
    /// Table 2 bootstrap) are turned into spans after the fact.
    #[inline]
    pub fn span_record(
        &self,
        entity: &'static str,
        op: &'static str,
        labels: Labels,
        start: SimTime,
        end: SimTime,
    ) {
        let Some(shared) = &self.shared else { return };
        let inner = &mut *shared.borrow_mut();
        inner.spans.note_recorded(entity, op);
        inner
            .registry
            .histogram_record(entity, op, labels, end.saturating_since(start).as_nanos());
    }

    /// RAII span: exits at drop with the time given to
    /// [`SpanGuard::close_at`], or `now` if never adjusted.
    pub fn span_guard(
        &self,
        entity: &'static str,
        op: &'static str,
        id: u64,
        now: SimTime,
    ) -> SpanGuard {
        self.span_enter(entity, op, id, now);
        SpanGuard::new(self.clone(), entity, op, id, now)
    }

    /// Snapshot of every metric; `None` when disabled.
    pub fn snapshot(&self) -> Option<RegistrySnapshot> {
        self.with(|inner| inner.registry.snapshot())
    }

    /// All `(scope, name)` histograms merged across their label sets —
    /// e.g. every per-backend `switch.response_time` folded into one
    /// service-wide latency distribution. `None` when disabled or when
    /// no matching histogram was ever recorded.
    pub fn merged_histogram(
        &self,
        scope: &'static str,
        name: &'static str,
    ) -> Option<crate::metrics::Histogram> {
        self.with(|inner| inner.registry.merged_histogram(scope, name))
            .flatten()
    }

    /// Drains and returns the retained events plus the count of events
    /// evicted by the capacity bound; `None` when disabled.
    pub fn drain_events(&self) -> Option<DrainedEvents> {
        self.with(|inner| inner.events.drain())
    }

    /// Switches causal tracing on for this domain. `salt` seeds the
    /// deterministic head sampler (derive it from the run seed),
    /// `sample_one_in` keeps roughly 1/N of keys, `max_traces` bounds
    /// memory. Returns `false` (and does nothing) when the whole
    /// observability domain is disabled.
    pub fn enable_tracing(&self, salt: u64, sample_one_in: u64, max_traces: usize) -> bool {
        self.with(|inner| inner.tracer = Tracer::enabled(salt, sample_one_in, max_traces))
            .is_some()
    }

    /// Starts a trace for `key` if the sampler keeps it (no-op returning
    /// `None` when disabled).
    #[inline]
    pub fn trace_begin(
        &self,
        track: &'static str,
        name: &'static str,
        key: u64,
        now: SimTime,
    ) -> Option<TraceRef> {
        let Some(shared) = &self.shared else {
            return None;
        };
        shared.borrow_mut().tracer.begin(track, name, key, now)
    }

    /// Records a completed child span under `parent` (no-op when the
    /// parent was not sampled).
    #[inline]
    pub fn trace_child(
        &self,
        parent: Option<TraceRef>,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) -> Option<TraceRef> {
        let parent = parent?;
        let shared = self.shared.as_ref()?;
        shared.borrow_mut().tracer.child(parent, name, start, end)
    }

    /// Opens a child span under `parent`; close with [`Obs::trace_close`].
    #[inline]
    pub fn trace_open_child(
        &self,
        parent: Option<TraceRef>,
        name: &'static str,
        start: SimTime,
    ) -> Option<TraceRef> {
        let parent = parent?;
        let shared = self.shared.as_ref()?;
        shared.borrow_mut().tracer.open_child(parent, name, start)
    }

    /// Closes a span (idempotent; no-op for unsampled refs).
    #[inline]
    pub fn trace_close(&self, r: Option<TraceRef>, end: SimTime) {
        let Some(r) = r else { return };
        let Some(shared) = &self.shared else { return };
        shared.borrow_mut().tracer.close(r, end);
    }

    /// The stored traces in Chrome trace-event JSON form; `None` when
    /// the domain is disabled.
    pub fn chrome_trace(&self) -> Option<serde::Value> {
        self.with(|inner| inner.tracer.chrome_trace_value())
    }

    /// Per-trace critical-path breakdown; `None` when disabled.
    pub fn critical_paths(&self) -> Option<serde::Value> {
        self.with(|inner| inner.tracer.critical_paths_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        obs.record(SimTime::ZERO, Event::HostFailure { host: 1 });
        obs.counter_add("x", "y", Labels::none(), 1);
        obs.span_enter("m", "op", 1, SimTime::ZERO);
        obs.span_exit("m", "op", 1, SimTime::from_secs(1));
        assert!(!obs.is_enabled());
        assert!(obs.snapshot().is_none());
        assert!(obs.drain_events().is_none());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled(16);
        let clone = obs.clone();
        clone.record(SimTime::from_secs(1), Event::HostFailure { host: 7 });
        let drained = obs.drain_events().unwrap();
        assert_eq!(drained.events.len(), 1);
        assert_eq!(drained.dropped, 0);
    }

    #[test]
    fn span_exit_feeds_latency_histogram() {
        let obs = Obs::enabled(16);
        obs.span_enter("master", "admission", 3, SimTime::from_secs(1));
        obs.span_exit("master", "admission", 3, SimTime::from_secs(4));
        let snap = obs.snapshot().unwrap();
        let s = snap
            .samples
            .iter()
            .find(|s| s.name == "master.admission")
            .expect("span histogram present");
        match &s.value {
            MetricValue::Histogram { count, mean, .. } => {
                assert_eq!(*count, 1);
                assert!((mean - 3e9).abs() < 3e9 * 0.05, "mean {mean} ~ 3e9");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn guard_closes_on_drop() {
        let obs = Obs::enabled(16);
        {
            let mut g = obs.span_guard("switch", "request", 9, SimTime::from_secs(1));
            g.close_at(SimTime::from_secs(2));
        }
        let (entered, exited) = obs.with(|i| i.spans.balance("switch", "request")).unwrap();
        assert_eq!((entered, exited), (1, 1));
        assert_eq!(obs.with(|i| i.spans.open_count()).unwrap(), 0);
    }
}
