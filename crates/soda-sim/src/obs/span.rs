//! Virtual-time spans keyed by `(entity, operation)`.
//!
//! A span measures how much *virtual* time an operation took — from
//! `enter` at one engine event to `exit` at a later one (the Master's
//! priming of a VSN), or zero-width for operations that complete within
//! a single event (admission). Closing a span feeds the
//! `(entity, operation)` latency histogram in the metrics registry.
//!
//! The tracker counts enters and exits per key so tests can assert
//! balance: every operation that opened a span must eventually close
//! it, and nothing may exit a span it never entered.

use std::collections::BTreeMap;
use std::fmt;

use crate::obs::Obs;
use crate::time::{SimDuration, SimTime};

/// `(entity, operation)` — the identity of a span kind.
pub type SpanKey = (&'static str, &'static str);

/// Enter/exit bookkeeping for one span kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Spans opened via `enter` (or recorded retroactively).
    pub entered: u64,
    /// Spans closed via `exit` (or recorded retroactively).
    pub exited: u64,
    /// Exits that found no matching open span.
    pub unmatched_exits: u64,
}

/// Tracks open spans and per-kind balance counts.
#[derive(Debug, Default)]
pub struct SpanTracker {
    open: BTreeMap<(SpanKey, u64), SimTime>,
    stats: BTreeMap<SpanKey, SpanStats>,
}

impl SpanTracker {
    /// Opens span `id` of kind `(entity, op)` at `now`. Re-entering an
    /// id that is already open restarts it (the old start is replaced
    /// and the duplicate counted as an unmatched exit would be — the
    /// balance numbers stay honest).
    pub fn enter(&mut self, entity: &'static str, op: &'static str, id: u64, now: SimTime) {
        let stats = self.stats.entry((entity, op)).or_default();
        stats.entered += 1;
        if self.open.insert(((entity, op), id), now).is_some() {
            // The prior open span can never be exited now.
            stats.unmatched_exits += 1;
        }
    }

    /// Closes span `id`, returning its virtual duration, or `None` (and
    /// an unmatched-exit count) if it was never opened.
    pub fn exit(
        &mut self,
        entity: &'static str,
        op: &'static str,
        id: u64,
        now: SimTime,
    ) -> Option<SimDuration> {
        let stats = self.stats.entry((entity, op)).or_default();
        match self.open.remove(&((entity, op), id)) {
            Some(start) => {
                stats.exited += 1;
                Some(now.saturating_since(start))
            }
            None => {
                stats.unmatched_exits += 1;
                None
            }
        }
    }

    /// Books a retroactively-measured span as one enter + one exit.
    pub fn note_recorded(&mut self, entity: &'static str, op: &'static str) {
        let stats = self.stats.entry((entity, op)).or_default();
        stats.entered += 1;
        stats.exited += 1;
    }

    /// Number of spans currently open (all kinds).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// `(entered, exited)` for one span kind.
    pub fn balance(&self, entity: &str, op: &str) -> (u64, u64) {
        self.stats
            .iter()
            .find(|((e, o), _)| *e == entity && *o == op)
            .map(|(_, s)| (s.entered, s.exited))
            .unwrap_or((0, 0))
    }

    /// Full stats for one span kind.
    pub fn stats(&self, entity: &str, op: &str) -> SpanStats {
        self.stats
            .iter()
            .find(|((e, o), _)| *e == entity && *o == op)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Every span kind seen, with its stats, in stable order.
    pub fn all_stats(&self) -> impl Iterator<Item = (SpanKey, SpanStats)> + '_ {
        self.stats.iter().map(|(k, s)| (*k, *s))
    }

    /// True when every entered span has exited, with no unmatched exits
    /// anywhere — the property the Master proptest asserts.
    pub fn is_balanced(&self) -> bool {
        self.open.is_empty()
            && self
                .stats
                .values()
                .all(|s| s.entered == s.exited && s.unmatched_exits == 0)
    }
}

impl fmt::Display for SpanTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ((entity, op), s) in &self.stats {
            writeln!(
                f,
                "{entity}.{op}: entered={} exited={} unmatched={} open={}",
                s.entered,
                s.exited,
                s.unmatched_exits,
                self.open
                    .keys()
                    .filter(|((e, o), _)| e == entity && o == op)
                    .count(),
            )?;
        }
        Ok(())
    }
}

/// RAII span handle from [`Obs::span_guard`]: closes its span on drop.
///
/// Virtual time does not advance inside a single engine event, so a
/// guard dropped in the scope it was created in records a zero-width
/// span (a count). For operations whose completion time is known before
/// the guard drops, [`SpanGuard::close_at`] sets the exit timestamp.
pub struct SpanGuard {
    obs: Obs,
    entity: &'static str,
    op: &'static str,
    id: u64,
    end: SimTime,
}

impl SpanGuard {
    pub(crate) fn new(
        obs: Obs,
        entity: &'static str,
        op: &'static str,
        id: u64,
        now: SimTime,
    ) -> Self {
        SpanGuard {
            obs,
            entity,
            op,
            id,
            end: now,
        }
    }

    /// Sets the virtual timestamp the span will close with.
    pub fn close_at(&mut self, end: SimTime) {
        self.end = end;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.obs.span_exit(self.entity, self.op, self.id, self.end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_measures_virtual_time() {
        let mut t = SpanTracker::default();
        t.enter("master", "priming", 5, SimTime::from_secs(10));
        assert_eq!(t.open_count(), 1);
        let d = t
            .exit("master", "priming", 5, SimTime::from_secs(70))
            .unwrap();
        assert_eq!(d, SimDuration::from_secs(60));
        assert!(t.is_balanced());
        assert_eq!(t.balance("master", "priming"), (1, 1));
    }

    #[test]
    fn unmatched_exit_is_counted_not_fed() {
        let mut t = SpanTracker::default();
        assert!(t.exit("master", "priming", 1, SimTime::ZERO).is_none());
        assert_eq!(t.stats("master", "priming").unmatched_exits, 1);
        assert!(!t.is_balanced());
    }

    #[test]
    fn concurrent_ids_are_independent() {
        let mut t = SpanTracker::default();
        t.enter("daemon", "boot", 1, SimTime::from_secs(1));
        t.enter("daemon", "boot", 2, SimTime::from_secs(2));
        let d1 = t.exit("daemon", "boot", 1, SimTime::from_secs(5)).unwrap();
        let d2 = t.exit("daemon", "boot", 2, SimTime::from_secs(5)).unwrap();
        assert_eq!(d1, SimDuration::from_secs(4));
        assert_eq!(d2, SimDuration::from_secs(3));
        assert!(t.is_balanced());
    }

    #[test]
    fn reenter_same_id_keeps_balance_honest() {
        let mut t = SpanTracker::default();
        t.enter("m", "op", 1, SimTime::from_secs(1));
        t.enter("m", "op", 1, SimTime::from_secs(2));
        t.exit("m", "op", 1, SimTime::from_secs(3));
        assert!(!t.is_balanced());
        assert_eq!(
            t.stats("m", "op"),
            SpanStats {
                entered: 2,
                exited: 1,
                unmatched_exits: 1
            }
        );
    }
}
