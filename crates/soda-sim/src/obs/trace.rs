//! Causal request tracing with deterministic head-sampling.
//!
//! Aggregate spans and histograms answer "what was the admission p99";
//! they cannot answer "where did *this* request spend its time". A
//! [`Tracer`] records per-entity causal trees: one [`TraceId`] per
//! sampled entity (a client request, a service creation), holding
//! [`TraceSpan`]s with parent links. Call sites thread a small `Copy`
//! [`TraceRef`] through the pipeline (closure captures, flow payloads),
//! so a span recorded on the far side of the NIC still hangs off the
//! right parent.
//!
//! ## Determinism and the observer effect
//!
//! The head-sampling decision is a pure hash of `(salt, key)` — the
//! simulation RNG is never consulted, no engine events are scheduled,
//! and recording touches nothing but the tracer's own storage. Tracing
//! on versus off therefore yields bit-identical trajectories (the
//! transparency gate in `tests/observability.rs`). Memory is bounded
//! two ways: unsampled keys store nothing, and once `max_traces`
//! records exist further keys are counted in [`Tracer::capped`] instead
//! of stored.
//!
//! ## Export
//!
//! [`Tracer::chrome_trace_value`] renders the Chrome trace-event JSON
//! format (`{"traceEvents": [{"ph": "X", ...}]}`), loadable in Perfetto
//! or `chrome://tracing`. [`Tracer::critical_paths_value`] emits a
//! per-trace breakdown of the root span into its direct children; for a
//! request trace the children are contiguous phases, so their durations
//! sum exactly to the measured response time.

use crate::time::SimTime;

/// Identity of one sampled trace (one request, one creation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identity of one span within its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub u32);

/// A `(trace, span)` pair — the token call sites propagate through the
/// pipeline so later phases attach to the right parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRef {
    pub trace: TraceId,
    pub span: SpanId,
}

/// One node of a causal tree.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Phase name, e.g. `"route"`, `"guest_service"`, `"priming"`.
    pub name: &'static str,
    /// Parent span within the same trace; `None` for the root.
    pub parent: Option<SpanId>,
    pub start: SimTime,
    /// `None` while the span is still open (entity lost mid-flight or
    /// still in flight at drain time).
    pub end: Option<SimTime>,
}

/// One sampled causal tree. `spans[0]` is the root.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub id: TraceId,
    /// Category lane (`"request"`, `"creation"`) — the Chrome export's
    /// `cat` field.
    pub track: &'static str,
    /// The entity key the sampler hashed (request id, service id).
    pub key: u64,
    pub spans: Vec<TraceSpan>,
}

impl TraceRecord {
    /// The root span.
    pub fn root(&self) -> &TraceSpan {
        &self.spans[0]
    }

    /// True once the root span has closed.
    pub fn is_finished(&self) -> bool {
        self.spans[0].end.is_some()
    }

    /// Direct children of the root in start order — the critical-path
    /// phases of the entity.
    pub fn phases(&self) -> Vec<&TraceSpan> {
        let mut out: Vec<&TraceSpan> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(SpanId(0)))
            .collect();
        out.sort_by_key(|s| s.start);
        out
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Bounded causal-trace recorder. Disabled by default: every recording
/// call is then a branch and a return.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    /// Sampler salt — derive from the run seed so two runs of the same
    /// seed sample the same keys.
    salt: u64,
    /// Keep roughly one in this many keys (`<= 1` keeps every key).
    sample_one_in: u64,
    /// Hard cap on stored traces; excess sampled keys are counted in
    /// `capped`, not stored.
    max_traces: usize,
    traces: Vec<TraceRecord>,
    capped: u64,
    unsampled: u64,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A recording tracer. `salt` seeds the (pure-hash) head sampler,
    /// `sample_one_in` keeps ~1/N of keys, `max_traces` bounds memory.
    pub fn enabled(salt: u64, sample_one_in: u64, max_traces: usize) -> Self {
        Tracer {
            enabled: true,
            salt,
            sample_one_in: sample_one_in.max(1),
            max_traces: max_traces.max(1),
            traces: Vec::new(),
            capped: 0,
            unsampled: 0,
        }
    }

    /// True if this tracer records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The deterministic head-sampling decision for `key`: a pure hash
    /// of `(salt, key)`, never the simulation RNG.
    #[inline]
    pub fn sampled(&self, key: u64) -> bool {
        if !self.enabled {
            return false;
        }
        if self.sample_one_in <= 1 {
            return true;
        }
        fnv1a_u64(fnv1a_u64(FNV_OFFSET, self.salt), key).is_multiple_of(self.sample_one_in)
    }

    /// Starts a trace for `key` if the sampler keeps it and the cap has
    /// room. Returns the root span's reference.
    pub fn begin(
        &mut self,
        track: &'static str,
        name: &'static str,
        key: u64,
        start: SimTime,
    ) -> Option<TraceRef> {
        if !self.sampled(key) {
            if self.enabled {
                self.unsampled += 1;
            }
            return None;
        }
        if self.traces.len() >= self.max_traces {
            self.capped += 1;
            return None;
        }
        let id = TraceId(self.traces.len() as u64);
        self.traces.push(TraceRecord {
            id,
            track,
            key,
            spans: vec![TraceSpan {
                name,
                parent: None,
                start,
                end: None,
            }],
        });
        Some(TraceRef {
            trace: id,
            span: SpanId(0),
        })
    }

    /// Records a completed child span under `parent`.
    pub fn child(
        &mut self,
        parent: TraceRef,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) -> Option<TraceRef> {
        let r = self.open_child(parent, name, start)?;
        self.close(r, end);
        Some(r)
    }

    /// Opens a child span under `parent`; close it with [`Tracer::close`].
    pub fn open_child(
        &mut self,
        parent: TraceRef,
        name: &'static str,
        start: SimTime,
    ) -> Option<TraceRef> {
        let rec = self.traces.get_mut(parent.trace.0 as usize)?;
        let span = SpanId(rec.spans.len() as u32);
        rec.spans.push(TraceSpan {
            name,
            parent: Some(parent.span),
            start,
            end: None,
        });
        Some(TraceRef {
            trace: parent.trace,
            span,
        })
    }

    /// Closes a span (idempotent: the first close wins, so a drop path
    /// racing a completion cannot rewrite history).
    pub fn close(&mut self, r: TraceRef, end: SimTime) {
        if let Some(rec) = self.traces.get_mut(r.trace.0 as usize) {
            if let Some(span) = rec.spans.get_mut(r.span.0 as usize) {
                if span.end.is_none() {
                    span.end = Some(end.max(span.start));
                }
            }
        }
    }

    /// All stored traces.
    pub fn traces(&self) -> &[TraceRecord] {
        &self.traces
    }

    /// One stored trace.
    pub fn get(&self, id: TraceId) -> Option<&TraceRecord> {
        self.traces.get(id.0 as usize)
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Sampled keys dropped by the `max_traces` bound.
    pub fn capped(&self) -> u64 {
        self.capped
    }

    /// Keys the head sampler declined.
    pub fn unsampled(&self) -> u64 {
        self.unsampled
    }

    /// The stored traces in Chrome trace-event JSON form
    /// (Perfetto-loadable). Times are microseconds; every span is a
    /// complete (`"ph": "X"`) duration event; each trace gets its own
    /// `tid` row. Open spans render with zero duration and
    /// `"unfinished": true` in `args`.
    pub fn chrome_trace_value(&self) -> serde::Value {
        let mut events = Vec::new();
        for rec in &self.traces {
            for (i, span) in rec.spans.iter().enumerate() {
                let start_us = span.start.as_nanos() as f64 / 1_000.0;
                let dur_us = span
                    .end
                    .map(|e| e.saturating_since(span.start).as_nanos() as f64 / 1_000.0)
                    .unwrap_or(0.0);
                let mut args = vec![
                    ("trace".to_string(), serde::Value::U64(rec.id.0)),
                    ("key".to_string(), serde::Value::U64(rec.key)),
                    ("span".to_string(), serde::Value::U64(i as u64)),
                    (
                        "parent".to_string(),
                        match span.parent {
                            Some(p) => serde::Value::U64(u64::from(p.0)),
                            None => serde::Value::Null,
                        },
                    ),
                ];
                if span.end.is_none() {
                    args.push(("unfinished".to_string(), serde::Value::Bool(true)));
                }
                events.push(serde::Value::Object(vec![
                    (
                        "name".to_string(),
                        serde::Value::String(span.name.to_string()),
                    ),
                    (
                        "cat".to_string(),
                        serde::Value::String(rec.track.to_string()),
                    ),
                    ("ph".to_string(), serde::Value::String("X".to_string())),
                    ("ts".to_string(), serde::Value::F64(start_us)),
                    ("dur".to_string(), serde::Value::F64(dur_us)),
                    ("pid".to_string(), serde::Value::U64(1)),
                    ("tid".to_string(), serde::Value::U64(rec.id.0)),
                    ("args".to_string(), serde::Value::Object(args)),
                ]));
            }
        }
        serde::Value::Object(vec![
            ("traceEvents".to_string(), serde::Value::Array(events)),
            (
                "displayTimeUnit".to_string(),
                serde::Value::String("ms".to_string()),
            ),
        ])
    }

    /// Per-trace critical-path breakdown: for every *finished* trace,
    /// the root's direct children in start order with their durations.
    /// For request traces the phases are contiguous, so `phases[].dur_ns`
    /// sums exactly to `total_ns` — the measured response time.
    pub fn critical_paths_value(&self) -> serde::Value {
        let paths = self
            .traces
            .iter()
            .filter(|rec| rec.is_finished())
            .map(|rec| {
                let root = rec.root();
                let total = root
                    .end
                    .expect("finished")
                    .saturating_since(root.start)
                    .as_nanos();
                let phases = rec
                    .phases()
                    .iter()
                    .map(|s| {
                        serde::Value::Object(vec![
                            ("name".to_string(), serde::Value::String(s.name.to_string())),
                            (
                                "start_ns".to_string(),
                                serde::Value::U64(s.start.as_nanos()),
                            ),
                            (
                                "dur_ns".to_string(),
                                serde::Value::U64(
                                    s.end
                                        .map(|e| e.saturating_since(s.start).as_nanos())
                                        .unwrap_or(0),
                                ),
                            ),
                        ])
                    })
                    .collect();
                serde::Value::Object(vec![
                    ("trace".to_string(), serde::Value::U64(rec.id.0)),
                    (
                        "track".to_string(),
                        serde::Value::String(rec.track.to_string()),
                    ),
                    ("key".to_string(), serde::Value::U64(rec.key)),
                    (
                        "start_ns".to_string(),
                        serde::Value::U64(root.start.as_nanos()),
                    ),
                    ("total_ns".to_string(), serde::Value::U64(total)),
                    ("phases".to_string(), serde::Value::Array(phases)),
                ])
            })
            .collect();
        serde::Value::Array(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.sampled(1));
        assert!(t.begin("request", "request", 1, SimTime::ZERO).is_none());
        assert!(t.is_empty());
        assert_eq!(t.unsampled(), 0, "disabled is not 'unsampled'");
    }

    #[test]
    fn sampling_is_deterministic_and_salted() {
        let a = Tracer::enabled(7, 4, 1000);
        let b = Tracer::enabled(7, 4, 1000);
        let c = Tracer::enabled(8, 4, 1000);
        let keys: Vec<u64> = (0..1000).collect();
        let pick = |t: &Tracer| keys.iter().filter(|&&k| t.sampled(k)).count();
        let sa: Vec<bool> = keys.iter().map(|&k| a.sampled(k)).collect();
        let sb: Vec<bool> = keys.iter().map(|&k| b.sampled(k)).collect();
        let sc: Vec<bool> = keys.iter().map(|&k| c.sampled(k)).collect();
        assert_eq!(sa, sb, "same salt, same decisions");
        assert_ne!(sa, sc, "different salt, different decisions");
        // Roughly 1/4 of keys survive (loose band: hashing is not exact).
        let n = pick(&a);
        assert!((100..500).contains(&n), "sampled {n}/1000 at 1-in-4");
    }

    #[test]
    fn parent_links_and_phases() {
        let mut t = Tracer::enabled(1, 1, 16);
        let root = t
            .begin("request", "request", 42, SimTime::from_secs(1))
            .unwrap();
        let a = t
            .child(root, "route", SimTime::from_secs(1), SimTime::from_secs(2))
            .unwrap();
        // Grandchild hangs off `a`, not the root: not a phase.
        t.child(a, "hop", SimTime::from_secs(1), SimTime::from_secs(2))
            .unwrap();
        t.child(root, "serve", SimTime::from_secs(2), SimTime::from_secs(5))
            .unwrap();
        t.close(root, SimTime::from_secs(5));
        let rec = t.get(root.trace).unwrap();
        assert!(rec.is_finished());
        let phases = rec.phases();
        assert_eq!(
            phases.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["route", "serve"]
        );
        let total: SimDuration = SimTime::from_secs(5).saturating_since(SimTime::from_secs(1));
        let sum: u64 = phases
            .iter()
            .map(|s| s.end.unwrap().saturating_since(s.start).as_nanos())
            .sum();
        assert_eq!(sum, total.as_nanos(), "contiguous phases sum to the root");
    }

    #[test]
    fn cap_bounds_memory_and_counts_overflow() {
        let mut t = Tracer::enabled(1, 1, 2);
        for k in 0..5 {
            t.begin("request", "request", k, SimTime::ZERO);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.capped(), 3);
    }

    #[test]
    fn close_is_idempotent() {
        let mut t = Tracer::enabled(1, 1, 4);
        let root = t.begin("request", "request", 1, SimTime::ZERO).unwrap();
        t.close(root, SimTime::from_secs(3));
        t.close(root, SimTime::from_secs(9));
        assert_eq!(
            t.get(root.trace).unwrap().root().end,
            Some(SimTime::from_secs(3))
        );
    }

    #[test]
    fn chrome_export_is_valid_json_with_x_events() {
        let mut t = Tracer::enabled(1, 1, 4);
        let root = t
            .begin("request", "request", 9, SimTime::from_millis(10))
            .unwrap();
        t.child(
            root,
            "route",
            SimTime::from_millis(10),
            SimTime::from_millis(12),
        );
        t.close(root, SimTime::from_millis(12));
        let text = serde_json::to_string_pretty(&t.chrome_trace_value()).unwrap();
        let parsed = serde_json::from_str(&text).expect("valid JSON");
        let events = parsed.get("traceEvents").expect("traceEvents key");
        let first = events.index(0).expect("at least one event");
        assert_eq!(first.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(first.get("pid").and_then(|v| v.as_u64()), Some(1));
        // 10 ms root start = 10_000 µs.
        assert_eq!(first.get("ts").and_then(|v| v.as_f64()), Some(10_000.0));
    }

    #[test]
    fn critical_paths_skip_unfinished_traces() {
        let mut t = Tracer::enabled(1, 1, 4);
        let done = t.begin("request", "request", 1, SimTime::ZERO).unwrap();
        t.child(done, "route", SimTime::ZERO, SimTime::from_secs(1));
        t.close(done, SimTime::from_secs(1));
        t.begin("request", "request", 2, SimTime::ZERO).unwrap(); // never closed
        let v = t.critical_paths_value();
        match &v {
            serde::Value::Array(items) => assert_eq!(items.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
        let total = v.index(0).unwrap().get("total_ns").unwrap().as_u64();
        assert_eq!(total, Some(1_000_000_000));
    }
}
