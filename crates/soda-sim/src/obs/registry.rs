//! Central metrics registry: named counters, gauges and histograms
//! with small label sets.
//!
//! ## Naming convention
//!
//! A metric is identified by `(scope, name, labels)`:
//!
//! * `scope` — the owning entity: `"master"`, `"daemon"`, `"switch"`,
//!   `"agent"`, `"shaper"`, `"sched"`, `"world"`.
//! * `name` — a snake_case measure within the scope. Span latency
//!   histograms use the operation name (e.g. `master`/`priming`).
//! * `labels` — up to [`Labels::MAX`] `(&'static str, u64)` pairs with
//!   well-known keys `service`, `vsn`, `host`, `uid`, `ip`. Keys are
//!   static and values numeric, so building labels never allocates.
//!
//! Snapshots render names as `scope.name` and are serializable through
//! the (vendored) serde path for `results/<exp>.json` reports.

use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::Histogram;

/// A small, allocation-free, ordered label set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Labels {
    pairs: [(&'static str, u64); Labels::MAX],
    len: u8,
}

impl Labels {
    /// Maximum number of label pairs a metric can carry.
    pub const MAX: usize = 3;

    /// The empty label set.
    pub const fn none() -> Self {
        Labels {
            pairs: [("", 0); Labels::MAX],
            len: 0,
        }
    }

    /// A single-label set.
    pub const fn one(key: &'static str, value: u64) -> Self {
        Labels {
            pairs: [(key, value), ("", 0), ("", 0)],
            len: 1,
        }
    }

    /// A two-label set.
    pub const fn two(k1: &'static str, v1: u64, k2: &'static str, v2: u64) -> Self {
        Labels {
            pairs: [(k1, v1), (k2, v2), ("", 0)],
            len: 2,
        }
    }

    /// A three-label set.
    pub const fn three(
        k1: &'static str,
        v1: u64,
        k2: &'static str,
        v2: u64,
        k3: &'static str,
        v3: u64,
    ) -> Self {
        Labels {
            pairs: [(k1, v1), (k2, v2), (k3, v3)],
            len: 3,
        }
    }

    /// Returns a copy with `key=value` appended.
    ///
    /// # Panics
    /// If the set already holds [`Labels::MAX`] pairs.
    pub fn with(mut self, key: &'static str, value: u64) -> Self {
        assert!(
            (self.len as usize) < Labels::MAX,
            "more than {} labels",
            Labels::MAX
        );
        self.pairs[self.len as usize] = (key, value);
        self.len += 1;
        self
    }

    /// The live pairs.
    pub fn pairs(&self) -> &[(&'static str, u64)] {
        &self.pairs[..self.len as usize]
    }

    /// Value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.pairs()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.pairs().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Full identity of a metric in the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    pub scope: &'static str,
    pub name: &'static str,
    pub labels: Labels,
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}{}", self.scope, self.name, self.labels)
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The kind of metric an interned handle points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// An interned metric identity: a direct index into the registry's slot
/// table. Hot-path writers intern `(scope, name, labels)` once (at wiring
/// time) and record through the handle afterwards, skipping the per-record
/// `BTreeMap` walk and its string comparisons entirely.
///
/// Handles are only meaningful for the registry that issued them; slots are
/// never removed, so a handle stays valid for the registry's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricHandle(u32);

/// The central registry. Entities write through [`crate::obs::Obs`];
/// experiment harnesses read via accessors or [`MetricsRegistry::snapshot`].
///
/// Storage is a flat slot table (`Vec`) addressed by [`MetricHandle`],
/// plus a `BTreeMap` index from [`MetricId`] to slot for interning, the
/// string-keyed write path, and stable snapshot ordering.
///
/// A `(scope, name, labels)` key must keep one metric kind for the whole
/// run — re-registering it as a different kind panics, since silently
/// resetting would corrupt longitudinal data.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    index: BTreeMap<MetricId, u32>,
    slots: Vec<(MetricId, Metric)>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a metric identity, creating the metric (zeroed) if absent,
    /// and returns its handle.
    ///
    /// # Panics
    /// If the identity already exists with a different kind.
    pub fn intern(
        &mut self,
        scope: &'static str,
        name: &'static str,
        labels: Labels,
        kind: MetricKind,
    ) -> MetricHandle {
        let id = MetricId {
            scope,
            name,
            labels,
        };
        let slot = *self.index.entry(id).or_insert_with(|| {
            let metric = match kind {
                MetricKind::Counter => Metric::Counter(0),
                MetricKind::Gauge => Metric::Gauge(0.0),
                MetricKind::Histogram => Metric::Histogram(Histogram::new()),
            };
            let slot = u32::try_from(self.slots.len()).expect("metric slot overflow");
            self.slots.push((id, metric));
            slot
        });
        let existing = match &self.slots[slot as usize].1 {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        };
        let wanted = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        assert!(
            existing == kind,
            "{scope}.{name} is a {}, not a {wanted}",
            self.slots[slot as usize].1.kind()
        );
        MetricHandle(slot)
    }

    /// Adds `n` to the counter behind an interned handle.
    pub fn counter_add_h(&mut self, h: MetricHandle, n: u64) {
        match &mut self.slots[h.0 as usize].1 {
            Metric::Counter(v) => *v += n,
            other => panic!("handle is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the gauge behind an interned handle.
    pub fn gauge_set_h(&mut self, h: MetricHandle, v: f64) {
        match &mut self.slots[h.0 as usize].1 {
            Metric::Gauge(g) => *g = v,
            other => panic!("handle is a {}, not a gauge", other.kind()),
        }
    }

    /// Records into the histogram behind an interned handle.
    pub fn histogram_record_h(&mut self, h: MetricHandle, value: u64) {
        match &mut self.slots[h.0 as usize].1 {
            Metric::Histogram(hist) => hist.record(value),
            other => panic!("handle is a {}, not a histogram", other.kind()),
        }
    }

    /// Adds `n` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, scope: &'static str, name: &'static str, labels: Labels, n: u64) {
        let h = self.intern(scope, name, labels, MetricKind::Counter);
        self.counter_add_h(h, n);
    }

    /// Sets a gauge to `v`, creating it if absent.
    pub fn gauge_set(&mut self, scope: &'static str, name: &'static str, labels: Labels, v: f64) {
        let h = self.intern(scope, name, labels, MetricKind::Gauge);
        self.gauge_set_h(h, v);
    }

    /// Records `value` into a histogram, creating it if absent.
    pub fn histogram_record(
        &mut self,
        scope: &'static str,
        name: &'static str,
        labels: Labels,
        value: u64,
    ) {
        let h = self.intern(scope, name, labels, MetricKind::Histogram);
        self.histogram_record_h(h, value);
    }

    /// Counter value (`None` if absent or a different kind).
    pub fn counter(&self, scope: &str, name: &str, labels: Labels) -> Option<u64> {
        match self.get(scope, name, labels)? {
            Metric::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value (`None` if absent or a different kind).
    pub fn gauge(&self, scope: &str, name: &str, labels: Labels) -> Option<f64> {
        match self.get(scope, name, labels)? {
            Metric::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram (`None` if absent or a different kind).
    pub fn histogram(&self, scope: &str, name: &str, labels: Labels) -> Option<&Histogram> {
        match self.get(scope, name, labels)? {
            Metric::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Merges a histogram across every label set it was recorded under —
    /// how `SweepRunner` aggregates per-backend (or per-seed) latency
    /// distributions into one digest. `None` if no histogram matches.
    pub fn merged_histogram(&self, scope: &str, name: &str) -> Option<Histogram> {
        let mut merged: Option<Histogram> = None;
        for (id, m) in &self.slots {
            if id.scope != scope || id.name != name {
                continue;
            }
            if let Metric::Histogram(h) = m {
                match &mut merged {
                    Some(acc) => acc.merge(h),
                    None => merged = Some(h.clone()),
                }
            }
        }
        merged
    }

    /// Sums a counter across every label set it was recorded under.
    pub fn counter_total(&self, scope: &str, name: &str) -> u64 {
        self.slots
            .iter()
            .filter(|(id, _)| id.scope == scope && id.name == name)
            .filter_map(|(_, m)| match m {
                Metric::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    fn get(&self, scope: &str, name: &str, labels: Labels) -> Option<&Metric> {
        // Linear probe so lookups work with non-'static keys; reads
        // happen at snapshot/report time, never on the simulation path.
        self.slots
            .iter()
            .find(|(id, _)| id.scope == scope && id.name == name && id.labels == labels)
            .map(|(_, m)| m)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// A point-in-time, serializable copy of every metric, in stable
    /// (scope, name, labels) order (the index order, independent of
    /// interning order).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let samples = self
            .index
            .iter()
            .map(|(id, &slot)| (id, &self.slots[slot as usize].1))
            .map(|(id, m)| Sample {
                name: format!("{}.{}", id.scope, id.name),
                labels: id
                    .labels
                    .pairs()
                    .iter()
                    .map(|&(k, v)| (k.to_string(), v))
                    .collect(),
                value: match m {
                    Metric::Counter(v) => MetricValue::Counter(*v),
                    Metric::Gauge(v) => MetricValue::Gauge(*v),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        mean: h.mean(),
                        p50: h.median(),
                        p99: h.p99(),
                        p999: h.quantile(0.999),
                        max: h.quantile(1.0),
                    },
                },
            })
            .collect();
        RegistrySnapshot { samples }
    }
}

/// One serialized metric.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// `scope.name`.
    pub name: String,
    pub labels: Vec<(String, u64)>,
    pub value: MetricValue,
}

/// A serialized metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    /// Histogram digest; `mean`/`p50`/`p99`/`p999`/`max` are in the
    /// recorded unit (nanoseconds for span latencies).
    Histogram {
        count: u64,
        mean: f64,
        p50: u64,
        p99: u64,
        p999: u64,
        max: u64,
    },
}

/// Serializable registry snapshot ([`MetricsRegistry::snapshot`]).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RegistrySnapshot {
    pub samples: Vec<Sample>,
}

impl RegistrySnapshot {
    /// Finds a sample by rendered name and exact label values.
    pub fn find(&self, name: &str, labels: &[(&str, u64)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
        })
    }
}

impl serde::Serialize for RegistrySnapshot {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Array(self.samples.iter().map(|s| s.to_json_value()).collect())
    }
}

impl serde::Serialize for Sample {
    fn to_json_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), serde::Value::String(self.name.clone())),
            (
                "labels".to_string(),
                serde::Value::Object(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), serde::Value::U64(*v)))
                        .collect(),
                ),
            ),
        ];
        let (kind, value) = match &self.value {
            MetricValue::Counter(v) => ("counter", serde::Value::U64(*v)),
            MetricValue::Gauge(v) => ("gauge", serde::Value::F64(*v)),
            MetricValue::Histogram {
                count,
                mean,
                p50,
                p99,
                p999,
                max,
            } => (
                "histogram",
                serde::Value::Object(vec![
                    ("count".to_string(), serde::Value::U64(*count)),
                    ("mean".to_string(), serde::Value::F64(*mean)),
                    ("p50".to_string(), serde::Value::U64(*p50)),
                    ("p99".to_string(), serde::Value::U64(*p99)),
                    ("p999".to_string(), serde::Value::U64(*p999)),
                    ("max".to_string(), serde::Value::U64(*max)),
                ]),
            ),
        };
        fields.push((kind.to_string(), value));
        serde::Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_order_and_lookup() {
        let a = Labels::two("service", 1, "vsn", 2);
        let b = Labels::two("service", 1, "vsn", 3);
        assert!(a < b);
        assert_eq!(a.get("vsn"), Some(2));
        assert_eq!(a.get("host"), None);
        assert_eq!(a.len(), 2);
        assert_eq!(Labels::none().with("host", 9).get("host"), Some(9));
        assert_eq!(a.to_string(), "{service=1,vsn=2}");
    }

    #[test]
    #[should_panic(expected = "more than 3 labels")]
    fn labels_overflow_panics() {
        let _ = Labels::three("a", 1, "b", 2, "c", 3).with("d", 4);
    }

    #[test]
    fn same_name_different_labels_are_distinct() {
        let mut r = MetricsRegistry::new();
        r.counter_add("switch", "served", Labels::one("vsn", 1), 2);
        r.counter_add("switch", "served", Labels::one("vsn", 2), 5);
        assert_eq!(
            r.counter("switch", "served", Labels::one("vsn", 1)),
            Some(2)
        );
        assert_eq!(
            r.counter("switch", "served", Labels::one("vsn", 2)),
            Some(5)
        );
        assert_eq!(r.counter_total("switch", "served"), 7);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_conflict_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("x", "y", Labels::none(), 1.0);
        r.counter_add("x", "y", Labels::none(), 1);
    }

    #[test]
    fn interned_handles_alias_string_writes() {
        let mut r = MetricsRegistry::new();
        r.counter_add("switch", "served", Labels::one("vsn", 7), 2);
        let h = r.intern(
            "switch",
            "served",
            Labels::one("vsn", 7),
            MetricKind::Counter,
        );
        r.counter_add_h(h, 3);
        assert_eq!(
            r.counter("switch", "served", Labels::one("vsn", 7)),
            Some(5)
        );
        // Re-interning yields the same slot; no duplicate metric appears.
        let h2 = r.intern(
            "switch",
            "served",
            Labels::one("vsn", 7),
            MetricKind::Counter,
        );
        assert_eq!(h, h2);
        assert_eq!(r.len(), 1);

        let g = r.intern("switch", "outstanding", Labels::none(), MetricKind::Gauge);
        r.gauge_set_h(g, 4.5);
        assert_eq!(r.gauge("switch", "outstanding", Labels::none()), Some(4.5));

        let hist = r.intern("switch", "response", Labels::none(), MetricKind::Histogram);
        r.histogram_record_h(hist, 1_000);
        r.histogram_record_h(hist, 3_000);
        assert_eq!(
            r.histogram("switch", "response", Labels::none())
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn intern_kind_conflict_panics() {
        let mut r = MetricsRegistry::new();
        r.counter_add("x", "y", Labels::none(), 1);
        r.intern("x", "y", Labels::none(), MetricKind::Gauge);
    }

    /// The snapshot stays in (scope, name, labels) order even when metrics
    /// are interned out of order into later slots.
    #[test]
    fn snapshot_order_is_independent_of_interning_order() {
        let mut r = MetricsRegistry::new();
        let z = r.intern("zeta", "last", Labels::none(), MetricKind::Counter);
        let a = r.intern("alpha", "first", Labels::none(), MetricKind::Counter);
        r.counter_add_h(z, 1);
        r.counter_add_h(a, 2);
        let snap = r.snapshot();
        assert_eq!(snap.samples[0].name, "alpha.first");
        assert_eq!(snap.samples[1].name, "zeta.last");
    }

    #[test]
    fn snapshot_orders_and_digests() {
        let mut r = MetricsRegistry::new();
        r.histogram_record("master", "admission", Labels::none(), 1000);
        r.histogram_record("master", "admission", Labels::none(), 3000);
        r.counter_add("agent", "authenticated", Labels::none(), 1);
        let snap = r.snapshot();
        // BTreeMap order: agent before master.
        assert_eq!(snap.samples[0].name, "agent.authenticated");
        let s = snap.find("master.admission", &[]).unwrap();
        match &s.value {
            MetricValue::Histogram { count, .. } => assert_eq!(*count, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut r = MetricsRegistry::new();
        r.counter_add("switch", "served", Labels::two("service", 1, "vsn", 2), 42);
        r.gauge_set("switch", "outstanding", Labels::one("vsn", 2), 1.5);
        r.histogram_record("daemon", "mount", Labels::one("host", 1), 2_500_000);
        let snap = r.snapshot();
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(
            parsed,
            serde_json::to_value(&snap),
            "round trip via:\n{text}"
        );
        // Spot-check the rendered shape.
        let served = parsed.index(2).unwrap();
        assert_eq!(
            served.get("name").and_then(|v| v.as_str()),
            Some("switch.served")
        );
        assert_eq!(
            served
                .get("labels")
                .and_then(|l| l.get("service"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(served.get("counter").and_then(|v| v.as_u64()), Some(42));
    }
}
