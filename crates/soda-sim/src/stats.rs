//! Small statistics toolkit for experiment analysis: simple linear
//! regression (the download-linearity check), normal-approximation
//! confidence intervals, and comparison helpers used by the shape
//! assertions.

/// Result of an ordinary least-squares fit `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Least-squares fit over paired samples. Returns `None` with fewer than
/// two points or zero variance in `x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// A mean with a normal-approximation confidence half-width.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (± this).
    pub half_width: f64,
}

impl MeanCi {
    /// True iff `other`'s interval overlaps this one — the "approximately
    /// the same response time" test of Figure 4.
    pub fn overlaps(&self, other: &MeanCi) -> bool {
        (self.mean - other.mean).abs() <= self.half_width + other.half_width
    }
}

/// 95% confidence interval of the mean (z = 1.96; fine for the sample
/// sizes the experiments produce). Returns `None` for empty input.
pub fn mean_ci95(xs: &[f64]) -> Option<MeanCi> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() == 1 {
        return Some(MeanCi {
            mean,
            half_width: 0.0,
        });
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    Some(MeanCi {
        mean,
        half_width: 1.96 * (var / n).sqrt(),
    })
}

/// Relative difference `|a - b| / max(|a|, |b|)`; 0 for two zeros.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let m = a.abs().max(b.abs());
    if m == 0.0 {
        0.0
    } else {
        (a - b).abs() / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fits_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0]; // y = 2x + 1
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_degrades_with_noise() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let clean: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + if i % 2 == 0 { 20.0 } else { -20.0 })
            .collect();
        let fc = linear_fit(&xs, &clean).unwrap();
        let fnz = linear_fit(&xs, &noisy).unwrap();
        assert!(fc.r2 > fnz.r2);
        assert!(fnz.r2 > 0.5);
    }

    #[test]
    fn degenerate_fits() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(
            linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none(),
            "zero x variance"
        );
        assert!(
            linear_fit(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_none(),
            "length mismatch"
        );
        // Constant y: perfect fit with slope 0.
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn ci_behaviour() {
        assert!(mean_ci95(&[]).is_none());
        let one = mean_ci95(&[4.2]).unwrap();
        assert_eq!(one.mean, 4.2);
        assert_eq!(one.half_width, 0.0);
        let xs: Vec<f64> = (0..100).map(|i| 10.0 + (i % 5) as f64).collect();
        let ci = mean_ci95(&xs).unwrap();
        assert!((ci.mean - 12.0).abs() < 1e-9);
        assert!(ci.half_width > 0.0 && ci.half_width < 1.0);
    }

    #[test]
    fn overlap_semantics() {
        let a = MeanCi {
            mean: 10.0,
            half_width: 1.0,
        };
        let b = MeanCi {
            mean: 11.5,
            half_width: 1.0,
        };
        let c = MeanCi {
            mean: 20.0,
            half_width: 1.0,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn rel_diff_cases() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert!((rel_diff(10.0, 11.0) - 1.0 / 11.0).abs() < 1e-12);
        assert_eq!(rel_diff(-5.0, 5.0), 2.0);
    }

    proptest! {
        /// The fitted line minimises residuals at least as well as the
        /// flat line through the mean (r2 >= 0 by construction).
        #[test]
        fn prop_r2_in_unit_interval(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..50)
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            if let Some(f) = linear_fit(&xs, &ys) {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&f.r2));
            }
        }
    }
}
