//! Deterministic random numbers and the distributions the SODA workload
//! generators need.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — small, fast,
//! and (critically for reproducing the paper's figures) stable: the byte
//! stream for a given seed is fixed by this crate, not by an external
//! dependency's version.

/// Deterministic PRNG (xoshiro256**) with distribution helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Every seed (including 0)
    /// yields a well-mixed state via SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator; used to give each workload
    /// generator its own stream so adding one generator does not perturb
    /// the draws of another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[range.start, range.end)`. Panics on an empty
    /// range. Uses Lemire-style widening multiply without rejection; the
    /// bias is < 2^-64 per draw, far below anything our statistics resolve.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0..n as u64) as usize
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0,1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponential variate with the given mean (inter-arrival times of a
    /// Poisson process). A non-positive or non-finite mean yields 0.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean.is_nan() || mean.is_infinite() || mean <= 0.0 {
            return 0.0;
        }
        // Guard against ln(0).
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (one value per call; simple over
    /// fast, this is not on a hot path).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Poisson variate (Knuth's algorithm; fine for the small means used by
    /// batch-arrival models).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean.is_nan() || mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
            // Numerical guard for very large means.
            if k > (mean * 20.0 + 100.0) as u64 {
                return k;
            }
        }
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }

    /// Capture the raw generator state so a snapshot can restore the
    /// exact point in the stream (checkpoint/restore must continue
    /// bit-identically, so "re-seed and hope" is not an option).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a captured [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }
}

/// Zipf-distributed ranks in `[1, n]` with skew `s` — used to model
/// popularity of documents in the web-content dataset (hot documents are
/// requested far more often). Pre-computes the CDF once; draws are a
/// binary search.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over ranks `1..=n` with exponent `s >= 0`.
    /// `s = 0` is the uniform distribution. Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Force exact 1.0 at the tail so a draw of u≈1 cannot fall off.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `[1, n]`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i + 2.min(self.cdf.len() - i), // landed exactly on a CDF point
            Err(i) => i + 1,
        }
        .min(self.cdf.len())
    }

    /// Size of the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(1);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.range_u64(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(5..5);
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = SimRng::new(4);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exp_degenerate_means() {
        let mut r = SimRng::new(5);
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-1.0), 0.0);
        assert_eq!(r.exp(f64::NAN), 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut r = SimRng::new(7);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.poisson(4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn bool_probability() {
        let mut r = SimRng::new(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bool(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
        assert!(!r.bool(0.0));
        assert!(r.bool(1.0));
        assert!(r.bool(2.0)); // clamps
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = SimRng::new(10);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(r.choose(&xs).unwrap()));
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = SimRng::new(11);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn zipf_support_and_skew() {
        let mut r = SimRng::new(12);
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0u32; 101];
        for _ in 0..100_000 {
            let k = z.sample(&mut r);
            assert!((1..=100).contains(&k), "rank {k} out of range");
            counts[k] += 1;
        }
        // Rank 1 must dominate rank 50 heavily at s = 1.
        assert!(
            counts[1] > counts[50] * 10,
            "{} vs {}",
            counts[1],
            counts[50]
        );
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut r = SimRng::new(13);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0u32; 11];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &c) in counts.iter().enumerate().skip(1) {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "rank {k} frac {frac}");
        }
    }

    proptest! {
        #[test]
        fn prop_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
            let mut r = SimRng::new(seed);
            let v = r.range_u64(lo..lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }

        #[test]
        fn prop_index_in_bounds(seed in any::<u64>(), n in 1usize..10_000) {
            let mut r = SimRng::new(seed);
            prop_assert!(r.index(n) < n);
        }

        #[test]
        fn prop_zipf_in_support(seed in any::<u64>(), n in 1usize..500, s in 0.0f64..3.0) {
            let mut r = SimRng::new(seed);
            let z = Zipf::new(n, s);
            let k = z.sample(&mut r);
            prop_assert!(k >= 1 && k <= n);
        }
    }
}
