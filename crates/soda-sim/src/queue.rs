//! Stable priority event queue.
//!
//! The engine's queue orders events by `(time, sequence-number)`, so that two
//! events scheduled for the same instant fire in the order they were
//! scheduled. FIFO tie-breaking is what keeps the simulation deterministic.
//!
//! Two implementations live here behind [`EventQueue`]:
//!
//! * [`QueueKind::Wheel`] (the default) — a hierarchical timer wheel:
//!   O(1) push, amortised O(1) pop, no sift at any depth. This is the
//!   production event core; at the X-SCALE queue depths (hundreds of
//!   thousands pending) it replaces the heap's O(log n) per-event sift.
//! * [`QueueKind::Heap`] — the original `BinaryHeap` implementation,
//!   preserved verbatim as [`oracle::EventQueue`]. It is the differential
//!   reference: the proptests below drive both implementations over
//!   randomized push/pop/clear sequences and require bit-identical streams.
//!
//! # Wheel design (absolute digit addressing)
//!
//! The wheel keeps an origin `start` (the floor of virtual time as far as
//! the queue is concerned: the time of the last wheel pop). Timestamps are
//! read as base-64 digit strings; an event at time `t >= start` is filed at
//!
//! * level `l` = position of the highest base-64 digit where `t` differs
//!   from `start` (level 0 if `t == start`),
//! * slot `s` = that digit of `t` itself (absolute, not an offset).
//!
//! Seven levels of 64 slots cover any delta below 64^7 ns (~73 virtual
//! minutes); anything farther sits in a far-future overflow heap, and
//! anything scheduled *before* `start` (the engine never does this, but the
//! queue API permits it and the oracle accepts it) sits in a "past" heap
//! that always drains first. Invariants that make pops exact:
//!
//! 1. At every level `l >= 1`, an occupied slot's index is strictly greater
//!    than digit `l` of `start` — so everything at level `l` fires after
//!    everything at levels `< l`, and within a level lower slots fire first.
//! 2. A level-0 slot holds exactly one timestamp (all higher digits equal
//!    `start`'s), so FIFO inside a slot is a seq sort, done lazily at most
//!    once per slot drain.
//! 3. `start` only gains digits `>= 1` by cascading the covering slot down
//!    a level (or by jumping to the overflow minimum when the wheel is
//!    empty), so no stale coarse-level entry can tie with a level-0 entry.
//!
//! Popping "settles" first: cascade the lowest occupied slot of the lowest
//! non-empty level until level 0 is occupied, re-anchoring `start` to each
//! cascaded slot's window base. Each cascaded entry re-files at a strictly
//! lower level, so settling terminates.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Base-64 digits: 6 bits per wheel level.
const SLOT_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Digit mask.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Wheel levels; deltas below `64^LEVELS` ns (~73 min) stay in the wheel.
const LEVELS: usize = 7;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap event queue, kept as the differential oracle
/// for the timer wheel (and selectable at runtime via [`QueueKind::Heap`]).
pub mod oracle {
    use super::Entry;
    use crate::time::SimTime;
    use std::collections::BinaryHeap;

    /// A time-ordered queue of events with stable FIFO ordering at equal
    /// timestamps, backed by a `(time, seq)`-keyed binary heap.
    pub struct EventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        peak_len: usize,
    }

    impl<E> Default for EventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> EventQueue<E> {
        /// An empty queue.
        pub fn new() -> Self {
            EventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                peak_len: 0,
            }
        }

        /// An empty queue with pre-allocated capacity (avoids re-allocation
        /// in hot scheduling loops; see the perf-book guidance on `Vec`
        /// growth).
        pub fn with_capacity(cap: usize) -> Self {
            EventQueue {
                heap: BinaryHeap::with_capacity(cap),
                next_seq: 0,
                peak_len: 0,
            }
        }

        /// Reserve room for at least `additional` more events.
        pub fn reserve(&mut self, additional: usize) {
            self.heap.reserve(additional);
        }

        /// Push an event to fire at `time`. Events pushed for the same
        /// instant pop in push order.
        pub fn push(&mut self, time: SimTime, payload: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, payload });
            self.peak_len = self.peak_len.max(self.heap.len());
        }

        /// Remove and return the earliest event.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.payload))
        }

        /// The timestamp of the earliest event without removing it.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True iff no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// High-water mark of pending events over the queue's lifetime —
        /// the memory-pressure figure the scale experiments report.
        pub fn peak_len(&self) -> usize {
            self.peak_len
        }

        /// Drop every pending event.
        pub fn clear(&mut self) {
            self.heap.clear();
        }
    }
}

/// One wheel bucket. `sorted` means the entries are already in seq order
/// (the common case: direct pushes carry monotone seqs); a cascade can file
/// an older entry behind a newer one, which flips the flag and defers a
/// seq sort to the slot's first pop.
struct Slot<E> {
    entries: VecDeque<Entry<E>>,
    sorted: bool,
}

impl<E> Slot<E> {
    fn new() -> Self {
        Slot {
            entries: VecDeque::new(),
            sorted: true,
        }
    }
}

/// Hierarchical timer wheel; see the module docs for the design.
struct TimerWheel<E> {
    /// `LEVELS * SLOTS` buckets, flat; `slots[l * SLOTS + s]`.
    slots: Vec<Slot<E>>,
    /// Per-level occupancy bitmap: bit `s` set iff `slots[l][s]` is
    /// non-empty. Lowest occupied slot is one `trailing_zeros` away.
    occupied: [u64; LEVELS],
    /// Wheel origin in ns: the time of the last wheel pop (never moves
    /// backwards).
    start: u64,
    /// Events scheduled before `start`; always drain before the wheel.
    past: BinaryHeap<Entry<E>>,
    /// Events beyond the wheel horizon (delta >= 64^LEVELS ns).
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    len: usize,
    peak_len: usize,
}

impl<E> TimerWheel<E> {
    fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Slot::new()).collect(),
            occupied: [0; LEVELS],
            start: 0,
            past: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
            peak_len: 0,
        }
    }

    fn with_capacity(cap: usize) -> Self {
        let mut w = Self::new();
        w.reserve(cap);
        w
    }

    /// Pre-pay first-use growth for `additional` pending events. Slot
    /// buckets keep their capacity across drains, so this is a one-time
    /// cost: the hint is spread evenly over the buckets (uneven workloads
    /// still grow a few hot slots, but the bulk of the doubling-realloc
    /// churn is paid here, outside any measured phase) plus a share for
    /// the far-future heap.
    fn reserve(&mut self, additional: usize) {
        let per_slot = additional / (LEVELS * SLOTS);
        if per_slot > 0 {
            for slot in &mut self.slots {
                slot.entries.reserve(per_slot);
            }
        }
        self.overflow.reserve(additional / SLOTS);
    }

    /// Level for time `t` relative to `start`: position of the highest
    /// base-64 digit where they differ (`LEVELS`+ means overflow).
    #[inline]
    fn level_of(t: u64, start: u64) -> usize {
        let x = t ^ start;
        if x == 0 {
            0
        } else {
            (63 - x.leading_zeros()) as usize / SLOT_BITS
        }
    }

    /// File an entry with `time >= start` into a wheel slot or overflow.
    fn wheel_insert(&mut self, e: Entry<E>) {
        let t = e.time.as_nanos();
        debug_assert!(t >= self.start, "wheel_insert below origin");
        let lvl = Self::level_of(t, self.start);
        if lvl >= LEVELS {
            self.overflow.push(e);
            return;
        }
        let s = ((t >> (SLOT_BITS * lvl)) & SLOT_MASK) as usize;
        let slot = &mut self.slots[lvl * SLOTS + s];
        if let Some(back) = slot.entries.back() {
            if back.seq > e.seq {
                slot.sorted = false;
            }
        }
        slot.entries.push_back(e);
        self.occupied[lvl] |= 1 << s;
    }

    fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = Entry { time, seq, payload };
        if time.as_nanos() < self.start {
            self.past.push(e);
        } else {
            self.wheel_insert(e);
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Cascade until level 0 is occupied (or the queue is empty). Callers
    /// must have drained the past heap first.
    fn settle(&mut self) {
        debug_assert!(self.past.is_empty());
        loop {
            let Some(lvl) = self.occupied.iter().position(|&bits| bits != 0) else {
                // Wheel empty: everything pending is far-future. Jump the
                // origin to the overflow minimum and migrate every event
                // now inside the horizon (the minimum itself lands at
                // level 0, so the next iteration terminates).
                let Some(head) = self.overflow.peek() else {
                    return;
                };
                self.start = head.time.as_nanos();
                while let Some(head) = self.overflow.peek() {
                    if Self::level_of(head.time.as_nanos(), self.start) >= LEVELS {
                        break;
                    }
                    let e = self.overflow.pop().expect("peeked above");
                    self.wheel_insert(e);
                }
                continue;
            };
            if lvl == 0 {
                return;
            }
            // Advance the origin to the base of the lowest occupied slot's
            // window, then cascade that slot down. Invariant 1 guarantees
            // the slot index exceeds `start`'s digit, so `start` only moves
            // forward; every re-filed entry lands at a level < lvl.
            let s = self.occupied[lvl].trailing_zeros() as usize;
            let span = SLOT_BITS * (lvl + 1);
            self.start = (self.start & !((1u64 << span) - 1)) | ((s as u64) << (SLOT_BITS * lvl));
            self.occupied[lvl] &= !(1 << s);
            let idx = lvl * SLOTS + s;
            let mut drained = std::mem::take(&mut self.slots[idx].entries);
            self.slots[idx].sorted = true;
            for e in drained.drain(..) {
                self.wheel_insert(e);
            }
            // Hand the buffer back so the slot reuses its capacity.
            self.slots[idx].entries = drained;
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        // Past events precede everything in the wheel (time < start) and
        // must not move the origin backwards.
        if let Some(e) = self.past.pop() {
            self.len -= 1;
            return Some((e.time, e.payload));
        }
        if self.len == 0 {
            return None;
        }
        self.settle();
        let s = self.occupied[0].trailing_zeros() as usize;
        debug_assert!(s < SLOTS, "settle left level 0 empty");
        let slot = &mut self.slots[s];
        if !slot.sorted {
            slot.entries
                .make_contiguous()
                .sort_unstable_by_key(|e| e.seq);
            slot.sorted = true;
        }
        let e = slot.entries.pop_front().expect("occupied bit set");
        if slot.entries.is_empty() {
            self.occupied[0] &= !(1 << s);
        }
        debug_assert!(e.time.as_nanos() >= self.start);
        self.start = e.time.as_nanos();
        self.len -= 1;
        Some((e.time, e.payload))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if let Some(e) = self.past.peek() {
            return Some(e.time);
        }
        if self.len == 0 {
            return None;
        }
        self.settle();
        let s = self.occupied[0].trailing_zeros() as usize;
        // A level-0 slot holds a single timestamp (invariant 2), so the
        // front entry's time is the slot's time even before the seq sort.
        Some(
            self.slots[s]
                .entries
                .front()
                .expect("occupied bit set")
                .time,
        )
    }

    fn clear(&mut self) {
        for lvl in 0..LEVELS {
            let mut bits = self.occupied[lvl];
            while bits != 0 {
                let s = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slot = &mut self.slots[lvl * SLOTS + s];
                slot.entries.clear();
                slot.sorted = true;
            }
            self.occupied[lvl] = 0;
        }
        self.past.clear();
        self.overflow.clear();
        self.len = 0;
        // `start` survives: the origin is a high-water mark of popped time,
        // and later pushes below it are handled by the past heap exactly as
        // the oracle handles them.
    }
}

/// Which event-queue implementation an [`EventQueue`] (and therefore an
/// engine) runs on. The wheel is the default; the heap is kept for
/// differential testing and A/B benchmarking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Hierarchical timer wheel: O(1) push, amortised O(1) pop.
    #[default]
    Wheel,
    /// The original binary heap ([`oracle::EventQueue`]).
    Heap,
}

enum Impl<E> {
    Wheel(TimerWheel<E>),
    Heap(oracle::EventQueue<E>),
}

/// A time-ordered queue of events with stable FIFO ordering at equal
/// timestamps. Dispatches to the timer wheel (default) or the oracle heap;
/// both produce bit-identical pop streams.
pub struct EventQueue<E> {
    imp: Impl<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue on the default implementation (the timer wheel).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default())
    }

    /// An empty queue with pre-allocated capacity (avoids re-allocation in
    /// hot scheduling loops; see the perf-book guidance on `Vec` growth).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_kind(cap, QueueKind::default())
    }

    /// An empty queue on the given implementation.
    pub fn with_kind(kind: QueueKind) -> Self {
        let imp = match kind {
            QueueKind::Wheel => Impl::Wheel(TimerWheel::new()),
            QueueKind::Heap => Impl::Heap(oracle::EventQueue::new()),
        };
        EventQueue { imp }
    }

    /// An empty queue with pre-allocated capacity on the given
    /// implementation.
    pub fn with_capacity_and_kind(cap: usize, kind: QueueKind) -> Self {
        let imp = match kind {
            QueueKind::Wheel => Impl::Wheel(TimerWheel::with_capacity(cap)),
            QueueKind::Heap => Impl::Heap(oracle::EventQueue::with_capacity(cap)),
        };
        EventQueue { imp }
    }

    /// Which implementation this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match &self.imp {
            Impl::Wheel(_) => QueueKind::Wheel,
            Impl::Heap(_) => QueueKind::Heap,
        }
    }

    /// Reserve room for at least `additional` more events (a workload-size
    /// hint; see `Engine::reserve_events`).
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.imp {
            Impl::Wheel(w) => w.reserve(additional),
            Impl::Heap(h) => h.reserve(additional),
        }
    }

    /// Push an event to fire at `time`. Events pushed for the same instant
    /// pop in push order.
    pub fn push(&mut self, time: SimTime, payload: E) {
        match &mut self.imp {
            Impl::Wheel(w) => w.push(time, payload),
            Impl::Heap(h) => h.push(time, payload),
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.imp {
            Impl::Wheel(w) => w.pop(),
            Impl::Heap(h) => h.pop(),
        }
    }

    /// The timestamp of the earliest event without removing it.
    ///
    /// Takes `&mut self` because the wheel may cascade coarse slots to
    /// locate its minimum; the observable state does not change.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.imp {
            Impl::Wheel(w) => w.peek_time(),
            Impl::Heap(h) => h.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            Impl::Wheel(w) => w.len,
            Impl::Heap(h) => h.len(),
        }
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of pending events over the queue's lifetime —
    /// the memory-pressure figure the scale experiments report.
    pub fn peak_len(&self) -> usize {
        match &self.imp {
            Impl::Wheel(w) => w.peak_len,
            Impl::Heap(h) => h.peak_len(),
        }
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        match &mut self.imp {
            Impl::Wheel(w) => w.clear(),
            Impl::Heap(h) => h.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn both() -> [EventQueue<u64>; 2] {
        [
            EventQueue::with_kind(QueueKind::Wheel),
            EventQueue::with_kind(QueueKind::Heap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [
            EventQueue::with_kind(QueueKind::Wheel),
            EventQueue::with_kind(QueueKind::Heap),
        ] {
            q.push(t(30), "c");
            q.push(t(10), "a");
            q.push(t(20), "b");
            assert_eq!(q.pop(), Some((t(10), "a")));
            assert_eq!(q.pop(), Some((t(20), "b")));
            assert_eq!(q.pop(), Some((t(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn equal_times_are_fifo() {
        for mut q in both() {
            for i in 0..100 {
                q.push(t(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t(5), i)));
            }
        }
    }

    #[test]
    fn peak_len_is_a_high_water_mark() {
        for mut q in both() {
            assert_eq!(q.peak_len(), 0);
            q.push(t(1), 0);
            q.push(t(2), 0);
            q.pop();
            q.push(t(3), 0);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peak_len(), 2, "peak holds after pops");
            q.push(t(4), 0);
            q.push(t(5), 0);
            assert_eq!(q.peak_len(), 4);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in both() {
            q.push(t(7), 0);
            assert_eq!(q.peek_time(), Some(t(7)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn default_kind_is_wheel() {
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Wheel);
        assert_eq!(EventQueue::<()>::with_capacity(8).kind(), QueueKind::Wheel);
        assert_eq!(
            EventQueue::<()>::with_kind(QueueKind::Heap).kind(),
            QueueKind::Heap
        );
    }

    /// Same-tick FIFO must survive a cascade boundary: events scheduled for
    /// one instant from *different* wheel origins (some filed coarse, some
    /// filed at level 0 after cascades moved the origin closer) still pop
    /// in push order.
    #[test]
    fn same_tick_fifo_across_cascade_boundaries() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        let target = 3 * 64 * 64 + 17; // level 2 away from origin 0
        q.push(t(target), 0u64); // filed coarse
        q.push(t(target), 1); // same slot, still coarse
        q.push(t(5), 2); // near event to pop first
        assert_eq!(q.pop(), Some((t(5), 2)));
        // Origin is now 5; the target is still two cascades away. Push more
        // events for the same tick — they file coarse too, but with higher
        // seqs; after the cascade everything meets in one level-0 slot.
        q.push(t(target), 3);
        assert_eq!(q.pop(), Some((t(target), 0)));
        // Origin now sits exactly on `target`: a same-tick push lands at
        // level 0 directly, *behind* the cascaded survivors.
        q.push(t(target), 4);
        assert_eq!(q.pop(), Some((t(target), 1)));
        assert_eq!(q.pop(), Some((t(target), 3)));
        assert_eq!(q.pop(), Some((t(target), 4)));
        assert_eq!(q.pop(), None);
    }

    /// Events beyond the 64^7 ns wheel horizon start in the overflow heap
    /// and must migrate into the wheel — preserving order — once everything
    /// nearer has drained.
    #[test]
    fn far_future_events_migrate_from_overflow() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        let horizon = 64u64.pow(LEVELS as u32);
        q.push(t(horizon + 100), 0u64);
        q.push(t(horizon + 100), 1);
        q.push(t(horizon + 5), 2);
        q.push(t(3), 3);
        q.push(SimTime::MAX, 4); // sentinel stays far-future for a long time
        assert_eq!(q.pop(), Some((t(3), 3)));
        assert_eq!(q.peek_time(), Some(t(horizon + 5)));
        assert_eq!(q.pop(), Some((t(horizon + 5), 2)));
        assert_eq!(q.pop(), Some((t(horizon + 100), 0)));
        assert_eq!(q.pop(), Some((t(horizon + 100), 1)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 4)));
        assert_eq!(q.pop(), None);
    }

    /// `clear()` in the middle of a cascade-heavy drain must empty the
    /// queue completely and leave it reusable (origin intact, later pushes
    /// still ordered — including pushes before the old origin).
    #[test]
    fn clear_mid_cascade_leaves_queue_reusable() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        for i in 0..500u64 {
            q.push(t(i * 4099), i); // spread across several levels
        }
        for _ in 0..123 {
            q.pop(); // force cascades, advance the origin
        }
        let origin = q.peek_time().unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
        // Reuse: a push before the old origin and one after must both pop,
        // in time order, exactly like the oracle.
        q.push(origin + crate::time::SimDuration::from_nanos(10), 1000);
        q.push(t(0), 1001);
        assert_eq!(q.pop(), Some((t(0), 1001)));
        assert_eq!(
            q.pop(),
            Some((origin + crate::time::SimDuration::from_nanos(10), 1000))
        );
    }

    /// `peek_time` is stable: repeated peeks agree, peek equals the next
    /// pop's time, and interleaved far-future pushes don't perturb it.
    #[test]
    fn peek_time_is_stable() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        q.push(t(1_000_000), 0u64);
        q.push(t(64u64.pow(7) * 2), 1);
        let first = q.peek_time();
        assert_eq!(first, q.peek_time(), "peek must be idempotent");
        q.push(t(2_000_000), 2); // later than the minimum: no change
        assert_eq!(q.peek_time(), first);
        let (pt, _) = q.pop().unwrap();
        assert_eq!(Some(pt), first, "peek must equal the next pop");
        // An earlier push moves the peek (and lands in the past heap if
        // it's behind the origin).
        q.push(t(7), 3);
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.pop(), Some((t(7), 3)));
    }

    /// Exhaustive differential check on a fixed dense workload: every pop,
    /// peek and len must match the oracle heap exactly.
    #[test]
    fn wheel_matches_oracle_on_dense_churn() {
        let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..5_000u64 {
            let r = step();
            let time = match r % 4 {
                0 => r % 1_000,
                1 => r % 1_000_000,
                2 => r % (1 << 40),
                _ => r % (1 << 50), // beyond the wheel horizon
            };
            wheel.push(t(time), i);
            heap.push(t(time), i);
            if r % 3 == 0 {
                assert_eq!(wheel.pop(), heap.pop());
            }
            assert_eq!(wheel.peek_time(), heap.peek_time());
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Map a raw random word to a timestamp drawn from mixed horizons:
    /// sub-microsecond ticks, mid-range, near the wheel horizon, beyond it,
    /// and the far-future sentinel.
    fn mixed_time(raw: u64) -> u64 {
        match raw % 7 {
            0 => raw % 64,
            1 => raw % 4_096,
            2 => raw % 1_000_000,
            3 => raw % (1u64 << 30),
            4 => raw % (1u64 << 42), // around the wheel horizon
            5 => raw % (1u64 << 55), // overflow territory
            _ => {
                if raw % 31 == 0 {
                    u64::MAX
                } else {
                    raw % (1u64 << 45)
                }
            }
        }
    }

    proptest! {
        /// Differential oracle: the wheel and the heap agree on every pop,
        /// peek and len over randomized push/pop/clear sequences with mixed
        /// near/far horizons (including times behind already-popped time,
        /// which the public API permits).
        #[test]
        fn prop_wheel_matches_oracle(
            ops in proptest::collection::vec((0u64..10, any::<u64>()), 0..400)
        ) {
            let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            let mut payload = 0u64;
            for &(op, raw) in &ops {
                match op {
                    0..=4 => {
                        let time = t(mixed_time(raw));
                        wheel.push(time, payload);
                        heap.push(time, payload);
                        payload += 1;
                    }
                    5..=7 => {
                        prop_assert_eq!(wheel.pop(), heap.pop());
                    }
                    8 => {
                        prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    }
                    _ => {
                        if raw % 13 == 0 {
                            wheel.clear();
                            heap.clear();
                        } else {
                            prop_assert_eq!(wheel.pop(), heap.pop());
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len());
                prop_assert_eq!(wheel.is_empty(), heap.is_empty());
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            }
            loop {
                let (w, h) = (wheel.pop(), heap.pop());
                prop_assert_eq!(&w, &h);
                if w.is_none() {
                    break;
                }
            }
        }

        /// Popping yields a non-decreasing time sequence, and FIFO order
        /// among entries with equal timestamps — on both implementations.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            for mut q in [
                EventQueue::with_kind(QueueKind::Wheel),
                EventQueue::with_kind(QueueKind::Heap),
            ] {
                for (i, &ns) in times.iter().enumerate() {
                    q.push(t(ns), i as u64);
                }
                let mut last: Option<(SimTime, u64)> = None;
                while let Some((time, idx)) = q.pop() {
                    if let Some((lt, lidx)) = last {
                        prop_assert!(time >= lt);
                        if time == lt {
                            prop_assert!(idx > lidx, "FIFO violated at equal time");
                        }
                    }
                    last = Some((time, idx));
                }
            }
        }

        /// len tracks pushes and pops exactly — on both implementations.
        #[test]
        fn prop_len(times in proptest::collection::vec(0u64..1000, 0..100)) {
            for mut q in [
                EventQueue::with_kind(QueueKind::Wheel),
                EventQueue::with_kind(QueueKind::Heap),
            ] {
                for &ns in &times {
                    q.push(t(ns), 0u64);
                }
                prop_assert_eq!(q.len(), times.len());
                let mut popped = 0usize;
                while q.pop().is_some() {
                    popped += 1;
                }
                prop_assert_eq!(popped, times.len());
            }
        }
    }
}
