//! Stable priority event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders events
//! by `(time, sequence-number)`, so that two events scheduled for the same
//! instant fire in the order they were scheduled. FIFO tie-breaking is what
//! keeps the simulation deterministic: `BinaryHeap` alone makes no ordering
//! promise for equal keys.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events with stable FIFO ordering at equal
/// timestamps.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            peak_len: 0,
        }
    }

    /// An empty queue with pre-allocated capacity (avoids re-allocation in
    /// hot scheduling loops; see the perf-book guidance on `Vec` growth).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            peak_len: 0,
        }
    }

    /// Push an event to fire at `time`. Events pushed for the same instant
    /// pop in push order.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of pending events over the queue's lifetime —
    /// the memory-pressure figure the scale experiments report.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peak_len_is_a_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(t(1), ());
        q.push(t(2), ());
        q.pop();
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_len(), 2, "peak holds after pops");
        q.push(t(4), ());
        q.push(t(5), ());
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        /// Popping yields a non-decreasing time sequence, and FIFO order
        /// among entries with equal timestamps.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &ns) in times.iter().enumerate() {
                q.push(t(ns), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((time, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(time >= lt);
                    if time == lt {
                        prop_assert!(idx > lidx, "FIFO violated at equal time");
                    }
                }
                last = Some((time, idx));
            }
        }

        /// len tracks pushes and pops exactly.
        #[test]
        fn prop_len(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for &ns in &times {
                q.push(t(ns), ());
            }
            prop_assert_eq!(q.len(), times.len());
            let mut popped = 0usize;
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
        }
    }
}
