//! Metric recorders used by every experiment harness.
//!
//! The paper reports mean response times (Figures 4 & 6), CPU-share time
//! series (Figure 5), availability under attack (Section 5) and absolute
//! durations (Table 2). The recorders here cover those shapes:
//!
//! * [`Counter`] — monotone event counts (requests served per node).
//! * [`Summary`] — running mean/min/max/variance without storing samples.
//! * [`Histogram`] — log-bucketed latency distribution with percentile
//!   queries (HDR-style: exact bucket boundaries, bounded relative error).
//! * [`TimeSeries`] — `(t, value)` samples for "versus time" plots.
//! * [`WindowedMean`] — per-window averages (Figure 5's per-second shares).
//! * [`Availability`] — up/down interval tracking for the attack-isolation
//!   experiment.

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Running summary statistics (Welford's algorithm — numerically stable,
/// O(1) memory).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel sweeps reduce with
    /// this; Chan et al.'s pairwise update).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram over non-negative `u64` values (we use
/// nanoseconds). Buckets have bounded relative width (~1/32), so
/// percentile queries carry bounded relative error while the memory
/// footprint stays fixed.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// counts[exp][sub]: values with bit-length `exp`, linearly
    /// sub-bucketed into `SUBBUCKETS` slots.
    counts: Vec<[u64; Histogram::SUBBUCKETS]>,
    total: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    const SUBBUCKETS: usize = 32;

    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        Histogram {
            counts: vec![[0; Self::SUBBUCKETS]; 65],
            total: 0,
            sum: 0,
        }
    }

    fn bucket(value: u64) -> (usize, usize) {
        if value == 0 {
            return (0, 0);
        }
        let exp = 64 - value.leading_zeros() as usize; // bit length, 1..=64
        if exp <= 5 {
            // Values < 32 go into exact buckets under exponent 0.
            (0, value as usize)
        } else {
            let shift = exp - 6; // top 6 bits: 1 implicit + 5 sub-bucket
            let sub = ((value >> shift) & 0x1f) as usize;
            (exp - 5, sub)
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let (e, s) = Self::bucket(value);
        self.counts[e][s] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (returns a bucket's lower bound,
    /// so the result is `<=` the true quantile and within one bucket width
    /// of it). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (e, subs) in self.counts.iter().enumerate() {
            for (s, &c) in subs.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                seen += c;
                if seen >= target {
                    return Self::bucket_floor(e, s);
                }
            }
        }
        Self::bucket_floor(64, Self::SUBBUCKETS - 1)
    }

    fn bucket_floor(exp: usize, sub: usize) -> u64 {
        if exp == 0 {
            sub as u64
        } else {
            let shift = exp - 1;
            (32u64 + sub as u64) << shift
        }
    }

    /// Median shortcut.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile shortcut.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += *y;
            }
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// A `(time, value)` series for "versus time" plots (Figure 5).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Samples are expected in non-decreasing time order
    /// (the engine guarantees this when recording from event handlers).
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| t >= lt),
            "time series must be recorded in order"
        );
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (unweighted).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean of values with `t >= from`.
    pub fn mean_since(&self, from: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.points {
            if t >= from {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Accumulates values into fixed-width time windows and reports the mean
/// per window — Figure 5's per-interval CPU shares.
#[derive(Clone, Debug)]
pub struct WindowedMean {
    width: SimDuration,
    current_window: u64,
    acc: f64,
    n: u64,
    finished: Vec<(SimTime, f64)>,
}

impl WindowedMean {
    /// Windows of the given width starting at t=0. Panics on a zero width.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        WindowedMean {
            width,
            current_window: 0,
            acc: 0.0,
            n: 0,
            finished: Vec::new(),
        }
    }

    fn window_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.width.as_nanos()
    }

    /// Record a sample at time `t`. Windows between the previous sample and
    /// `t` that received no samples are emitted with a mean of 0.
    pub fn record(&mut self, t: SimTime, v: f64) {
        let w = self.window_of(t);
        while self.current_window < w {
            self.flush_current();
        }
        self.acc += v;
        self.n += 1;
    }

    fn flush_current(&mut self) {
        let end = SimTime::from_nanos((self.current_window + 1) * self.width.as_nanos());
        let mean = if self.n == 0 {
            0.0
        } else {
            self.acc / self.n as f64
        };
        self.finished.push((end, mean));
        self.current_window += 1;
        self.acc = 0.0;
        self.n = 0;
    }

    /// Close the window containing `now` and return all completed windows
    /// as `(window-end-time, mean)`.
    pub fn finish(mut self, now: SimTime) -> Vec<(SimTime, f64)> {
        let w = self.window_of(now);
        while self.current_window <= w {
            self.flush_current();
        }
        self.finished
    }

    /// Completed windows so far without consuming the recorder.
    pub fn completed(&self) -> &[(SimTime, f64)] {
        &self.finished
    }
}

/// Tracks up/down state over time and reports total uptime fraction —
/// used by the attack-isolation experiment ("the honeypot is constantly
/// attacked and crashed; the web content service is not affected").
#[derive(Clone, Debug)]
pub struct Availability {
    up: bool,
    since: SimTime,
    up_total: SimDuration,
    down_total: SimDuration,
    transitions: u32,
}

impl Availability {
    /// Start tracking at `t0` in the given state.
    pub fn starting(t0: SimTime, up: bool) -> Self {
        Availability {
            up,
            since: t0,
            up_total: SimDuration::ZERO,
            down_total: SimDuration::ZERO,
            transitions: 0,
        }
    }

    /// Record a state change at time `t`. Idempotent if the state is
    /// unchanged.
    pub fn set(&mut self, t: SimTime, up: bool) {
        if up == self.up {
            return;
        }
        self.accumulate(t);
        self.up = up;
        self.transitions += 1;
    }

    fn accumulate(&mut self, t: SimTime) {
        let span = t.saturating_since(self.since);
        if self.up {
            self.up_total += span;
        } else {
            self.down_total += span;
        }
        self.since = t;
    }

    /// Close the record at `t` and return the uptime fraction in `[0,1]`.
    /// Returns 1.0 if no time has elapsed.
    pub fn uptime_fraction(mut self, t: SimTime) -> f64 {
        self.accumulate(t);
        let total = self.up_total + self.down_total;
        if total.is_zero() {
            1.0
        } else {
            self.up_total.as_secs_f64() / total.as_secs_f64()
        }
    }

    /// Number of up/down transitions observed.
    pub fn transitions(&self) -> u32 {
        self.transitions
    }

    /// Current state.
    pub fn is_up(&self) -> bool {
        self.up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        // Merging an empty summary is a no-op; merging into empty copies.
        let mut e = Summary::new();
        e.merge(&whole);
        assert_eq!(e.count(), whole.count());
        whole.merge(&Summary::new());
        assert_eq!(whole.count(), xs.len() as u64);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        // Median of 0..=31 — rank 16 is value 15.
        assert_eq!(h.median(), 15);
    }

    #[test]
    fn histogram_quantile_bounded_error() {
        let mut h = Histogram::new();
        // Values spanning several orders of magnitude.
        for i in 1..=10_000u64 {
            h.record(i * 1000);
        }
        let q50 = h.quantile(0.5) as f64;
        let expect = 5_000_000.0;
        assert!((q50 - expect).abs() / expect < 0.05, "q50 {q50}");
        let q99 = h.p99() as f64;
        assert!((q99 - 9_900_000.0).abs() / 9_900_000.0 < 0.05, "q99 {q99}");
        assert!((h.mean() - 5_000_500.0 * 1.0).abs() / 5_000_500.0 < 1e-9);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..500u64 {
            a.record(i);
            b.record(i + 500);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let q50 = a.quantile(0.5);
        assert!((400..=520).contains(&q50), "q50 {q50}");
    }

    #[test]
    fn timeseries_means() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 1.0);
        ts.push(SimTime::from_secs(2), 2.0);
        ts.push(SimTime::from_secs(3), 6.0);
        assert_eq!(ts.len(), 3);
        assert!((ts.mean() - 3.0).abs() < 1e-12);
        assert!((ts.mean_since(SimTime::from_secs(2)) - 4.0).abs() < 1e-12);
        assert_eq!(ts.mean_since(SimTime::from_secs(10)), 0.0);
    }

    #[test]
    fn windowed_mean_basic() {
        let mut w = WindowedMean::new(SimDuration::from_secs(1));
        w.record(SimTime::from_nanos(100), 2.0);
        w.record(SimTime::from_nanos(200), 4.0);
        w.record(SimTime::from_secs(1) + SimDuration::from_nanos(1), 10.0);
        let out = w.finish(SimTime::from_secs(2));
        assert_eq!(out.len(), 3);
        assert!((out[0].1 - 3.0).abs() < 1e-12);
        assert!((out[1].1 - 10.0).abs() < 1e-12);
        assert_eq!(out[2].1, 0.0); // empty window
    }

    #[test]
    fn windowed_mean_gap_emits_zero_windows() {
        let mut w = WindowedMean::new(SimDuration::from_secs(1));
        w.record(SimTime::from_nanos(1), 1.0);
        w.record(SimTime::from_secs(3), 5.0);
        let out = w.finish(SimTime::from_secs(4));
        assert_eq!(out.len(), 5);
        assert_eq!(out[1].1, 0.0);
        assert_eq!(out[2].1, 0.0);
        assert!((out[3].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn windowed_mean_zero_width_panics() {
        WindowedMean::new(SimDuration::ZERO);
    }

    #[test]
    fn availability_tracks_fraction() {
        let mut a = Availability::starting(SimTime::ZERO, true);
        a.set(SimTime::from_secs(6), false);
        a.set(SimTime::from_secs(8), true);
        assert_eq!(a.transitions(), 2);
        assert!(a.is_up());
        let f = a.uptime_fraction(SimTime::from_secs(10));
        assert!((f - 0.8).abs() < 1e-12, "uptime {f}");
    }

    #[test]
    fn availability_idempotent_set() {
        let mut a = Availability::starting(SimTime::ZERO, true);
        a.set(SimTime::from_secs(1), true);
        assert_eq!(a.transitions(), 0);
        let f = a.uptime_fraction(SimTime::from_secs(2));
        assert_eq!(f, 1.0);
    }

    #[test]
    fn availability_zero_span() {
        let a = Availability::starting(SimTime::from_secs(5), false);
        assert_eq!(a.uptime_fraction(SimTime::from_secs(5)), 1.0);
    }

    proptest! {
        /// Histogram quantiles are monotone in q and bracket recorded
        /// values within a bucket's relative error.
        #[test]
        fn prop_histogram_quantile_monotone(
            values in proptest::collection::vec(1u64..1_000_000_000, 1..300)
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut last = 0u64;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let v = h.quantile(q);
                prop_assert!(v >= last, "quantile not monotone");
                last = v;
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            // q=1 lower bound must be <= max and within 1/32 relative error.
            let max = *sorted.last().unwrap();
            let q1 = h.quantile(1.0);
            prop_assert!(q1 <= max);
            prop_assert!(q1 as f64 >= max as f64 * (1.0 - 1.0/16.0) - 1.0,
                "q1 {} too far below max {}", q1, max);
        }

        /// Welford summary matches naive mean/variance.
        #[test]
        fn prop_summary_matches_naive(
            values in proptest::collection::vec(-1e6f64..1e6, 2..200)
        ) {
            let mut s = Summary::new();
            for &v in &values {
                s.record(v);
            }
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        }
    }
}
