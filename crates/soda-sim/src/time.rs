//! Virtual time.
//!
//! The simulation clock counts **nanoseconds** from the start of the run in
//! a `u64`, which covers ~584 years of simulated time — far beyond any SODA
//! experiment. Nanosecond resolution lets the syscall cost model (Table 4
//! of the paper) express single CPU cycles at multi-GHz clock rates without
//! rounding collapse.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock (nanoseconds since t=0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// sentinel for events that are currently unscheduled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since t=0.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since t=0 (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since t=0 (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since t=0 as a float (lossy above 2^53 ns, fine for plots).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`. Saturates to zero if `earlier`
    /// is in the future, matching `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative and non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to
    /// [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float, e.g. a slow-down factor.
    /// Clamps to the representable range.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Integer division into `n` equal parts (truncating). `n == 0` yields
    /// [`SimDuration::MAX`] as an "effectively never" sentinel rather than
    /// panicking inside event handlers.
    pub const fn div_int(self, n: u64) -> SimDuration {
        match self.0.checked_div(n) {
            Some(v) => SimDuration(v),
            None => SimDuration::MAX,
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        self.div_int(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        let d = SimDuration::from_nanos(5) - SimDuration::from_nanos(9);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_nanos(1),
            SimDuration::MAX
        );
    }

    #[test]
    fn time_difference() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a - b, SimDuration::from_nanos(60));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), Some(SimDuration::from_nanos(60)));
        assert_eq!(b.checked_since(a), None);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1_500);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(1.5).as_millis(), 150);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn div_int_by_zero_is_sentinel() {
        assert_eq!(SimDuration::from_secs(1).div_int(0), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(1).div_int(4).as_millis(), 250);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
