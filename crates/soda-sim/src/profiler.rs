//! Engine self-profiling: wall-clock cost per event kind.
//!
//! Every scheduled event carries a static kind tag (`"nic_pump"`,
//! `"client_arrival"`, …; untagged events fall into `"event"`). When
//! profiling is enabled, [`crate::Engine::step`] reads a monotonic
//! wall clock around each handler and feeds the elapsed time here, so a
//! run can report where the *host* CPU went — the per-event-kind cost
//! table that sizes parallel-epoch batching (ROADMAP item 2).
//!
//! Wall-clock readings never enter simulation state, the RNG, or event
//! ordering: profiling on versus off is trajectory-identical, and the
//! disabled path is one branch with no heap allocation (locked in by
//! `tests/obs_no_alloc.rs`).

use std::collections::BTreeMap;
use std::time::Duration;

/// Accumulated cost of one event kind.
#[derive(Clone, Copy, Debug, Default)]
struct KindCost {
    count: u64,
    total: Duration,
    max: Duration,
}

/// Per-event-kind wall-clock accumulator. Disabled by default.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    costs: BTreeMap<&'static str, KindCost>,
}

impl Profiler {
    /// A profiler that records nothing.
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// A recording profiler.
    pub fn enabled() -> Self {
        Profiler {
            enabled: true,
            costs: BTreeMap::new(),
        }
    }

    /// True if this profiler records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Feed one handler execution (no-op when disabled). Allocates only
    /// when a kind is seen for the first time.
    #[inline]
    pub fn observe(&mut self, kind: &'static str, elapsed: Duration) {
        if !self.enabled {
            return;
        }
        let c = self.costs.entry(kind).or_default();
        c.count += 1;
        c.total += elapsed;
        c.max = c.max.max(elapsed);
    }

    /// Number of distinct kinds observed.
    pub fn kinds(&self) -> usize {
        self.costs.len()
    }

    /// The cost table, most expensive kind (by total wall time) first.
    pub fn report(&self) -> Vec<ProfileEntry> {
        let mut out: Vec<ProfileEntry> = self
            .costs
            .iter()
            .map(|(&kind, c)| ProfileEntry {
                kind,
                count: c.count,
                total_ns: c.total.as_nanos() as u64,
                mean_ns: if c.count == 0 {
                    0.0
                } else {
                    c.total.as_nanos() as f64 / c.count as f64
                },
                max_ns: c.max.as_nanos() as u64,
            })
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.kind.cmp(b.kind)));
        out
    }
}

/// One row of the per-event-kind cost table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileEntry {
    /// The static kind tag events were scheduled under.
    pub kind: &'static str,
    /// Handlers executed.
    pub count: u64,
    /// Total wall-clock spent in handlers of this kind.
    pub total_ns: u64,
    /// Mean wall-clock per handler.
    pub mean_ns: f64,
    /// Worst single handler.
    pub max_ns: u64,
}

impl serde::Serialize for ProfileEntry {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "kind".to_string(),
                serde::Value::String(self.kind.to_string()),
            ),
            ("count".to_string(), serde::Value::U64(self.count)),
            ("total_ns".to_string(), serde::Value::U64(self.total_ns)),
            ("mean_ns".to_string(), serde::Value::F64(self.mean_ns)),
            ("max_ns".to_string(), serde::Value::U64(self.max_ns)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observe_is_a_no_op() {
        let mut p = Profiler::disabled();
        p.observe("x", Duration::from_micros(5));
        assert_eq!(p.kinds(), 0);
        assert!(p.report().is_empty());
    }

    #[test]
    fn report_sorts_by_total_cost() {
        let mut p = Profiler::enabled();
        p.observe("cheap", Duration::from_nanos(10));
        p.observe("dear", Duration::from_micros(10));
        p.observe("cheap", Duration::from_nanos(20));
        let r = p.report();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].kind, "dear");
        assert_eq!(r[1].kind, "cheap");
        assert_eq!(r[1].count, 2);
        assert_eq!(r[1].total_ns, 30);
        assert_eq!(r[1].max_ns, 20);
        assert!((r[1].mean_ns - 15.0).abs() < 1e-9);
    }
}
