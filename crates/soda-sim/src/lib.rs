//! # soda-sim
//!
//! Deterministic discrete-event simulation (DES) engine underpinning the
//! SODA reproduction.
//!
//! The HPDC'03 SODA paper evaluates its architecture on two physical Linux
//! hosts connected by a 100 Mbps LAN. This crate provides the substrate
//! that replaces that testbed: a virtual clock with nanosecond resolution,
//! a stable event queue, a seeded random-number generator with the
//! distributions the workload generators need, metric recorders
//! (histograms, time series, availability trackers) used by every
//! experiment harness, a structured observability layer ([`obs`]:
//! typed events, virtual-time spans, labeled metrics registry, sampled
//! causal traces), and a per-event-kind wall-clock self-profiler
//! ([`profiler`]).
//!
//! Design goals:
//!
//! * **Determinism** — identical seeds and inputs produce identical event
//!   orderings and metrics, so every table and figure of the paper can be
//!   regenerated bit-for-bit.
//! * **Zero unsafe** — the engine is plain safe Rust.
//! * **Engine/state separation** — [`Engine<S>`] is generic over the
//!   simulated world `S`; events are boxed closures over `(&mut S, &mut
//!   Ctx)`. Substrate crates (host OS, network, VMM) expose *time models*
//!   and *advance* methods; the world crate wires them into events.
//!
//! ## Quick example
//!
//! ```
//! use soda_sim::{Engine, SimDuration};
//!
//! #[derive(Default)]
//! struct World { ticks: u32 }
//!
//! let mut engine = Engine::new(World::default());
//! engine.schedule_in(SimDuration::from_millis(10), |w: &mut World, ctx| {
//!     w.ticks += 1;
//!     ctx.schedule_in(SimDuration::from_millis(10), |w: &mut World, _| {
//!         w.ticks += 1;
//!     });
//! });
//! engine.run_to_completion();
//! assert_eq!(engine.state().ticks, 2);
//! assert_eq!(engine.now().as_millis(), 20);
//! ```

pub mod engine;
pub mod faults;
pub mod metrics;
pub mod obs;
pub mod par;
pub mod profiler;
pub mod queue;
pub mod retry;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Ctx, Engine, EventFn, DEFAULT_EVENT_KIND};
pub use faults::{ChaosProfile, FailureDomain, FaultInjection, FaultPlan, FaultSpec};
pub use metrics::{Availability, Counter, Histogram, Summary, TimeSeries, WindowedMean};
pub use obs::{
    DrainedEvents, Event, Labels, MetricHandle, MetricKind, MetricValue, MetricsRegistry, Obs,
    RegistrySnapshot, Severity, SpanGuard, SpanId, TimedEvent, TraceId, TraceRecord, TraceRef,
    TraceSpan, Tracer,
};
pub use par::{
    run_cells, run_cells_with, CellPort, CellWorld, EngineKind, EpochPolicy, EpochStats,
    RemoteEvent,
};
pub use profiler::{ProfileEntry, Profiler};
pub use queue::{EventQueue, QueueKind};
pub use retry::BackoffPolicy;
pub use rng::{SimRng, Zipf};
pub use stats::{linear_fit, mean_ci95, LinearFit, MeanCi};
pub use time::{SimDuration, SimTime};
