//! The discrete-event engine.
//!
//! [`Engine<S>`] owns the simulated world `S`, the virtual clock, the event
//! queue and a deterministic RNG. Events are boxed `FnOnce(&mut S, &mut
//! Ctx)` closures; from inside a handler, new events are scheduled through
//! the [`Ctx`] (the queue itself cannot be borrowed while the handler runs,
//! so `Ctx` buffers the new events and the engine drains the buffer after
//! each handler returns — preserving FIFO order at equal timestamps).
//!
//! Every event carries a static *kind* tag (`schedule_at_as` & co.; the
//! untagged helpers file under [`DEFAULT_EVENT_KIND`]). Kinds cost one
//! pointer per queued event and buy the self-profiler its per-kind
//! wall-clock cost table ([`Engine::enable_profiler`]).

use crate::profiler::{ProfileEntry, Profiler};
use crate::queue::{EventQueue, QueueKind};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The type of a scheduled event handler.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Ctx<S>)>;

/// The kind tag events scheduled without an explicit kind file under.
pub const DEFAULT_EVENT_KIND: &str = "event";

/// Handler-side view of the engine: the current time, the RNG, and a
/// buffer for newly scheduled events.
pub struct Ctx<'a, S> {
    now: SimTime,
    rng: &'a mut SimRng,
    pending: Vec<(SimTime, &'static str, EventFn<S>)>,
    stop_requested: bool,
}

impl<'a, S> Ctx<'a, S> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Schedule `f` to run at absolute time `at`. Times in the past clamp
    /// to "now" (they run after all other events already queued for now).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at_as(DEFAULT_EVENT_KIND, at, f);
    }

    /// Schedule `f` to run `delay` after now.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedule `f` at absolute time `at` under a profiling kind tag.
    pub fn schedule_at_as<F>(&mut self, kind: &'static str, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        let at = at.max(self.now);
        self.pending.push((at, kind, Box::new(f)));
    }

    /// Schedule `f` after `delay` under a profiling kind tag.
    pub fn schedule_in_as<F>(&mut self, kind: &'static str, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at_as(kind, self.now + delay, f);
    }

    /// Ask the engine to stop after the current handler returns. Pending
    /// events stay queued (useful for "measure for T seconds then stop"
    /// experiment drivers).
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }
}

/// A deterministic discrete-event simulation engine over world state `S`.
pub struct Engine<S> {
    state: S,
    now: SimTime,
    queue: EventQueue<(&'static str, EventFn<S>)>,
    rng: SimRng,
    profiler: Profiler,
    executed: u64,
    stopped: bool,
}

impl<S> Engine<S> {
    /// A new engine at t=0 with a fixed default seed. Use
    /// [`Engine::with_seed`] for experiments that sweep seeds.
    pub fn new(state: S) -> Self {
        Self::with_seed(state, 0x5eed_50da)
    }

    /// A new engine at t=0 whose RNG is seeded with `seed`, on the default
    /// event-queue implementation (the timer wheel).
    pub fn with_seed(state: S, seed: u64) -> Self {
        Self::with_seed_queue(state, seed, QueueKind::default())
    }

    /// A new engine at t=0 whose RNG is seeded with `seed`, on an explicit
    /// event-queue implementation. The determinism tests replay identical
    /// workloads on both kinds and require identical trajectories.
    pub fn with_seed_queue(state: S, seed: u64, queue: QueueKind) -> Self {
        Engine {
            state,
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity_and_kind(1024, queue),
            rng: SimRng::new(seed),
            profiler: Profiler::disabled(),
            executed: 0,
            stopped: false,
        }
    }

    /// Which event-queue implementation this engine runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Reserve queue room for roughly `additional` more pending events —
    /// a workload-size hint so large experiments pay their queue growth
    /// once, up front, instead of re-allocating mid-run.
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the world (for setup and for reading metrics
    /// out between runs).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consume the engine, returning the world.
    pub fn into_state(self) -> S {
        self.state
    }

    /// The engine RNG (e.g. to derive workload seeds during setup).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Switch on the self-profiler: each executed handler's wall-clock
    /// cost is accumulated per event kind. Wall readings never touch
    /// simulation state, so profiling cannot perturb a trajectory.
    pub fn enable_profiler(&mut self) {
        self.profiler = Profiler::enabled();
    }

    /// The self-profiler (disabled unless [`Engine::enable_profiler`]).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The per-event-kind cost table, most expensive kind first (empty
    /// when the profiler is disabled).
    pub fn profile_report(&self) -> Vec<ProfileEntry> {
        self.profiler.report()
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still queued.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of queued events over the run — how deep the
    /// event heap got at its worst (the scale sweep reports this).
    pub fn peak_events_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// True if a handler called [`Ctx::request_stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Clear a previous stop request so the engine can be driven further.
    pub fn clear_stop(&mut self) {
        self.stopped = false;
    }

    /// Schedule `f` at absolute time `at` (clamped to now if in the past).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at_as(DEFAULT_EVENT_KIND, at, f);
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedule `f` at absolute time `at` under a profiling kind tag.
    pub fn schedule_at_as<F>(&mut self, kind: &'static str, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        let at = at.max(self.now);
        self.queue.push(at, (kind, Box::new(f)));
    }

    /// Schedule `f` after `delay` under a profiling kind tag.
    pub fn schedule_in_as<F>(&mut self, kind: &'static str, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at_as(kind, self.now + delay, f);
    }

    /// Schedule `f` to run every `period` starting at `start`, until it
    /// returns `false` or the clock reaches `end`. Periods must be
    /// positive. This is the sampling-loop helper the "versus time"
    /// experiments use.
    pub fn schedule_periodic<F>(&mut self, start: SimTime, period: SimDuration, end: SimTime, f: F)
    where
        F: FnMut(&mut S, &mut Ctx<S>) -> bool + 'static,
    {
        assert!(!period.is_zero(), "periodic events need a positive period");
        fn arm<S, F>(period: SimDuration, end: SimTime, mut f: F) -> EventFn<S>
        where
            F: FnMut(&mut S, &mut Ctx<S>) -> bool + 'static,
        {
            Box::new(move |s: &mut S, ctx: &mut Ctx<S>| {
                if ctx.now() >= end {
                    return;
                }
                if f(s, ctx) {
                    let next = ctx.now() + period;
                    if next < end {
                        let ev = arm(period, end, f);
                        ctx.pending.push((next, "periodic", ev));
                    }
                }
            })
        }
        let at = start.max(self.now);
        self.queue.push(at, ("periodic", arm(period, end, f)));
    }

    /// Execute the single earliest event. Returns `false` if the queue was
    /// empty or a stop was requested.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some((time, (kind, event))) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue went back in time");
        self.now = time;
        let mut ctx = Ctx {
            now: time,
            rng: &mut self.rng,
            pending: Vec::new(),
            stop_requested: false,
        };
        let started = self.profiler.is_enabled().then(std::time::Instant::now);
        event(&mut self.state, &mut ctx);
        if let Some(t0) = started {
            self.profiler.observe(kind, t0.elapsed());
        }
        let Ctx {
            pending,
            stop_requested,
            ..
        } = ctx;
        for (at, k, f) in pending {
            self.queue.push(at, (k, f));
        }
        self.stopped = stop_requested;
        self.executed += 1;
        true
    }

    /// Run until the queue drains or a stop is requested.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Run every event with timestamp `<= until`, then set the clock to
    /// `until` (even if the queue drained earlier). Events strictly after
    /// `until` remain queued.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if !self.stopped && self.now < until {
            self.now = until;
        }
    }

    /// Run for `dur` of simulated time from the current clock.
    pub fn run_for(&mut self, dur: SimDuration) {
        let until = self.now + dur;
        self.run_until(until);
    }

    /// Timestamp of the earliest pending event, if any. Takes `&mut
    /// self` because peeking a timer wheel settles it (see `queue`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run every event with timestamp **strictly before** `bound`,
    /// leaving the clock at the last executed event (not advanced to
    /// `bound`). This is the epoch-execution primitive of the parallel
    /// runner ([`crate::par`]): an epoch executes `[start, bound)` and
    /// the barrier then injects cross-cell events at times `>= bound`,
    /// which stay legal because the clock never reached `bound`.
    pub fn run_events_before(&mut self, bound: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t < bound => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<u32>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new(W::default());
        e.schedule_in(SimDuration::from_millis(20), |w: &mut W, _| w.log.push(2));
        e.schedule_in(SimDuration::from_millis(10), |w: &mut W, _| w.log.push(1));
        e.schedule_in(SimDuration::from_millis(30), |w: &mut W, _| w.log.push(3));
        e.run_to_completion();
        assert_eq!(e.state().log, vec![1, 2, 3]);
        assert_eq!(e.events_executed(), 3);
        assert_eq!(e.now().as_millis(), 30);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(W::default());
        e.schedule_in(SimDuration::from_secs(1), |w: &mut W, ctx| {
            w.log.push(1);
            ctx.schedule_in(SimDuration::from_secs(1), |w: &mut W, ctx| {
                w.log.push(2);
                ctx.schedule_in(SimDuration::from_secs(1), |w: &mut W, _| {
                    w.log.push(3);
                });
            });
        });
        e.run_to_completion();
        assert_eq!(e.state().log, vec![1, 2, 3]);
        assert_eq!(e.now().as_millis(), 3000);
    }

    #[test]
    fn run_until_stops_at_boundary_and_advances_clock() {
        let mut e = Engine::new(W::default());
        for i in 1..=10u64 {
            e.schedule_at(SimTime::from_secs(i), move |w: &mut W, _| {
                w.log.push(i as u32);
            });
        }
        e.run_until(SimTime::from_secs(4));
        assert_eq!(e.state().log, vec![1, 2, 3, 4]);
        assert_eq!(e.now(), SimTime::from_secs(4));
        assert_eq!(e.events_pending(), 6);
        // The clock still advances to the horizon when nothing fires.
        e.run_until(SimTime::from_secs(4));
        assert_eq!(e.now(), SimTime::from_secs(4));
        e.run_to_completion();
        assert_eq!(e.state().log.len(), 10);
    }

    #[test]
    fn request_stop_halts_engine_but_keeps_queue() {
        let mut e = Engine::new(W::default());
        e.schedule_in(SimDuration::from_secs(1), |w: &mut W, ctx| {
            w.log.push(1);
            ctx.request_stop();
        });
        e.schedule_in(SimDuration::from_secs(2), |w: &mut W, _| w.log.push(2));
        e.run_to_completion();
        assert_eq!(e.state().log, vec![1]);
        assert!(e.is_stopped());
        assert_eq!(e.events_pending(), 1);
        e.clear_stop();
        e.run_to_completion();
        assert_eq!(e.state().log, vec![1, 2]);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut e = Engine::new(W::default());
        e.schedule_in(SimDuration::from_secs(5), |w: &mut W, ctx| {
            w.log.push(1);
            // Deliberately "in the past": clamps to now.
            ctx.schedule_at(SimTime::ZERO, |w: &mut W, _| w.log.push(2));
        });
        e.run_to_completion();
        assert_eq!(e.state().log, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn same_time_followups_run_after_earlier_same_time_events() {
        let mut e = Engine::new(W::default());
        e.schedule_at(SimTime::from_secs(1), |w: &mut W, ctx| {
            w.log.push(1);
            ctx.schedule_at(ctx.now(), |w: &mut W, _| w.log.push(3));
        });
        e.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.log.push(2));
        e.run_to_completion();
        assert_eq!(e.state().log, vec![1, 2, 3]);
    }

    #[test]
    fn periodic_fires_until_end() {
        let mut e = Engine::new(W::default());
        e.schedule_periodic(
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            SimTime::from_secs(10),
            |w: &mut W, _| {
                w.log.push(1);
                true
            },
        );
        e.run_to_completion();
        // Fires at t = 1, 3, 5, 7, 9.
        assert_eq!(e.state().log.len(), 5);
        assert_eq!(e.now(), SimTime::from_secs(9));
    }

    #[test]
    fn periodic_stops_when_callback_returns_false() {
        let mut e = Engine::new(W::default());
        e.schedule_periodic(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            SimTime::from_secs(100),
            |w: &mut W, _| {
                w.log.push(1);
                w.log.len() < 3
            },
        );
        e.run_to_completion();
        assert_eq!(e.state().log.len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn periodic_zero_period_panics() {
        let mut e = Engine::new(W::default());
        e.schedule_periodic(
            SimTime::ZERO,
            SimDuration::ZERO,
            SimTime::from_secs(1),
            |_: &mut W, _| true,
        );
    }

    #[test]
    fn profiler_buckets_by_kind_tag() {
        let mut e = Engine::new(W::default());
        e.enable_profiler();
        e.schedule_at_as("tick", SimTime::from_secs(1), |w: &mut W, ctx| {
            w.log.push(1);
            ctx.schedule_in_as("tock", SimDuration::from_secs(1), |w: &mut W, _| {
                w.log.push(2);
            });
        });
        e.schedule_at(SimTime::from_secs(3), |w: &mut W, _| w.log.push(3));
        e.run_to_completion();
        assert_eq!(e.state().log, vec![1, 2, 3]);
        let report = e.profile_report();
        let kinds: Vec<&str> = report.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&"tick"));
        assert!(kinds.contains(&"tock"));
        assert!(kinds.contains(&DEFAULT_EVENT_KIND));
        assert!(report.iter().all(|r| r.count == 1));
    }

    #[test]
    fn disabled_profiler_reports_nothing() {
        let mut e = Engine::new(W::default());
        e.schedule_at_as("tick", SimTime::from_secs(1), |w: &mut W, _| {
            w.log.push(1);
        });
        e.run_to_completion();
        assert!(e.profile_report().is_empty());
        assert!(!e.profiler().is_enabled());
    }

    #[test]
    fn run_events_before_is_strict_and_leaves_clock_behind() {
        let mut e = Engine::new(W::default());
        for i in 1..=5u64 {
            e.schedule_at(SimTime::from_secs(i), move |w: &mut W, _| {
                w.log.push(i as u32);
            });
        }
        e.run_events_before(SimTime::from_secs(3));
        // Strictly before: the t=3 event stays queued.
        assert_eq!(e.state().log, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(2), "clock stays at last event");
        assert_eq!(e.peek_time(), Some(SimTime::from_secs(3)));
        // Events landing exactly at the bound are legal to inject now.
        e.schedule_at(SimTime::from_secs(3), |w: &mut W, _| w.log.push(30));
        e.run_events_before(SimTime::MAX);
        assert_eq!(e.state().log, vec![1, 2, 3, 30, 4, 5]);
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn run_events_before_respects_stop_requests() {
        let mut e = Engine::new(W::default());
        e.schedule_at(SimTime::from_secs(1), |w: &mut W, ctx| {
            w.log.push(1);
            ctx.request_stop();
        });
        e.schedule_at(SimTime::from_secs(2), |w: &mut W, _| w.log.push(2));
        e.run_events_before(SimTime::MAX);
        assert_eq!(e.state().log, vec![1]);
        assert!(e.is_stopped());
        assert_eq!(e.events_pending(), 1);
    }

    #[test]
    fn determinism_same_seed_same_trajectory() {
        fn run(seed: u64) -> Vec<u32> {
            let mut e = Engine::with_seed(W::default(), seed);
            for _ in 0..50 {
                e.schedule_in(SimDuration::from_millis(1), |w: &mut W, ctx| {
                    let v = ctx.rng().range_u64(0..1000) as u32;
                    w.log.push(v);
                    let d = SimDuration::from_micros(ctx.rng().range_u64(1..500));
                    ctx.schedule_in(d, move |w: &mut W, _| w.log.push(v + 1));
                });
            }
            e.run_to_completion();
            e.into_state().log
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
