//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is an ordered list of `(time, fault)` pairs that is
//! either hand-built or generated from a seed by
//! [`FaultPlan::randomized`]. The plan is pure data: replaying the same
//! `(seed, plan)` against the same world reproduces the exact same chaos
//! run, event for event. [`FaultPlan::schedule`] injects every fault
//! through the engine's event queue via a caller-supplied `apply`
//! bridge, so this crate stays ignorant of what a "host" or "VSN"
//! actually is — entities are raw `u64` ids here, the same convention
//! the [`crate::obs`] events use.

use crate::engine::{Ctx, Engine};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// One injectable fault, entity ids as raw `u64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// Fail-stop crash of a whole host: every VSN on it dies, its
    /// heartbeats stop, its resources become unavailable.
    HostCrash { host: u64 },
    /// The host comes back empty (rebooted): heartbeats resume, its
    /// capacity is placeable again.
    HostRepair { host: u64 },
    /// Crash a single VSN in place; the host stays up.
    VsnCrash { vsn: u64 },
    /// Arm one priming failure on a host: the next in-flight image
    /// download targeting it fails mid-flight instead of booting.
    PrimingFailure { host: u64 },
    /// The host's CPU runs `factor`× slower for `duration`.
    SlowHost {
        host: u64,
        factor: f64,
        duration: SimDuration,
    },
    /// The host's links drop each message with probability `loss` for
    /// `duration`.
    LinkLoss {
        host: u64,
        loss: f64,
        duration: SimDuration,
    },
    /// Full network partition of the host for `duration`: nothing in or
    /// out, but the host itself keeps running.
    LinkPartition { host: u64, duration: SimDuration },
    /// Fail-stop crash of the Master control plane. Data-plane switches
    /// keep routing; detection, journal replay and warm-standby takeover
    /// are the world's job.
    MasterCrash,
}

impl FaultSpec {
    /// Stable label for logs and obs events.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSpec::HostCrash { .. } => "host_crash",
            FaultSpec::HostRepair { .. } => "host_repair",
            FaultSpec::VsnCrash { .. } => "vsn_crash",
            FaultSpec::PrimingFailure { .. } => "priming_failure",
            FaultSpec::SlowHost { .. } => "slow_host",
            FaultSpec::LinkLoss { .. } => "link_loss",
            FaultSpec::LinkPartition { .. } => "link_partition",
            FaultSpec::MasterCrash => "master_crash",
        }
    }

    /// The targeted host, when the fault targets one.
    pub fn host(&self) -> Option<u64> {
        match *self {
            FaultSpec::HostCrash { host }
            | FaultSpec::HostRepair { host }
            | FaultSpec::PrimingFailure { host }
            | FaultSpec::SlowHost { host, .. }
            | FaultSpec::LinkLoss { host, .. }
            | FaultSpec::LinkPartition { host, .. } => Some(host),
            FaultSpec::VsnCrash { .. } | FaultSpec::MasterCrash => None,
        }
    }

    /// The targeted VSN, when the fault targets one.
    pub fn vsn(&self) -> Option<u64> {
        match *self {
            FaultSpec::VsnCrash { vsn } => Some(vsn),
            _ => None,
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultSpec::HostCrash { host } => write!(f, "host_crash host={host}"),
            FaultSpec::HostRepair { host } => write!(f, "host_repair host={host}"),
            FaultSpec::VsnCrash { vsn } => write!(f, "vsn_crash vsn={vsn}"),
            FaultSpec::PrimingFailure { host } => write!(f, "priming_failure host={host}"),
            FaultSpec::SlowHost {
                host,
                factor,
                duration,
            } => write!(
                f,
                "slow_host host={host} factor={factor:.1} for={:.1}s",
                duration.as_secs_f64()
            ),
            FaultSpec::LinkLoss {
                host,
                loss,
                duration,
            } => write!(
                f,
                "link_loss host={host} p={loss:.2} for={:.1}s",
                duration.as_secs_f64()
            ),
            FaultSpec::LinkPartition { host, duration } => write!(
                f,
                "link_partition host={host} for={:.1}s",
                duration.as_secs_f64()
            ),
            FaultSpec::MasterCrash => write!(f, "master_crash"),
        }
    }
}

/// A fault pinned to a point in virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultInjection {
    /// Injection time.
    pub at: SimTime,
    /// What happens.
    pub fault: FaultSpec,
}

/// A correlated fault domain: hosts behind one rack switch / power rail
/// that fail together. Domain incidents are generated on top of the
/// independent per-host plan by [`FaultPlan::randomized`].
#[derive(Clone, Debug, PartialEq)]
pub struct FailureDomain {
    /// Label for logs ("rack-a", "tor-2").
    pub name: String,
    /// Hosts sharing the domain's fate (raw ids).
    pub hosts: Vec<u64>,
}

/// Knobs for [`FaultPlan::randomized`].
#[derive(Clone, Debug)]
pub struct ChaosProfile {
    /// Hosts eligible for targeting (raw ids).
    pub hosts: Vec<u64>,
    /// No injections before this time.
    pub start: SimTime,
    /// No injections at or after this time.
    pub end: SimTime,
    /// Mean gap between injections (exponentially distributed).
    pub mean_gap: SimDuration,
    /// Mean delay before a crashed host is repaired; actual delays are
    /// uniform in `[0.5×, 1.5×]` this. Keeps long soaks from
    /// monotonically exhausting the host pool.
    pub mean_repair: SimDuration,
    /// Correlated fault domains. Each domain suffers one incident per
    /// run: either a simultaneous crash of all its hosts (with staggered
    /// repairs) or a simultaneous partition with per-host durations —
    /// asymmetric healing, some hosts regain the network before others.
    /// Empty = no domain events; the rest of the plan is byte-identical
    /// to one generated without this field (the domain stream draws from
    /// its own salted RNG).
    pub domains: Vec<FailureDomain>,
    /// Master crashes to fold into the plan, uniform over the window
    /// (their own salted RNG: 0 leaves the plan untouched).
    pub master_crashes: u32,
}

/// An ordered, replayable schedule of fault injections.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    injections: Vec<FaultInjection>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style insertion, keeps the plan time-ordered.
    pub fn inject(mut self, at: SimTime, fault: FaultSpec) -> Self {
        self.push(at, fault);
        self
    }

    /// Insert an injection, keeping the plan time-ordered (stable for
    /// equal times: earlier insertions fire first).
    pub fn push(&mut self, at: SimTime, fault: FaultSpec) {
        let pos = self.injections.partition_point(|i| i.at <= at);
        self.injections.insert(pos, FaultInjection { at, fault });
    }

    /// The injections in firing order.
    pub fn injections(&self) -> &[FaultInjection] {
        &self.injections
    }

    /// Number of injections.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// True when the plan holds no injections.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Generate a randomized plan from a seed. The generator uses its
    /// own RNG — never the engine's — so the plan depends only on
    /// `(seed, profile)` and building it perturbs nothing.
    ///
    /// Crashed hosts are tracked so a host is not crashed twice before
    /// its paired [`FaultSpec::HostRepair`] fires; VSN crashes are not
    /// generated here because VSN ids are only known at run time (inject
    /// those by hand with [`FaultPlan::push`]).
    pub fn randomized(seed: u64, profile: &ChaosProfile) -> FaultPlan {
        assert!(!profile.hosts.is_empty(), "chaos profile needs hosts");
        let mut rng = SimRng::new(seed);
        let mut plan = FaultPlan::new();
        let mut down_until: Vec<(u64, SimTime)> = Vec::new();
        let mut t = profile.start;
        loop {
            let gap = rng.exp(profile.mean_gap.as_secs_f64());
            t += SimDuration::from_secs_f64(gap);
            if t >= profile.end {
                break;
            }
            let host = profile.hosts[rng.index(profile.hosts.len())];
            let host_down = down_until.iter().any(|&(h, until)| h == host && until > t);
            let roll = rng.f64();
            if roll < 0.30 {
                if host_down {
                    continue;
                }
                let repair_secs = profile.mean_repair.as_secs_f64() * (0.5 + rng.f64());
                let back = t + SimDuration::from_secs_f64(repair_secs);
                plan.push(t, FaultSpec::HostCrash { host });
                plan.push(back, FaultSpec::HostRepair { host });
                down_until.retain(|&(h, _)| h != host);
                down_until.push((host, back));
            } else if roll < 0.50 {
                plan.push(t, FaultSpec::PrimingFailure { host });
            } else if roll < 0.70 {
                let factor = 2.0 + 4.0 * rng.f64();
                let duration = SimDuration::from_secs_f64(10.0 + 30.0 * rng.f64());
                plan.push(
                    t,
                    FaultSpec::SlowHost {
                        host,
                        factor,
                        duration,
                    },
                );
            } else if roll < 0.85 {
                let duration = SimDuration::from_secs_f64(5.0 + 15.0 * rng.f64());
                plan.push(t, FaultSpec::LinkPartition { host, duration });
            } else {
                let loss = 0.3 + 0.6 * rng.f64();
                let duration = SimDuration::from_secs_f64(10.0 + 20.0 * rng.f64());
                plan.push(
                    t,
                    FaultSpec::LinkLoss {
                        host,
                        loss,
                        duration,
                    },
                );
            }
        }
        // Correlated domain incidents and Master crashes draw from their
        // own salted streams, appended after the base loop: a profile
        // without them generates the exact bytes it always has, so
        // existing seeds' fingerprints survive the feature.
        if !profile.domains.is_empty() {
            const DOMAIN_SALT: u64 = 0xd0ca_11ed_4ac5_a17e;
            let mut rng = SimRng::new(seed ^ DOMAIN_SALT);
            let window = profile.end.saturating_since(profile.start).as_secs_f64();
            for domain in &profile.domains {
                if domain.hosts.is_empty() || window <= 0.0 {
                    continue;
                }
                let t = profile.start + SimDuration::from_secs_f64(window * rng.f64());
                if rng.bool(0.5) {
                    // The rack loses power: every host crashes at the
                    // same instant, repairs stagger back in.
                    for &host in &domain.hosts {
                        plan.push(t, FaultSpec::HostCrash { host });
                        let repair_secs = profile.mean_repair.as_secs_f64() * (0.5 + rng.f64());
                        plan.push(
                            t + SimDuration::from_secs_f64(repair_secs),
                            FaultSpec::HostRepair { host },
                        );
                    }
                } else {
                    // The rack switch wedges: every host partitions at
                    // once, but healing is asymmetric — per-host
                    // durations, so some hosts rejoin before others.
                    for &host in &domain.hosts {
                        let duration = SimDuration::from_secs_f64(5.0 + 15.0 * rng.f64());
                        plan.push(t, FaultSpec::LinkPartition { host, duration });
                    }
                }
            }
        }
        if profile.master_crashes > 0 {
            const MASTER_SALT: u64 = 0x5eed_0fad_ead5_0da5;
            let mut rng = SimRng::new(seed ^ MASTER_SALT);
            let window = profile.end.saturating_since(profile.start).as_secs_f64();
            for _ in 0..profile.master_crashes {
                let t = profile.start + SimDuration::from_secs_f64(window * rng.f64());
                plan.push(t, FaultSpec::MasterCrash);
            }
        }
        plan
    }

    /// Arm every injection on the engine. `apply` bridges a [`FaultSpec`]
    /// to an actual mutation of the world `S`; it is cloned per
    /// injection.
    pub fn schedule<S, F>(&self, engine: &mut Engine<S>, apply: F)
    where
        F: Fn(&mut S, &mut Ctx<S>, FaultSpec) + Clone + 'static,
    {
        for inj in &self.injections {
            let fault = inj.fault;
            let apply = apply.clone();
            engine.schedule_at_as("fault", inj.at, move |state: &mut S, ctx: &mut Ctx<S>| {
                apply(state, ctx, fault);
            });
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault plan ({} injections):", self.injections.len())?;
        for inj in &self.injections {
            writeln!(f, "  t={:9.3}s  {}", inj.at.as_secs_f64(), inj.fault)?;
        }
        Ok(())
    }
}

impl serde::Serialize for FaultSpec {
    fn to_json_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![("kind".to_string(), Value::String(self.kind().to_string()))];
        if let Some(h) = self.host() {
            fields.push(("host".to_string(), Value::U64(h)));
        }
        if let Some(v) = self.vsn() {
            fields.push(("vsn".to_string(), Value::U64(v)));
        }
        match *self {
            FaultSpec::SlowHost {
                factor, duration, ..
            } => {
                fields.push(("factor".to_string(), Value::F64(factor)));
                fields.push(("secs".to_string(), Value::F64(duration.as_secs_f64())));
            }
            FaultSpec::LinkLoss { loss, duration, .. } => {
                fields.push(("loss".to_string(), Value::F64(loss)));
                fields.push(("secs".to_string(), Value::F64(duration.as_secs_f64())));
            }
            FaultSpec::LinkPartition { duration, .. } => {
                fields.push(("secs".to_string(), Value::F64(duration.as_secs_f64())));
            }
            _ => {}
        }
        Value::Object(fields)
    }
}

impl serde::Serialize for FaultInjection {
    fn to_json_value(&self) -> serde::Value {
        use serde::Value;
        Value::Object(vec![
            ("at_secs".to_string(), Value::F64(self.at.as_secs_f64())),
            ("fault".to_string(), self.fault.to_json_value()),
        ])
    }
}

impl serde::Serialize for FaultPlan {
    fn to_json_value(&self) -> serde::Value {
        self.injections.to_json_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ChaosProfile {
        ChaosProfile {
            hosts: vec![1, 2, 3],
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(300),
            mean_gap: SimDuration::from_secs(15),
            mean_repair: SimDuration::from_secs(30),
            domains: Vec::new(),
            master_crashes: 0,
        }
    }

    #[test]
    fn randomized_plan_is_deterministic_per_seed() {
        let a = FaultPlan::randomized(7, &profile());
        let b = FaultPlan::randomized(7, &profile());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::randomized(8, &profile());
        assert_ne!(a, c);
    }

    #[test]
    fn randomized_plan_is_ordered_and_in_window() {
        let plan = FaultPlan::randomized(3, &profile());
        let mut prev = SimTime::ZERO;
        for inj in plan.injections() {
            assert!(inj.at >= prev, "plan out of order");
            prev = inj.at;
            // Repairs may land past `end`; everything else must not.
            if !matches!(inj.fault, FaultSpec::HostRepair { .. }) {
                assert!(inj.at >= SimTime::from_secs(10));
                assert!(inj.at < SimTime::from_secs(300));
            }
        }
    }

    #[test]
    fn every_crash_is_paired_with_a_later_repair() {
        let plan = FaultPlan::randomized(11, &profile());
        for (i, inj) in plan.injections().iter().enumerate() {
            if let FaultSpec::HostCrash { host } = inj.fault {
                let repaired = plan.injections()[i..].iter().any(|later| {
                    later.at > inj.at && later.fault == FaultSpec::HostRepair { host }
                });
                assert!(repaired, "crash of host {host} never repaired");
            }
        }
    }

    #[test]
    fn push_keeps_stable_time_order() {
        let plan = FaultPlan::new()
            .inject(SimTime::from_secs(5), FaultSpec::HostCrash { host: 1 })
            .inject(SimTime::from_secs(1), FaultSpec::VsnCrash { vsn: 9 })
            .inject(SimTime::from_secs(5), FaultSpec::HostRepair { host: 2 });
        let kinds: Vec<_> = plan.injections().iter().map(|i| i.fault.kind()).collect();
        assert_eq!(kinds, vec!["vsn_crash", "host_crash", "host_repair"]);
    }

    #[test]
    fn empty_domains_leave_the_base_plan_untouched() {
        let base = FaultPlan::randomized(19, &profile());
        let mut p = profile();
        p.domains = Vec::new();
        p.master_crashes = 0;
        assert_eq!(base, FaultPlan::randomized(19, &p));
    }

    #[test]
    fn domain_incident_hits_all_member_hosts_at_once() {
        let mut p = profile();
        p.domains = vec![FailureDomain {
            name: "rack-a".into(),
            hosts: vec![1, 2],
        }];
        let plan = FaultPlan::randomized(19, &p);
        // The base plan (no domains) is a strict subset, in order.
        let base = FaultPlan::randomized(19, &profile());
        let mut base_iter = base.injections().iter();
        for inj in plan.injections() {
            if base_iter.clone().next() == Some(inj) {
                base_iter.next();
            }
        }
        assert!(base_iter.next().is_none(), "base plan preserved verbatim");
        // The extra injections target both domain hosts from one instant:
        // either both crash at the same t, or both partition at the same t.
        let extras: Vec<&FaultInjection> = plan
            .injections()
            .iter()
            .filter(|i| !base.injections().contains(i))
            .collect();
        assert!(!extras.is_empty(), "domain produced an incident");
        let first_t = extras[0].at;
        let correlated = extras.iter().filter(|i| i.at == first_t).count();
        assert!(correlated >= 2, "hosts 1 and 2 hit together: {extras:?}");
    }

    #[test]
    fn master_crashes_fold_into_the_window() {
        let mut p = profile();
        p.master_crashes = 2;
        let plan = FaultPlan::randomized(5, &p);
        let crashes: Vec<&FaultInjection> = plan
            .injections()
            .iter()
            .filter(|i| i.fault == FaultSpec::MasterCrash)
            .collect();
        assert_eq!(crashes.len(), 2);
        for c in crashes {
            assert!(c.at >= p.start && c.at < p.end);
        }
        // Deterministic per seed.
        assert_eq!(plan, FaultPlan::randomized(5, &p));
    }

    #[test]
    fn schedule_applies_every_fault_at_its_time() {
        #[derive(Default)]
        struct W {
            seen: Vec<(u64, &'static str)>,
        }
        let plan = FaultPlan::new()
            .inject(SimTime::from_secs(2), FaultSpec::HostCrash { host: 4 })
            .inject(SimTime::from_secs(1), FaultSpec::PrimingFailure { host: 2 });
        let mut engine = Engine::new(W::default());
        plan.schedule(&mut engine, |w: &mut W, ctx, fault| {
            w.seen.push((ctx.now().as_secs_f64() as u64, fault.kind()));
        });
        engine.run_to_completion();
        assert_eq!(
            engine.state().seen,
            vec![(1, "priming_failure"), (2, "host_crash")]
        );
    }
}
