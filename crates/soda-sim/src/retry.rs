//! Bounded retry with exponential backoff.
//!
//! One policy object shared by every control loop that re-attempts a
//! failed operation: the Master-side recovery manager (re-placing lost
//! capacity) and the admission backlog queue (re-trying parked
//! creations). Delays double per attempt up to a ceiling; an optional
//! jitter fraction decorrelates concurrent retry loops, drawn from the
//! caller's [`SimRng`] so a jittered schedule is still reproducible
//! from the seed.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Exponential backoff with a ceiling and an attempt cap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the second attempt (the first runs immediately).
    pub base: SimDuration,
    /// Delays never exceed this.
    pub ceiling: SimDuration,
    /// Give up (reject / degrade) after this many failed attempts.
    pub max_attempts: u32,
    /// Jitter as a fraction of the delay: the jittered delay is uniform
    /// in `[d·(1−jitter), d·(1+jitter)]`. `0.0` disables jitter (and
    /// draws nothing from the RNG).
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: SimDuration::from_secs(2),
            ceiling: SimDuration::from_secs(30),
            max_attempts: 5,
            jitter: 0.2,
        }
    }
}

impl BackoffPolicy {
    /// The deterministic (un-jittered) delay after `attempt` failures
    /// (`attempt` ≥ 1): `base · 2^(attempt−1)`, clamped to the ceiling.
    pub fn delay(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(62);
        let nanos = self.base.as_nanos().saturating_mul(1u64 << shift);
        SimDuration::from_nanos(nanos.min(self.ceiling.as_nanos()))
    }

    /// The jittered delay after `attempt` failures. Draws one uniform
    /// sample when `jitter > 0`, none otherwise.
    pub fn delay_jittered(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let d = self.delay(attempt);
        if self.jitter <= 0.0 {
            return d;
        }
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * rng.f64();
        SimDuration::from_secs_f64(d.as_secs_f64() * factor)
    }

    /// True once `attempt` failures mean no further retry is allowed.
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base: SimDuration::from_secs(1),
            ceiling: SimDuration::from_secs(10),
            max_attempts: 4,
            jitter: 0.0,
        }
    }

    #[test]
    fn delay_doubles_then_hits_ceiling() {
        let p = policy();
        assert_eq!(p.delay(1), SimDuration::from_secs(1));
        assert_eq!(p.delay(2), SimDuration::from_secs(2));
        assert_eq!(p.delay(3), SimDuration::from_secs(4));
        assert_eq!(p.delay(4), SimDuration::from_secs(8));
        assert_eq!(p.delay(5), SimDuration::from_secs(10));
        assert_eq!(p.delay(60), SimDuration::from_secs(10));
        // Attempt 0 is treated like attempt 1.
        assert_eq!(p.delay(0), SimDuration::from_secs(1));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = policy();
        assert_eq!(p.delay(u32::MAX), SimDuration::from_secs(10));
    }

    #[test]
    fn exhaustion_at_max_attempts() {
        let p = policy();
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
        assert!(p.exhausted(5));
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let p = BackoffPolicy {
            jitter: 0.25,
            ..policy()
        };
        let mut rng = SimRng::new(9);
        for attempt in 1..=6 {
            let d = p.delay(attempt).as_secs_f64();
            let j = p.delay_jittered(attempt, &mut rng).as_secs_f64();
            assert!(j >= d * 0.75 - 1e-9 && j <= d * 1.25 + 1e-9, "{j} vs {d}");
        }
        let a: Vec<_> = {
            let mut r = SimRng::new(5);
            (1..8).map(|i| p.delay_jittered(i, &mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = SimRng::new(5);
            (1..8).map(|i| p.delay_jittered(i, &mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_jitter_draws_nothing() {
        let p = policy();
        let mut rng = SimRng::new(1);
        let mut probe = rng.clone();
        let _ = p.delay_jittered(3, &mut rng);
        // The RNG stream is untouched when jitter is disabled.
        assert_eq!(rng.next_u64(), probe.next_u64());
    }
}
