//! Process and user-id table.
//!
//! SODA's proportional CPU scheduler is keyed by userid: "within one
//! virtual service node, all processes bear the same user (service) id".
//! The process table also backs the Figure 3 demonstration — each guest
//! OS's `ps -ef` lists only its own processes, while the host sees all.

use std::collections::BTreeMap;
use std::fmt;

/// A process id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// A user (service) id. Each virtual service node runs all of its
/// processes under one uid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One process table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessEntry {
    /// Process id (unique within the table).
    pub pid: Pid,
    /// Owning user/service id.
    pub uid: Uid,
    /// Command name, e.g. `"httpd_19_5"` or `"ghttpd-1.4"`.
    pub command: String,
}

/// A host-wide process table with per-uid views.
#[derive(Clone, Debug, Default)]
pub struct ProcessTable {
    procs: BTreeMap<Pid, ProcessEntry>,
    next_pid: u32,
}

impl ProcessTable {
    /// An empty table; pids start at 1 (pid 0 is the idle task, as on
    /// Linux).
    pub fn new() -> Self {
        ProcessTable {
            procs: BTreeMap::new(),
            next_pid: 1,
        }
    }

    /// Spawn a process under `uid`; returns its pid.
    pub fn spawn(&mut self, uid: Uid, command: impl Into<String>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            ProcessEntry {
                pid,
                uid,
                command: command.into(),
            },
        );
        pid
    }

    /// Kill one process. Returns the entry if it existed.
    pub fn kill(&mut self, pid: Pid) -> Option<ProcessEntry> {
        self.procs.remove(&pid)
    }

    /// Kill every process owned by `uid` (VSN teardown / guest crash).
    /// Returns how many were killed.
    pub fn kill_uid(&mut self, uid: Uid) -> usize {
        let doomed: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| p.uid == uid)
            .map(|p| p.pid)
            .collect();
        for pid in &doomed {
            self.procs.remove(pid);
        }
        doomed.len()
    }

    /// Look up a process.
    pub fn get(&self, pid: Pid) -> Option<&ProcessEntry> {
        self.procs.get(&pid)
    }

    /// All processes, ordered by pid — the host's `ps -ef`.
    pub fn ps_all(&self) -> impl Iterator<Item = &ProcessEntry> {
        self.procs.values()
    }

    /// Processes owned by one uid, ordered by pid — a guest's `ps -ef`
    /// (the guest can only see its own processes: administration
    /// isolation).
    pub fn ps_uid(&self, uid: Uid) -> impl Iterator<Item = &ProcessEntry> + '_ {
        self.procs.values().filter(move |p| p.uid == uid)
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True iff no processes are live.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Number of live processes for one uid.
    pub fn count_uid(&self, uid: Uid) -> usize {
        self.ps_uid(uid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_increasing_pids() {
        let mut t = ProcessTable::new();
        let a = t.spawn(Uid(100), "httpd");
        let b = t.spawn(Uid(100), "httpd");
        assert!(b > a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap().command, "httpd");
    }

    #[test]
    fn uid_view_is_isolated() {
        let mut t = ProcessTable::new();
        t.spawn(Uid(1), "init");
        t.spawn(Uid(1), "httpd_19_5");
        t.spawn(Uid(2), "init");
        t.spawn(Uid(2), "ghttpd-1.4");
        // The web-service guest sees only its two processes; the honeypot
        // guest sees only its own (Figure 3).
        assert_eq!(t.count_uid(Uid(1)), 2);
        assert_eq!(t.count_uid(Uid(2)), 2);
        assert!(t.ps_uid(Uid(1)).all(|p| p.uid == Uid(1)));
        // The host sees all four.
        assert_eq!(t.ps_all().count(), 4);
    }

    #[test]
    fn kill_single_and_by_uid() {
        let mut t = ProcessTable::new();
        let a = t.spawn(Uid(1), "x");
        t.spawn(Uid(2), "y");
        t.spawn(Uid(2), "z");
        assert_eq!(t.kill(a).unwrap().pid, a);
        assert!(t.kill(a).is_none());
        // Crashing the honeypot guest kills all of uid 2, leaves others.
        assert_eq!(t.kill_uid(Uid(2)), 2);
        assert_eq!(t.kill_uid(Uid(2)), 0);
        assert!(t.is_empty());
    }
}
