//! # soda-hostos
//!
//! Host-OS model for the SODA reproduction.
//!
//! SODA (HPDC'03) runs each virtual service node on a Linux *host OS* that
//! the authors enhanced in two ways: a **coarse-grain proportional-share
//! CPU scheduler** keyed by userid (every process of a virtual service
//! node bears the service's uid), and a **traffic shaper** enforcing
//! per-IP outbound bandwidth. This crate models the host OS at the level
//! those mechanisms and the paper's measurements require:
//!
//! * [`resources`] — Table 1's machine configuration `M`, resource
//!   vectors and the per-host reservation ledger the SODA Daemon uses.
//! * [`cpu`] — CPU specs (clock rate ↔ cycles ↔ simulated time).
//! * [`sched`] — two pluggable CPU schedulers driven in fixed ticks:
//!   [`sched::TimeShareScheduler`] reproduces stock Linux's *per-process*
//!   fairness (the reason Figure 5(a) shows skewed shares) and
//!   [`sched::ProportionalShareScheduler`] reproduces the paper's
//!   per-userid proportional sharing (Figure 5(b)).
//! * [`syscall`] — the syscall catalog with a cycle-level native cost
//!   model (the "in host OS" column of Table 4).
//! * [`shaper`] — token-bucket outbound traffic shaping per VSN IP.
//! * [`memory`] — per-account memory limits (UML's `mem=` cap).
//! * [`disk`] — disk bandwidth/seek model (bootstrapping and the `log`
//!   workload of Figure 5 are disk-bound).
//! * [`process`] — pid/uid table; supports the guest/host `ps -ef`
//!   isolation demonstration of Figure 3.

pub mod accounting;
pub mod cpu;
pub mod disk;
pub mod memory;
pub mod process;
pub mod resources;
pub mod sched;
pub mod shaper;
pub mod syscall;

pub use accounting::CpuAccounting;
pub use cpu::CpuSpec;
pub use disk::DiskModel;
pub use memory::MemoryManager;
pub use process::{Pid, ProcessTable, Uid};
pub use resources::{MachineConfig, ResourceError, ResourceLedger, ResourceVector};
pub use sched::{
    CpuScheduler, LotteryScheduler, ProcDesc, ProportionalShareScheduler, TimeShareScheduler,
};
pub use shaper::TrafficShaper;
pub use syscall::{Syscall, SyscallCostModel};
